package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ganc/internal/serve"
)

// userEvs builds n well-formed events for one user whose values encode their
// 1-based history position, so ordering and exactly-once application are
// checkable per user.
func userEvs(user string, start, n int) []serve.IngestEvent {
	out := make([]serve.IngestEvent, n)
	for i := range out {
		out[i] = serve.IngestEvent{
			User:  user,
			Item:  fmt.Sprintf("item-%d", (start+i)%5),
			Value: float64(start + i),
		}
	}
	return out
}

// TestParseMigrateRequestRejectsHostileBodies: every malformed body must come
// back as a typed ErrMigrateBody — never a panic, never a silent acceptance.
func TestParseMigrateRequestRejectsHostileBodies(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "not json at all"},
		{"truncated", `{"shard": 0, "user": "u", "events": [`},
		{"negative-shard", `{"shard": -1, "user": "u"}`},
		{"missing-user", `{"shard":0,"epoch":1,"first_idx":1,"events":[{"user":"u","item":"i","value":1}]}`},
		{"zero-first-idx", `{"shard":0,"user":"u","first_idx":0,"events":[{"user":"u","item":"i","value":1}]}`},
		{"idx-overflow", `{"shard":0,"user":"u","first_idx":18446744073709551615,"events":[{"user":"u","item":"i","value":1},{"user":"u","item":"i","value":2}]}`},
		{"foreign-event", `{"shard":0,"user":"u","first_idx":1,"events":[{"user":"other","item":"i","value":1}]}`},
		{"keyless-event", `{"shard":0,"user":"u","first_idx":1,"events":[{"user":"u","item":"","value":1}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMigrateRequest(strings.NewReader(tc.body))
			if !errors.Is(err, ErrMigrateBody) {
				t.Fatalf("want ErrMigrateBody, got %v", err)
			}
		})
	}
	// An oversized chunk is refused before any apply.
	big := MigrateRequest{Shard: 0, User: "u", FirstIdx: 1, Events: userEvs("u", 1, MaxMigrateEvents+1)}
	payload, err := json.Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMigrateRequest(strings.NewReader(string(payload))); !errors.Is(err, ErrMigrateBody) {
		t.Fatalf("oversized chunk: want ErrMigrateBody, got %v", err)
	}
}

// TestMigrationApplierCursorRules walks the per-user cursor discipline: a
// probe answers without applying, an in-order chunk advances the cursor, a
// full duplicate is acknowledged without re-applying, an overlap has its
// applied prefix skipped, and a chunk past cursor+1 is a gap refusal that
// applies nothing.
func TestMigrationApplierCursorRules(t *testing.T) {
	ctx := context.Background()
	backend := &countingBackend{}
	ma := NewMigrationApplier(0, 1, backend)

	// Probe an unknown user: cursor 0, nothing applied.
	resp, err := ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "alice"})
	if err != nil || resp.AppliedIdx != 0 || resp.Applied != 0 || resp.Done {
		t.Fatalf("probe answered %+v, %v", resp, err)
	}

	// First chunk: positions 1..4 of a 6-event history.
	resp, err = ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "alice",
		FirstIdx: 1, Total: 6, Events: userEvs("alice", 1, 4)})
	if err != nil || resp.AppliedIdx != 4 || resp.Applied != 4 || resp.Done {
		t.Fatalf("first chunk answered %+v, %v", resp, err)
	}

	// Full duplicate: acknowledged at the cursor, nothing re-applied.
	resp, err = ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "alice",
		FirstIdx: 1, Total: 6, Events: userEvs("alice", 1, 4)})
	if err != nil || resp.AppliedIdx != 4 || resp.Applied != 0 {
		t.Fatalf("duplicate answered %+v, %v", resp, err)
	}

	// Gap: positions 6..6 with the cursor at 4 skips position 5.
	resp, err = ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "alice",
		FirstIdx: 6, Total: 6, Events: userEvs("alice", 6, 1)})
	if !errors.Is(err, ErrMigrateGap) || !resp.Gap || resp.AppliedIdx != 4 {
		t.Fatalf("gap answered %+v, %v", resp, err)
	}

	// Overlap: positions 3..6 re-sends 3..4 and extends to 6, finishing the
	// history — only the unseen suffix is applied.
	resp, err = ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "alice",
		FirstIdx: 3, Total: 6, Events: userEvs("alice", 3, 4)})
	if err != nil || resp.AppliedIdx != 6 || resp.Applied != 2 || !resp.Done {
		t.Fatalf("overlap answered %+v, %v", resp, err)
	}

	// Exact accounting: the backend holds positions 1..6 once each, in order.
	if got := ma.EventsApplied(); got != 6 {
		t.Fatalf("EventsApplied = %d, want 6", got)
	}
	if got := ma.UsersCompleted(); got != 1 {
		t.Fatalf("UsersCompleted = %d, want 1", got)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.events) != 6 {
		t.Fatalf("backend holds %d events, want 6", len(backend.events))
	}
	for i, ev := range backend.events {
		if ev.Value != float64(i+1) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
		}
	}
}

// TestMigrationApplierSeedCursor: a destination that already holds a prefix
// of the user's history (its own WAL) acknowledges that prefix instead of
// applying it twice, and the seed never rewinds an advanced cursor.
func TestMigrationApplierSeedCursor(t *testing.T) {
	ctx := context.Background()
	backend := &countingBackend{}
	ma := NewMigrationApplier(0, 1, backend)
	ma.SeedCursor("bob", 3)
	if got := ma.Cursor("bob"); got != 3 {
		t.Fatalf("seeded cursor = %d, want 3", got)
	}
	// A full re-ship of 5 events applies only the unseen 2.
	resp, err := ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 1, User: "bob",
		FirstIdx: 1, Total: 5, Events: userEvs("bob", 1, 5)})
	if err != nil || resp.Applied != 2 || resp.AppliedIdx != 5 || !resp.Done {
		t.Fatalf("seeded overlap answered %+v, %v", resp, err)
	}
	// Seeding backward is a no-op.
	ma.SeedCursor("bob", 1)
	if got := ma.Cursor("bob"); got != 5 {
		t.Fatalf("cursor rewound to %d after a stale seed", got)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	for i, ev := range backend.events {
		if ev.Value != float64(i+4) {
			t.Fatalf("event %d has value %v, want %d (the seeded prefix must be skipped)", i, ev.Value, i+4)
		}
	}
}

// TestMigrationApplierShardAndEpochRules: a chunk for the wrong shard is a
// topology error; a chunk from an older epoch is refused; a chunk from a
// newer epoch is adopted (the coordinator's SetEpoch may arrive after the
// first migrated chunk does).
func TestMigrationApplierShardAndEpochRules(t *testing.T) {
	ctx := context.Background()
	ma := NewMigrationApplier(1, 2, &countingBackend{})
	if _, err := ma.Apply(ctx, &MigrateRequest{Shard: 0, Epoch: 2, User: "u"}); !errors.Is(err, ErrMigrateShard) {
		t.Fatalf("wrong shard: want ErrMigrateShard, got %v", err)
	}
	if _, err := ma.Apply(ctx, &MigrateRequest{Shard: 1, Epoch: 1, User: "u"}); !errors.Is(err, ErrMigrateEpoch) {
		t.Fatalf("stale epoch: want ErrMigrateEpoch, got %v", err)
	}
	if _, err := ma.Apply(ctx, &MigrateRequest{Shard: 1, Epoch: 3, User: "u",
		FirstIdx: 1, Events: userEvs("u", 1, 1)}); err != nil {
		t.Fatalf("newer epoch refused: %v", err)
	}
	if got := ma.Epoch(); got != 3 {
		t.Fatalf("applier stayed at epoch %d after a newer chunk, want 3", got)
	}
	if _, err := ma.Apply(ctx, &MigrateRequest{Shard: 1, Epoch: 2, User: "u"}); !errors.Is(err, ErrMigrateEpoch) {
		t.Fatalf("the adopted epoch must refuse the old one: %v", err)
	}
}

// TestMigrateHandlerStatusMapping pins the endpoint's refusal taxonomy: 400
// migrate_body, 409 migrate_shard / migrate_epoch / migrate_gap, 500
// migrate_apply — every body a decodable MigrateResponse.
func TestMigrateHandlerStatusMapping(t *testing.T) {
	backend := &countingBackend{}
	ma := NewMigrationApplier(0, 2, backend)
	handler := ma.Handler()
	post := func(body string) (int, MigrateResponse) {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/migrate", strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		var resp MigrateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("undecodable answer %q", rec.Body.String())
		}
		return rec.Code, resp
	}

	if code, resp := post("not json"); code != http.StatusBadRequest || resp.Code != "migrate_body" {
		t.Fatalf("hostile body answered %d %q", code, resp.Code)
	}
	if code, resp := post(`{"shard":7,"epoch":2,"user":"u"}`); code != http.StatusConflict || resp.Code != "migrate_shard" {
		t.Fatalf("wrong shard answered %d %q", code, resp.Code)
	}
	if code, resp := post(`{"shard":0,"epoch":1,"user":"u"}`); code != http.StatusConflict || resp.Code != "migrate_epoch" {
		t.Fatalf("stale epoch answered %d %q", code, resp.Code)
	}
	if code, resp := post(`{"shard":0,"epoch":2,"user":"u","first_idx":9,"total":9,"events":[{"user":"u","item":"i","value":9}]}`); code != http.StatusConflict || resp.Code != "migrate_gap" || !resp.Gap {
		t.Fatalf("gap answered %d %+v", code, resp)
	}
	backend.failErr = errors.New("disk on fire")
	if code, resp := post(`{"shard":0,"epoch":2,"user":"u","first_idx":1,"total":1,"events":[{"user":"u","item":"i","value":1}]}`); code != http.StatusInternalServerError || resp.Code != "migrate_apply" {
		t.Fatalf("backend failure answered %d %q", code, resp.Code)
	}
	backend.failErr = nil
	if code, resp := post(`{"shard":0,"epoch":2,"user":"u","first_idx":1,"total":1,"events":[{"user":"u","item":"i","value":1}]}`); code != http.StatusOK || !resp.Done || resp.Applied != 1 {
		t.Fatalf("well-formed chunk answered %d %+v", code, resp)
	}

	// Non-POST is rejected outright.
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/migrate", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET answered %d", rec.Code)
	}
}

// migrateServer mounts an applier's /migrate endpoint on a test listener and
// returns its host:port (ShipUserHistory prepends the scheme).
func migrateServer(t testing.TB, ma *MigrationApplier) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/migrate", ma.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestShipUserHistoryConverges: the sender chunks a history, converges on the
// destination's cursor, skips prefixes the destination already holds, and a
// full re-ship applies nothing.
func TestShipUserHistoryConverges(t *testing.T) {
	backend := &countingBackend{}
	ma := NewMigrationApplier(2, 3, backend)
	addr := migrateServer(t, ma)
	history := userEvs("carol", 1, 23)

	// The destination already holds the first 5 events (its own WAL).
	ma.SeedCursor("carol", 5)
	applied, err := ShipUserHistory(nil, addr, 2, 3, "carol", history, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 18 {
		t.Fatalf("shipped %d events, want 18 (5 already held)", applied)
	}
	if got := ma.Cursor("carol"); got != 23 {
		t.Fatalf("destination cursor %d, want 23", got)
	}
	if got := ma.UsersCompleted(); got != 1 {
		t.Fatalf("UsersCompleted = %d, want 1", got)
	}

	// Idempotent re-ship: every chunk is a duplicate acknowledgment.
	applied, err = ShipUserHistory(nil, addr, 2, 3, "carol", history, 4, 0)
	if err != nil || applied != 0 {
		t.Fatalf("re-ship applied %d events (%v), want 0", applied, err)
	}
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if len(backend.events) != 18 {
		t.Fatalf("backend holds %d events, want 18", len(backend.events))
	}
	for i, ev := range backend.events {
		if ev.Value != float64(i+6) {
			t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+6)
		}
	}
}

// ringKeys builds a deterministic user-key population for delta tests.
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%04d", i)
	}
	return keys
}

// growRings builds the old ring over shards 0..n-1 at epoch e and the next
// ring over shards 0..n at epoch e+1 — the grow transition's two topologies.
func growRings(t testing.TB, n int, e uint64) (*Ring, *Ring) {
	t.Helper()
	infos := func(count int) []ShardInfo {
		out := make([]ShardInfo, count)
		for i := range out {
			out[i] = ShardInfo{ID: i, Addr: fmt.Sprintf("10.0.0.%d:9", i)}
		}
		return out
	}
	old, err := NewRing(e, 0, infos(n))
	if err != nil {
		t.Fatal(err)
	}
	next, err := NewRing(e+1, 0, infos(n+1))
	if err != nil {
		t.Fatal(err)
	}
	return old, next
}

// TestMovedUsersGrowIsMinimal: growing n→n+1 moves users only TO the added
// shard — no user is shuffled between surviving shards — and the delta is a
// strict subset of the population (consistent hashing, not mod-N).
func TestMovedUsersGrowIsMinimal(t *testing.T) {
	keys := ringKeys(4000)
	for _, n := range []int{2, 3, 5} {
		old, next := growRings(t, n, 1)
		moves := MovedUsers(old, next, keys)
		if len(moves) == 0 || len(moves) == len(keys) {
			t.Fatalf("grow %d→%d moved %d of %d users", n, n+1, len(moves), len(keys))
		}
		// Roughly 1/(n+1) of the keyspace lands on the new shard; allow wide
		// slack but catch a mod-N-style full reshuffle.
		if len(moves) > len(keys)/2 {
			t.Fatalf("grow %d→%d moved %d of %d users — delta is not minimal", n, n+1, len(moves), len(keys))
		}
		for u, mv := range moves {
			if mv.To != n {
				t.Fatalf("grow %d→%d moved user %q to shard %d, want only moves to the added shard %d", n, n+1, u, mv.To, n)
			}
			if mv.From < 0 || mv.From >= n {
				t.Fatalf("user %q moved from out-of-range shard %d", u, mv.From)
			}
		}
	}
}

// TestMovedUsersShrinkIsMinimal: shrinking n+1→n moves users only FROM the
// removed shard; survivors keep every user they had.
func TestMovedUsersShrinkIsMinimal(t *testing.T) {
	keys := ringKeys(4000)
	for _, n := range []int{2, 3, 5} {
		// The shrink transition is the grow transition reversed.
		next, old := growRings(t, n, 1)
		moves := MovedUsers(old, next, keys)
		if len(moves) == 0 {
			t.Fatalf("shrink %d→%d moved no users", n+1, n)
		}
		for u, mv := range moves {
			if mv.From != n {
				t.Fatalf("shrink %d→%d moved user %q from shard %d, want only moves from the removed shard %d", n+1, n, u, mv.From, n)
			}
			if mv.To < 0 || mv.To >= n {
				t.Fatalf("user %q moved to out-of-range shard %d", u, mv.To)
			}
		}
		// Exactness: the moved set is precisely the removed shard's users.
		for _, u := range keys {
			if old.Owner(u) == n {
				if _, ok := moves[u]; !ok {
					t.Fatalf("user %q owned by the removed shard %d is missing from the delta", u, n)
				}
			}
		}
	}
}

// TestRingEpochsAgreeOnNonMovers is the OwnerAmong-style property test: the
// epoch-E+1 ring, restricted to the epoch-E shard set, reproduces epoch E's
// assignment for EVERY user — the epoch number itself never perturbs
// ownership, so non-moving users agree across the transition by construction,
// not by luck. This is also the property the facade's OwnerAt shortcut (a
// throwaway ring with placeholder addresses) depends on.
func TestRingEpochsAgreeOnNonMovers(t *testing.T) {
	const n = 3
	keys := ringKeys(2000)
	old, next := growRings(t, n, 7)
	moves := MovedUsers(old, next, keys)
	inOldSet := func(shard int) bool { return shard < n }
	for _, u := range keys {
		if _, moved := moves[u]; !moved {
			if of, nf := old.Owner(u), next.Owner(u); of != nf {
				t.Fatalf("non-moving user %q owned by %d at epoch %d but %d at epoch %d", u, of, old.Epoch(), nf, next.Epoch())
			}
		}
		// Collapsing the next ring onto the old shard set must reproduce the
		// old assignment exactly, movers included.
		if got, want := next.OwnerAmong(u, inOldSet), old.Owner(u); got != want {
			t.Fatalf("user %q: next ring restricted to the old shard set owns %d, old ring owns %d", u, got, want)
		}
	}
	// Same shard set, different epochs: identical assignment everywhere.
	sameSet, err := NewRing(99, 0, old.Shards())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range keys {
		if a, b := old.Owner(u), sameSet.Owner(u); a != b {
			t.Fatalf("user %q changes owner %d→%d on a pure epoch bump", u, a, b)
		}
	}
}
