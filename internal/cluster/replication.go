package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/ingest"
	"ganc/internal/serve"
)

// Per-shard primary→replica replication. The primary's JSON-lines write-ahead
// log is already a replication log — record n is the n-th event the shard ever
// committed — so replication is cursor arithmetic over it: the primary ships
// committed batches to each replica over POST /replicate, the replica replays
// them through the same Ingestor machinery that serves its reads, and both
// sides agree on progress through one number, the applied-sequence cursor.
//
// The protocol is deliberately idempotent and self-healing:
//
//   - a batch whose events are all at or below the replica's cursor is a
//     duplicate and is acknowledged without applying anything;
//   - a batch overlapping the cursor has its already-applied prefix skipped;
//   - a batch starting past cursor+1 is a gap: the replica refuses it (a
//     cursor must never skip events) and answers with its cursor, so the
//     primary rewinds and re-ships the missing range from its WAL.
//
// Because every response carries the replica's authoritative cursor, the
// shipper needs no handshake: any guess about a replica's position converges
// after one round trip.

// Sentinel errors for the replication wire path, matchable with errors.Is.
var (
	// ErrReplicateBody marks a /replicate body that is not a well-formed
	// request: undecodable JSON, out-of-range sequence numbers, an oversized
	// batch, or events with empty keys.
	ErrReplicateBody = errors.New("cluster: malformed replicate request")
	// ErrReplicateShard marks a batch addressed to a different shard than the
	// replica serves — a topology error, never retryable.
	ErrReplicateShard = errors.New("cluster: replicate shard mismatch")
	// ErrReplicateEpoch marks a batch from an older ring epoch than the
	// replica has already seen (a demoted primary still shipping).
	ErrReplicateEpoch = errors.New("cluster: replicate epoch mismatch")
	// ErrReplicateGap marks a batch starting past the replica's cursor + 1:
	// applying it would skip committed events. The response carries the
	// cursor so the shipper can rewind and catch up.
	ErrReplicateGap = errors.New("cluster: replicate sequence gap")
)

// MaxReplicateEvents bounds one replicated batch, mirroring the ingest limit
// so a replica never absorbs more per call than a primary would accept;
// maxReplicateBody bounds the request body a replica will buffer, so hostile
// input cannot balloon replica memory.
const (
	MaxReplicateEvents = serve.MaxIngestEvents
	maxReplicateBody   = 16 << 20
)

// ReplicateRequest is the POST /replicate payload: one batch of committed
// events, positioned on the shard's WAL by the sequence number of its first
// event, plus the primary's committed head so the replica can report lag even
// while catching up.
type ReplicateRequest struct {
	// Shard is the shard ID the batch belongs to.
	Shard int `json:"shard"`
	// Epoch is the ring epoch the primary ships under.
	Epoch uint64 `json:"epoch"`
	// FirstSeq is the sequence number (1-based) of Events[0].
	FirstSeq uint64 `json:"first_seq"`
	// HeadSeq is the primary's committed cursor at send time. A request with
	// no events is a pure head announcement (heartbeat).
	HeadSeq uint64 `json:"head_seq"`
	// Events is the committed batch, in commit order.
	Events []serve.IngestEvent `json:"events"`
}

// ReplicateResponse is the POST /replicate answer. AppliedSeq is always the
// replica's authoritative cursor after the call, on success and refusal
// alike — it is the one field a shipper needs to converge.
type ReplicateResponse struct {
	// AppliedSeq is the replica's applied cursor after this call.
	AppliedSeq uint64 `json:"applied_seq"`
	// Applied is how many of the batch's events were actually applied (0 for
	// duplicates and heartbeats).
	Applied int `json:"applied"`
	// Version is the replica's serving engine generation after the call.
	Version int `json:"version"`
	// Gap is true when the batch was refused because it starts past the
	// cursor; the shipper must rewind to AppliedSeq and re-ship.
	Gap bool `json:"gap,omitempty"`
	// Error and Code carry the typed refusal on non-200 answers.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}

// ParseReplicateRequest decodes and validates a /replicate body. Every
// failure wraps ErrReplicateBody — never a panic — and allocation is bounded:
// the reader is capped at the wire limit before any decoding happens.
func ParseReplicateRequest(r io.Reader) (*ReplicateRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, maxReplicateBody))
	var req ReplicateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrReplicateBody, err)
	}
	if req.Shard < 0 {
		return nil, fmt.Errorf("%w: negative shard %d", ErrReplicateBody, req.Shard)
	}
	if len(req.Events) > MaxReplicateEvents {
		return nil, fmt.Errorf("%w: batch of %d events exceeds the limit of %d",
			ErrReplicateBody, len(req.Events), MaxReplicateEvents)
	}
	if len(req.Events) > 0 {
		if req.FirstSeq == 0 {
			return nil, fmt.Errorf("%w: first_seq 0 (sequence numbers are 1-based)", ErrReplicateBody)
		}
		if req.FirstSeq > math.MaxUint64-uint64(len(req.Events)) {
			return nil, fmt.Errorf("%w: sequence range overflows", ErrReplicateBody)
		}
		for k, ev := range req.Events {
			if ev.User == "" || ev.Item == "" {
				return nil, fmt.Errorf("%w: event %d is missing a user or item key", ErrReplicateBody, k)
			}
		}
	}
	return &req, nil
}

// ReplicaBackend is what a replica applies batches through: the applied
// cursor and the same batch-apply entry point the primary's write path uses.
// *ingest.Ingestor satisfies it; tests substitute exact-accounting fakes.
type ReplicaBackend interface {
	// Seq returns the applied-event cursor.
	Seq() uint64
	// Apply folds one batch into the serving state (WAL append, state
	// mutation, engine republish) and reports the new cursor and version.
	Apply(ctx context.Context, events []serve.IngestEvent) (serve.IngestResult, error)
}

// ReplicaApplier is the replica side of the protocol: it serializes incoming
// batches, enforces the cursor rules (idempotent duplicates, overlap
// skipping, gap refusal) and feeds the survivors to the backend. One applier
// guards one shard's replica.
type ReplicaApplier struct {
	shard   int
	backend ReplicaBackend

	// mu serializes the cursor check against the apply, so two concurrent
	// batches cannot interleave between "read cursor" and "apply suffix".
	mu sync.Mutex

	epoch      atomic.Uint64
	primarySeq atomic.Uint64
}

// NewReplicaApplier builds the applier for one shard's replica. The initial
// primary head is assumed equal to the backend's cursor (zero lag) until the
// first request announces a newer one.
func NewReplicaApplier(shard int, epoch uint64, backend ReplicaBackend) *ReplicaApplier {
	ra := &ReplicaApplier{shard: shard, backend: backend}
	ra.epoch.Store(epoch)
	ra.primarySeq.Store(backend.Seq())
	return ra
}

// SetEpoch moves the applier to a new ring epoch (promotion re-points the
// map under a bumped epoch; every surviving node adopts it).
func (ra *ReplicaApplier) SetEpoch(epoch uint64) { ra.epoch.Store(epoch) }

// Epoch returns the ring epoch the applier currently accepts.
func (ra *ReplicaApplier) Epoch() uint64 { return ra.epoch.Load() }

// observeHead advances the last-announced primary head monotonically.
func (ra *ReplicaApplier) observeHead(h uint64) {
	for {
		cur := ra.primarySeq.Load()
		if h <= cur || ra.primarySeq.CompareAndSwap(cur, h) {
			return
		}
	}
}

// Apply runs one replicate request through the cursor rules. The returned
// response always carries the replica's cursor; the error (when non-nil)
// wraps one of the ErrReplicate* sentinels, or the backend's own failure.
func (ra *ReplicaApplier) Apply(ctx context.Context, req *ReplicateRequest) (ReplicateResponse, error) {
	if req.Shard != ra.shard {
		return ReplicateResponse{AppliedSeq: ra.backend.Seq()},
			fmt.Errorf("%w: batch for shard %d reached shard %d's replica", ErrReplicateShard, req.Shard, ra.shard)
	}
	for {
		cur := ra.epoch.Load()
		if req.Epoch < cur {
			return ReplicateResponse{AppliedSeq: ra.backend.Seq()},
				fmt.Errorf("%w: batch from epoch %d, replica is at epoch %d", ErrReplicateEpoch, req.Epoch, cur)
		}
		// A newer epoch is adopted: promotion bumps the epoch cluster-wide,
		// and the new primary's first batch may arrive before the control
		// plane's SetEpoch call.
		if req.Epoch == cur || ra.epoch.CompareAndSwap(cur, req.Epoch) {
			break
		}
	}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	cursor := ra.backend.Seq()
	if h := req.HeadSeq; h > 0 {
		ra.observeHead(h)
	}
	if len(req.Events) == 0 {
		return ReplicateResponse{AppliedSeq: cursor}, nil // heartbeat
	}
	last := req.FirstSeq + uint64(len(req.Events)) - 1
	ra.observeHead(last)
	if last <= cursor {
		// Full duplicate: every event is already applied. Acknowledge with
		// the cursor; re-applying would double-count.
		return ReplicateResponse{AppliedSeq: cursor}, nil
	}
	if req.FirstSeq > cursor+1 {
		return ReplicateResponse{AppliedSeq: cursor, Gap: true},
			fmt.Errorf("%w: batch starts at %d, replica cursor is %d", ErrReplicateGap, req.FirstSeq, cursor)
	}
	// Partial overlap: skip the prefix at or below the cursor.
	skip := cursor + 1 - req.FirstSeq
	res, err := ra.backend.Apply(ctx, req.Events[skip:])
	if err != nil {
		return ReplicateResponse{AppliedSeq: ra.backend.Seq()}, fmt.Errorf("cluster: replica apply: %w", err)
	}
	return ReplicateResponse{AppliedSeq: res.Seq, Applied: len(req.Events) - int(skip), Version: res.Version}, nil
}

// Status reports the replica's replication status for /health and /metrics.
func (ra *ReplicaApplier) Status() serve.ReplicationStatus {
	applied := ra.backend.Seq()
	head := ra.primarySeq.Load()
	if head < applied {
		head = applied
	}
	return serve.ReplicationStatus{
		Role:       "replica",
		AppliedSeq: applied,
		PrimarySeq: head,
		LagEvents:  head - applied,
	}
}

// Handler returns the POST /replicate endpoint. Refusals are typed JSON
// bodies mirroring the router's error taxonomy: 400 replicate_body, 409
// replicate_shard / replicate_epoch / replicate_gap, 500 replicate_apply.
func (ra *ReplicaApplier) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
			return
		}
		req, err := ParseReplicateRequest(http.MaxBytesReader(w, r.Body, maxReplicateBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ReplicateResponse{
				AppliedSeq: ra.backend.Seq(), Error: err.Error(), Code: "replicate_body"})
			return
		}
		resp, err := ra.Apply(r.Context(), req)
		if err == nil {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp.Error = err.Error()
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrReplicateShard):
			status, resp.Code = http.StatusConflict, "replicate_shard"
		case errors.Is(err, ErrReplicateEpoch):
			status, resp.Code = http.StatusConflict, "replicate_epoch"
		case errors.Is(err, ErrReplicateGap):
			status, resp.Code = http.StatusConflict, "replicate_gap"
		default:
			resp.Code = "replicate_apply"
		}
		writeJSON(w, status, resp)
	})
}

// --- Primary-side shipper ------------------------------------------------------

// ShipperConfig assembles a Shipper.
type ShipperConfig struct {
	// Shard and Epoch identify the primary's place in the ring.
	Shard int
	Epoch uint64
	// WALPath is the primary's write-ahead log — the catch-up source.
	WALPath string
	// Replicas lists the replica addresses to ship to.
	Replicas []string
	// StartSeq is the primary's committed cursor at construction (the
	// snapshot cursor on a fresh boot). Replica positions are assumed equal
	// until their first response corrects the guess.
	StartSeq uint64
	// Client is the HTTP client for /replicate calls (default: keep-alive
	// pooling, no global timeout — per-call timeouts bound each ship).
	Client *http.Client
	// ShipTimeout bounds one /replicate call (default 2s).
	ShipTimeout time.Duration
	// RetryBackoff is the catch-up loop's pause after a failed ship
	// (default 100ms).
	RetryBackoff time.Duration
	// BatchEvents is the catch-up chunk size (default 1024, capped at
	// MaxReplicateEvents).
	BatchEvents int
	// WriteQuorum, when > 0, makes Commit block until that many replicas
	// have acknowledged the batch's head — a k-of-n durability guarantee:
	// a quorum-acked write survives the loss of any n-k replicas plus the
	// primary. Zero keeps the legacy fire-and-forget semantics (inline ship
	// to in-sync replicas, background catch-up for the rest). Clamped to
	// the replica count.
	WriteQuorum int
	// QuorumTimeout bounds Commit's quorum wait (default 2s). On expiry the
	// commit degrades to asynchronous catch-up — the client write has
	// already been accepted by the time the hook runs, so stalling it
	// forever would turn a replica outage into a primary outage. Expiries
	// are counted in the replication status.
	QuorumTimeout time.Duration
}

// Shipper is the primary side of the protocol: it forwards each committed
// batch to every replica inline (hooked into the ingestor's post-commit
// path), and falls back to a per-replica background catch-up loop — re-read
// the WAL from the replica's acknowledged cursor, ship chunks until drained —
// whenever a replica is down, behind, or answers with a gap. A replica
// therefore lags only while it is actually unreachable, and re-converges
// without operator action.
type Shipper struct {
	cfg     ShipperConfig
	client  *http.Client
	timeout time.Duration
	backoff time.Duration
	batch   int

	quorum   int
	qTimeout time.Duration

	head           atomic.Uint64
	epoch          atomic.Uint64
	quorumTimeouts atomic.Int64

	reps []*shipperReplica
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// shipperReplica is the shipper's per-replica progress record.
type shipperReplica struct {
	addr string
	wake chan struct{}

	mu      sync.Mutex
	acked   uint64
	insync  bool
	lastErr string
}

// NewShipper builds the shipper and starts one catch-up goroutine per
// replica. Close releases them.
func NewShipper(cfg ShipperConfig) *Shipper {
	sp := &Shipper{
		cfg:     cfg,
		client:  cfg.Client,
		timeout: cfg.ShipTimeout,
		backoff: cfg.RetryBackoff,
		batch:   cfg.BatchEvents,
		stop:    make(chan struct{}),
	}
	if sp.client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = 4
		sp.client = &http.Client{Transport: transport}
	}
	if sp.timeout <= 0 {
		sp.timeout = 2 * time.Second
	}
	if sp.backoff <= 0 {
		sp.backoff = 100 * time.Millisecond
	}
	if sp.batch <= 0 || sp.batch > MaxReplicateEvents {
		sp.batch = 1024
	}
	sp.quorum = cfg.WriteQuorum
	if sp.quorum > len(cfg.Replicas) {
		sp.quorum = len(cfg.Replicas)
	}
	sp.qTimeout = cfg.QuorumTimeout
	if sp.qTimeout <= 0 {
		sp.qTimeout = 2 * time.Second
	}
	sp.head.Store(cfg.StartSeq)
	sp.epoch.Store(cfg.Epoch)
	for _, addr := range cfg.Replicas {
		rep := &shipperReplica{addr: addr, wake: make(chan struct{}, 1), acked: cfg.StartSeq, insync: true}
		sp.reps = append(sp.reps, rep)
		sp.wg.Add(1)
		go sp.catchUp(rep)
	}
	return sp
}

// Commit is the ingestor's post-commit hook: it advances the committed head
// and ships the batch to every in-sync replica inline. Failures never
// propagate — a failing replica is flipped to catch-up mode and re-fed from
// the WAL by its background loop.
func (sp *Shipper) Commit(firstSeq uint64, events []serve.IngestEvent) {
	if len(events) == 0 {
		return
	}
	newHead := firstSeq + uint64(len(events)) - 1
	for {
		cur := sp.head.Load()
		if newHead <= cur || sp.head.CompareAndSwap(cur, newHead) {
			break
		}
	}
	for _, rep := range sp.reps {
		rep.mu.Lock()
		insync := rep.insync
		rep.mu.Unlock()
		if !insync {
			rep.poke()
			continue
		}
		resp, err := sp.ship(rep.addr, firstSeq, newHead, events)
		rep.mu.Lock()
		switch {
		case err != nil:
			rep.insync = false
			rep.lastErr = err.Error()
		case resp.Gap:
			rep.insync = false
			rep.acked = resp.AppliedSeq
		default:
			if resp.AppliedSeq > rep.acked {
				rep.acked = resp.AppliedSeq
			}
			rep.lastErr = ""
		}
		insync = rep.insync
		rep.mu.Unlock()
		if !insync {
			rep.poke()
		}
	}
	if sp.quorum > 0 && !sp.waitQuorum(newHead) {
		sp.quorumTimeouts.Add(1)
	}
}

// ackedAtLeast counts replicas whose acknowledged cursor has reached seq.
func (sp *Shipper) ackedAtLeast(seq uint64) int {
	n := 0
	for _, rep := range sp.reps {
		rep.mu.Lock()
		if rep.acked >= seq {
			n++
		}
		rep.mu.Unlock()
	}
	return n
}

// waitQuorum blocks until WriteQuorum replicas have acknowledged seq, the
// quorum timeout expires, or the shipper closes. The inline ship in Commit
// usually satisfies it immediately; the wait only bites while replicas are
// catching up, when durability rides on the background loops.
func (sp *Shipper) waitQuorum(seq uint64) bool {
	deadline := time.Now().Add(sp.qTimeout)
	for {
		if sp.ackedAtLeast(seq) >= sp.quorum {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-sp.stop:
			return false
		case <-time.After(time.Millisecond):
		}
	}
}

// SetHead advances the committed head without shipping (the recovery path:
// events replayed from the WAL are already durable there) and wakes every
// catch-up loop to re-feed replicas up to it.
func (sp *Shipper) SetHead(seq uint64) {
	for {
		cur := sp.head.Load()
		if seq <= cur || sp.head.CompareAndSwap(cur, seq) {
			break
		}
	}
	for _, rep := range sp.reps {
		rep.poke()
	}
}

// SetEpoch moves the shipper to a new ring epoch.
func (sp *Shipper) SetEpoch(epoch uint64) { sp.epoch.Store(epoch) }

// Resync probes every replica with one heartbeat and adopts each answered
// cursor as its acknowledged position — the handshake-by-heartbeat for when
// the shipper's positional guess may be wrong (primary restart, node
// rejoin). Replicas that do not answer, or answer from behind the head, are
// flipped to catch-up mode.
func (sp *Shipper) Resync() {
	head := sp.head.Load()
	for _, rep := range sp.reps {
		resp, err := sp.ship(rep.addr, 0, head, nil)
		rep.mu.Lock()
		if err != nil {
			rep.insync = false
			rep.lastErr = err.Error()
		} else {
			rep.acked = resp.AppliedSeq
			rep.insync = resp.AppliedSeq >= head
			rep.lastErr = ""
		}
		insync := rep.insync
		rep.mu.Unlock()
		if !insync {
			rep.poke()
		}
	}
}

// Head returns the committed head the shipper replicates up to.
func (sp *Shipper) Head() uint64 { return sp.head.Load() }

// Status reports the primary's replication status — head cursor plus every
// replica's acknowledged position — for /health and /metrics.
func (sp *Shipper) Status() serve.ReplicationStatus {
	head := sp.head.Load()
	st := serve.ReplicationStatus{Role: "primary", AppliedSeq: head, PrimarySeq: head}
	acked := make([]uint64, 0, len(sp.reps))
	for _, rep := range sp.reps {
		rep.mu.Lock()
		lag := uint64(0)
		if head > rep.acked {
			lag = head - rep.acked
		}
		st.Replicas = append(st.Replicas, serve.ReplicaLag{
			Addr: rep.addr, AckedSeq: rep.acked, LagEvents: lag, InSync: rep.insync, Error: rep.lastErr})
		acked = append(acked, rep.acked)
		rep.mu.Unlock()
	}
	if sp.quorum > 0 {
		st.WriteQuorum = sp.quorum
		st.QuorumAckedSeq = kthLargest(acked, sp.quorum)
		st.QuorumTimeouts = sp.quorumTimeouts.Load()
	}
	return st
}

// kthLargest returns the k-th largest value in vs — with replica cursors,
// the highest sequence at least k replicas have reached.
func kthLargest(vs []uint64, k int) uint64 {
	if k <= 0 || k > len(vs) {
		return 0
	}
	sorted := append([]uint64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return sorted[k-1]
}

// MaxLag returns the widest replica lag in events (0 with no replicas).
func (sp *Shipper) MaxLag() uint64 {
	var max uint64
	for _, r := range sp.Status().Replicas {
		if r.LagEvents > max {
			max = r.LagEvents
		}
	}
	return max
}

// WaitSync blocks until every replica has acknowledged the committed head,
// or the timeout expires (returning the stalled status as an error).
func (sp *Shipper) WaitSync(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if sp.MaxLag() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			st, _ := json.Marshal(sp.Status())
			return fmt.Errorf("cluster: replicas did not catch up within %v: %s", timeout, st)
		}
		select {
		case <-sp.stop:
			return fmt.Errorf("cluster: shipper closed while waiting for sync")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close stops the catch-up loops. Safe to call more than once.
func (sp *Shipper) Close() {
	sp.once.Do(func() { close(sp.stop) })
	sp.wg.Wait()
}

// poke wakes the replica's catch-up loop without blocking.
func (r *shipperReplica) poke() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// sleep pauses the catch-up loop, returning false when the shipper closed.
func (sp *Shipper) sleep(d time.Duration) bool {
	select {
	case <-sp.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// catchUp is the per-replica background loop: whenever woken it re-reads the
// WAL from the replica's acknowledged cursor and ships chunks until the
// replica has the committed head, then flips it back to in-sync shipping.
func (sp *Shipper) catchUp(rep *shipperReplica) {
	defer sp.wg.Done()
	for {
		select {
		case <-sp.stop:
			return
		case <-rep.wake:
		}
		for {
			select {
			case <-sp.stop:
				return
			default:
			}
			head := sp.head.Load()
			rep.mu.Lock()
			acked := rep.acked
			rep.mu.Unlock()
			if acked >= head {
				rep.mu.Lock()
				rep.insync = true
				rep.lastErr = ""
				rep.mu.Unlock()
				break
			}
			events, err := sp.readWAL(acked, head)
			if err != nil || len(events) == 0 {
				// A transient read race with an in-flight append, or a WAL
				// shorter than the committed head (which heals once the
				// append lands): back off and retry.
				rep.mu.Lock()
				if err != nil {
					rep.lastErr = err.Error()
				} else {
					rep.lastErr = "wal behind committed head"
				}
				rep.mu.Unlock()
				if !sp.sleep(sp.backoff) {
					return
				}
				continue
			}
			resp, err := sp.ship(rep.addr, acked+1, head, events)
			rep.mu.Lock()
			switch {
			case err != nil:
				rep.lastErr = err.Error()
			case resp.Gap:
				rep.acked = resp.AppliedSeq // rewind: the replica moved backwards (restart)
			default:
				if resp.AppliedSeq > rep.acked {
					rep.acked = resp.AppliedSeq
				}
				rep.lastErr = ""
			}
			rep.mu.Unlock()
			if err != nil && !sp.sleep(sp.backoff) {
				return
			}
		}
	}
}

// errStopReplay aborts a WAL scan early once the chunk is full.
var errStopReplay = errors.New("cluster: stop replay")

// readWAL collects the events with sequence numbers in (after, min(head,
// after+batch)] from the primary's WAL.
func (sp *Shipper) readWAL(after, head uint64) ([]serve.IngestEvent, error) {
	end := head
	if limit := after + uint64(sp.batch); limit < end {
		end = limit
	}
	var out []serve.IngestEvent
	err := ingest.ReplayLog(sp.cfg.WALPath, after, func(seq uint64, ev ingest.Event) error {
		if seq > end {
			return errStopReplay
		}
		out = append(out, ev)
		return nil
	})
	if err != nil && !errors.Is(err, errStopReplay) {
		return nil, err
	}
	return out, nil
}

// ship performs one /replicate call. A well-formed gap refusal is returned
// as a response (the caller rewinds); every other failure is an error.
func (sp *Shipper) ship(addr string, firstSeq, head uint64, events []serve.IngestEvent) (*ReplicateResponse, error) {
	payload, err := json.Marshal(ReplicateRequest{
		Shard:    sp.cfg.Shard,
		Epoch:    sp.epoch.Load(),
		FirstSeq: firstSeq,
		HeadSeq:  head,
		Events:   events,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: encode replicate batch: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), sp.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/replicate", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("cluster: build replicate request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sp.client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	var out ReplicateResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("cluster: replica %s answered %d with an undecodable body: %s",
			addr, resp.StatusCode, truncate(body))
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return &out, nil
	case resp.StatusCode == http.StatusConflict && out.Gap:
		return &out, nil
	default:
		return nil, fmt.Errorf("cluster: replica %s refused batch: status %d, code %q: %s",
			addr, resp.StatusCode, out.Code, out.Error)
	}
}
