package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ganc/internal/admit"
	"ganc/internal/obs"
	"ganc/internal/serve"
)

// ErrShardUnavailable marks a shard that could not be reached (or kept
// answering 5xx) within the router's bounded retry budget. HTTP handlers
// translate it into a typed 503 response.
var ErrShardUnavailable = errors.New("cluster: shard unavailable")

// ErrShardResponse marks a shard answer the router could not interpret — a
// hostile or corrupt body where a JSON document was expected. It is a
// distinct sentinel from ErrShardUnavailable because retrying does not help:
// the shard is up but speaking the wrong protocol.
var ErrShardResponse = errors.New("cluster: malformed shard response")

// ShardError carries the shard context of a routing failure. It wraps
// ErrShardUnavailable or ErrShardResponse for errors.Is matching.
type ShardError struct {
	// Shard and Addr identify the failing shard.
	Shard int
	Addr  string
	// Attempts is how many times the router tried before giving up.
	Attempts int
	// Err is the underlying sentinel-wrapped cause.
	Err error
}

// Error implements error.
func (e *ShardError) Error() string {
	return fmt.Sprintf("cluster: shard %d (%s) failed after %d attempts: %v", e.Shard, e.Addr, e.Attempts, e.Err)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *ShardError) Unwrap() error { return e.Err }

// RouterConfig assembles a Router.
type RouterConfig struct {
	// Ring supplies shard ownership and addresses. Required; every shard
	// must carry a non-empty address.
	Ring *Ring
	// Client is the HTTP client used for shard calls (default: a client with
	// keep-alive pooling sized for the shard count and a 30s timeout).
	Client *http.Client
	// Retries is how many times a failed shard call is retried before the
	// typed 503 (default 2, i.e. 3 attempts). Negative disables retries.
	Retries int
	// RetryBackoff is the pause between attempts (default 25ms).
	RetryBackoff time.Duration
	// ProbeTimeout bounds one shard's /health or /info probe during
	// aggregation (default 2s).
	ProbeTimeout time.Duration
	// Metrics, when set, registers the router's per-shard fan-out, retry,
	// failure and epoch-mismatch series plus per-route HTTP instrumentation
	// on the registry, and mounts GET /metrics on the handler.
	Metrics *obs.Registry
	// RequestLog, when set, emits one structured JSON line per routed
	// request.
	RequestLog *obs.RequestLogger
	// Admission, when set, applies rate limiting and a concurrency cap at
	// the router before any shard is contacted (nil admits everything).
	Admission *admit.Controller
	// MaxReplicaLag is the read-failover staleness bound: a replica whose
	// reported lag exceeds this many committed events is never chosen as a
	// read target (default DefaultMaxReplicaLag; negative disables failover).
	MaxReplicaLag int64
	// Detector, when set, supplies the shared cluster-liveness view: failed
	// reads pick their failover replica from the cached view instead of
	// probing every replica inline, and a suspected-down primary is skipped
	// without burning the retry budget. The router does not own the detector;
	// whoever constructed it must Close it.
	Detector *Detector
}

// DefaultMaxReplicaLag is the default staleness bound for read failover, in
// committed events. A replica kept in sync by the shipper sits at 0–1 events
// of lag; the bound only bites while a replica is catching up from the WAL,
// when serving its answers would silently rewind a user's visible history.
const DefaultMaxReplicaLag = 1024

// Router is the scatter-gather front of a shard set: it proxies single-user
// reads to the owning shard, fans batch reads and ingest batches out across
// owning shards, merges the answers, and aggregates health and info. It is
// stateless apart from its configuration, so any number of router replicas
// can front the same shard set.
type Router struct {
	ring     atomic.Pointer[Ring]
	client   *http.Client
	attempts int
	backoff  time.Duration
	probe    time.Duration
	maxLag   int64
	detector *Detector

	metrics   *obs.Registry
	httpObs   *obs.HTTPMetrics
	admission *admit.Controller
	rm        *routerMetrics

	// reshard holds the in-flight ring transition (nil outside a reshard);
	// doubleDispatches counts reads served from a user's old owner while the
	// user was still migrating, across the router's lifetime.
	reshard          atomic.Pointer[reshardState]
	doubleDispatches atomic.Int64
}

// reshardState is the router's view of an in-flight ring transition: the
// next ring (epoch E+1) plus the set of users whose ownership changes, each
// with a flip bit the reshard coordinator raises once the user's history has
// landed at its new owner.
type reshardState struct {
	next  *Ring
	users map[string]*migratingUser
	began time.Time
}

// migratingUser tracks one moving user through the cutover: reads stay on
// the old owner (From) until flipped, writes go to the next ring's owner
// from the moment the transition begins.
type migratingUser struct {
	from    int
	flipped atomic.Bool
}

// NewRouter validates the configuration and builds the router.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Ring == nil {
		return nil, fmt.Errorf("%w: router needs a ring", ErrBadRing)
	}
	for _, s := range cfg.Ring.Shards() {
		if s.Addr == "" {
			return nil, fmt.Errorf("%w: shard %d has no address", ErrBadRing, s.ID)
		}
	}
	attempts := cfg.Retries + 1
	if attempts < 1 {
		attempts = 1
	}
	backoff := cfg.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	probe := cfg.ProbeTimeout
	if probe <= 0 {
		probe = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		transport := http.DefaultTransport.(*http.Transport).Clone()
		transport.MaxIdleConnsPerHost = 64
		client = &http.Client{Transport: transport, Timeout: 30 * time.Second}
	}
	maxLag := cfg.MaxReplicaLag
	if maxLag == 0 {
		maxLag = DefaultMaxReplicaLag
	}
	rt := &Router{
		client:    client,
		attempts:  attempts,
		backoff:   backoff,
		probe:     probe,
		maxLag:    maxLag,
		detector:  cfg.Detector,
		metrics:   cfg.Metrics,
		admission: cfg.Admission,
	}
	rt.ring.Store(cfg.Ring)
	if cfg.Metrics != nil || cfg.RequestLog != nil {
		reg := cfg.Metrics
		if reg == nil {
			reg = obs.NewRegistry()
		}
		rt.httpObs = obs.NewHTTPMetrics(reg, cfg.RequestLog, rt.requestMeta, nil)
	}
	if cfg.Metrics != nil {
		rt.rm = newRouterMetrics(cfg.Metrics, cfg.Ring.NumShards())
		if cfg.Admission != nil {
			cfg.Admission.Register(cfg.Metrics)
		}
	}
	return rt, nil
}

// Ring returns the ring the router currently routes by.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// UpdateRing atomically re-points the router at a new shard map — the
// promotion path: the shard count must match (ownership is hashed by shard
// ID, and the per-shard metric slices are sized once), but addresses,
// replica lists and the epoch may all change. In-flight requests finish
// against the ring they started with.
func (rt *Router) UpdateRing(ring *Ring) error {
	if ring == nil {
		return fmt.Errorf("%w: router needs a ring", ErrBadRing)
	}
	cur := rt.Ring()
	if ring.NumShards() != cur.NumShards() {
		return fmt.Errorf("%w: shard count changed from %d to %d; a router cannot re-shard in place",
			ErrBadRing, cur.NumShards(), ring.NumShards())
	}
	for _, s := range ring.Shards() {
		if s.Addr == "" {
			return fmt.Errorf("%w: shard %d has no address", ErrBadRing, s.ID)
		}
	}
	rt.ring.Store(ring)
	return nil
}

// Owner returns the index of the shard owning the user key (the ring's
// assignment; exposed so drivers and tests can partition work the same way
// the router does).
func (rt *Router) Owner(userKey string) int { return rt.Ring().Owner(userKey) }

// BeginReshard puts the router into the double-ring transition state: writes
// are routed by the next ring immediately (freezing moving users' histories
// at their old owners), while reads for the moving users stay on their old
// owners until FlipUser raises their flip bit. UpdateRing stays refused for
// shard-count changes; this, paired with CompleteReshard, is the one
// sanctioned path through a topology change. Only one reshard may be in
// flight at a time.
func (rt *Router) BeginReshard(next *Ring, moving map[string]UserMove) error {
	if next == nil {
		return fmt.Errorf("%w: reshard needs a next ring", ErrBadRing)
	}
	cur := rt.Ring()
	if next.Epoch() <= cur.Epoch() {
		return fmt.Errorf("%w: next ring epoch %d is not newer than the current epoch %d",
			ErrBadRing, next.Epoch(), cur.Epoch())
	}
	for _, s := range next.Shards() {
		if s.Addr == "" {
			return fmt.Errorf("%w: shard %d has no address", ErrBadRing, s.ID)
		}
	}
	rs := &reshardState{next: next, users: make(map[string]*migratingUser, len(moving)), began: time.Now()}
	for user, mv := range moving {
		rs.users[user] = &migratingUser{from: mv.From}
	}
	if !rt.reshard.CompareAndSwap(nil, rs) {
		return fmt.Errorf("%w: a reshard is already in flight", ErrBadRing)
	}
	return nil
}

// FlipUser cuts one moving user over to its new owner: the coordinator calls
// it once the user's history has fully landed there. Reads for the user
// route by the next ring from this point on. Unknown users are a no-op.
func (rt *Router) FlipUser(user string) {
	rs := rt.reshard.Load()
	if rs == nil {
		return
	}
	if mu, ok := rs.users[user]; ok && !mu.flipped.Swap(true) {
		rt.rm.userFlipped()
	}
}

// CompleteReshard publishes the final ring and leaves the transition state.
// The final ring must match the shape the transition was begun with (same
// shard count and epoch; addresses and replica lists may differ, e.g. after
// replicas finished warming).
func (rt *Router) CompleteReshard(final *Ring) error {
	rs := rt.reshard.Load()
	if rs == nil {
		return fmt.Errorf("%w: no reshard in flight", ErrBadRing)
	}
	if final == nil {
		return fmt.Errorf("%w: reshard needs a final ring", ErrBadRing)
	}
	if final.NumShards() != rs.next.NumShards() || final.Epoch() != rs.next.Epoch() {
		return fmt.Errorf("%w: final ring (epoch %d, %d shards) does not match the transition (epoch %d, %d shards)",
			ErrBadRing, final.Epoch(), final.NumShards(), rs.next.Epoch(), rs.next.NumShards())
	}
	for _, s := range final.Shards() {
		if s.Addr == "" {
			return fmt.Errorf("%w: shard %d has no address", ErrBadRing, s.ID)
		}
	}
	rt.rm.cutover(time.Since(rs.began).Seconds())
	rt.ring.Store(final)
	rt.reshard.Store(nil)
	return nil
}

// AbortReshard abandons an in-flight transition and reverts all routing to
// the current ring (writes that already landed at epoch-E+1-only shards are
// not replayed back; see DESIGN.md §14 for the failure semantics).
func (rt *Router) AbortReshard() { rt.reshard.Store(nil) }

// Resharding reports whether a ring transition is in flight.
func (rt *Router) Resharding() bool { return rt.reshard.Load() != nil }

// DoubleDispatches returns how many reads the router has served from a
// user's old owner while the user's history was still migrating.
func (rt *Router) DoubleDispatches() int64 { return rt.doubleDispatches.Load() }

// readTarget resolves the shard that serves a user's reads: outside a
// reshard, the current ring's owner; during one, the old owner until the
// user's flip bit rises, the next ring's owner after.
func (rt *Router) readTarget(userKey string) int {
	rs := rt.reshard.Load()
	if rs == nil {
		return rt.Ring().Owner(userKey)
	}
	if mu, ok := rs.users[userKey]; ok && !mu.flipped.Load() {
		rt.doubleDispatches.Add(1)
		rt.rm.doubleDispatch()
		return mu.from
	}
	return rs.next.Owner(userKey)
}

// writeTarget resolves the shard that absorbs a user's writes: the next
// ring's owner from the moment a reshard begins (so moving users' histories
// freeze at their old owners), the current ring's owner otherwise.
func (rt *Router) writeTarget(userKey string) int {
	if rs := rt.reshard.Load(); rs != nil {
		return rs.next.Owner(userKey)
	}
	return rt.Ring().Owner(userKey)
}

// shardInfo resolves a shard index to its ring entry, preferring the next
// ring during a transition (it knows shards being added) and falling back to
// the current ring (which still knows shards being removed).
func (rt *Router) shardInfo(shard int) (ShardInfo, error) {
	if rs := rt.reshard.Load(); rs != nil && shard >= 0 && shard < rs.next.NumShards() {
		return rs.next.Shard(shard), nil
	}
	ring := rt.Ring()
	if shard < 0 || shard >= ring.NumShards() {
		return ShardInfo{}, fmt.Errorf("%w: shard %d is not in the ring", ErrBadRing, shard)
	}
	return ring.Shard(shard), nil
}

// callShard performs one call against the shard's primary.
func (rt *Router) callShard(ctx context.Context, shard int, method, pathAndQuery string, body []byte) (int, []byte, error) {
	info, err := rt.shardInfo(shard)
	if err != nil {
		return 0, nil, &ShardError{Shard: shard, Attempts: 0, Err: fmt.Errorf("%w: %v", ErrShardUnavailable, err)}
	}
	return rt.callAddr(ctx, shard, info.Addr, method, pathAndQuery, body)
}

// callAddr performs one shard call against an explicit address with the
// bounded retry budget: transport errors and 5xx answers are retried with
// backoff; any other HTTP answer is returned as-is (4xx is the shard's
// verdict, not a routing failure). The returned body is fully read so
// connections return to the keep-alive pool.
func (rt *Router) callAddr(ctx context.Context, shard int, addr, method, pathAndQuery string, body []byte) (int, []byte, error) {
	rt.rm.call(shard)
	var lastErr error
	for attempt := 0; attempt < rt.attempts; attempt++ {
		if attempt > 0 {
			rt.rm.retry(shard)
			select {
			case <-ctx.Done():
				rt.rm.failure(shard)
				return 0, nil, &ShardError{Shard: shard, Addr: addr, Attempts: attempt,
					Err: fmt.Errorf("%w: %v", ErrShardUnavailable, ctx.Err())}
			case <-time.After(rt.backoff):
			}
		}
		var reader io.Reader
		if body != nil {
			reader = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, "http://"+addr+pathAndQuery, reader)
		if err != nil {
			return 0, nil, &ShardError{Shard: shard, Addr: addr, Attempts: attempt + 1,
				Err: fmt.Errorf("%w: building request: %v", ErrShardUnavailable, err)}
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			lastErr = fmt.Errorf("shard answered %d", resp.StatusCode)
			continue
		}
		return resp.StatusCode, payload, nil
	}
	rt.rm.failure(shard)
	return 0, nil, &ShardError{Shard: shard, Addr: addr, Attempts: rt.attempts,
		Err: fmt.Errorf("%w: %v", ErrShardUnavailable, lastErr)}
}

// callShardRead is callShard with read failover: when the primary exhausts
// its retry budget, the router first re-resolves the shard against the
// current ring — a promotion may have re-pointed the primary mid-retry —
// and otherwise serves the read from the freshest replica within the
// staleness bound. Writes never take this path — a replica applies batches
// only through /replicate, so failing a write over would fork the shard's
// history.
func (rt *Router) callShardRead(ctx context.Context, shard int, method, pathAndQuery string, body []byte) (int, []byte, error) {
	var status int
	var payload []byte
	var err error
	// With a detector view on hand, a suspected-down primary is skipped
	// outright: no call, no retry budget, straight to the cached failover
	// choice. Without one (or while the primary is merely failing, not yet
	// suspected) the primary is tried first as before.
	if !rt.primarySuspected(shard) {
		status, payload, err = rt.callShard(ctx, shard, method, pathAndQuery, body)
		if err == nil {
			return status, payload, nil
		}
	} else {
		info, _ := rt.shardInfo(shard)
		err = &ShardError{Shard: shard, Addr: info.Addr,
			Err: fmt.Errorf("%w: primary suspected down by the failure detector", ErrShardUnavailable)}
	}
	info, infoErr := rt.shardInfo(shard)
	if infoErr != nil {
		return status, payload, err
	}
	// A ring republish (promotion, reshard cutover) may have re-pointed the
	// shard's primary while the failed attempts were burning their budget
	// against the old address. One call against the current primary covers
	// that window — and it is the only way out when the shard has a single
	// replica, because the post-promotion ring's replica slot holds exactly
	// the dead ex-primary.
	var se *ShardError
	if errors.As(err, &se) && se.Addr != "" && se.Addr != info.Addr {
		if st, repointed, err2 := rt.callAddr(ctx, shard, info.Addr, method, pathAndQuery, body); err2 == nil {
			return st, repointed, nil
		}
	}
	replicas := info.Replicas
	if len(replicas) == 0 || rt.maxLag < 0 {
		return status, payload, err
	}
	addr, ok := rt.failoverTarget(ctx, replicas)
	if !ok {
		return status, payload, err
	}
	rt.rm.failover(shard)
	st, body2, err2 := rt.callAddr(ctx, shard, addr, method, pathAndQuery, body)
	if err2 != nil {
		// Report the primary's failure: it is the root cause, and the
		// replica's may just be the same outage.
		return status, payload, err
	}
	return st, body2, nil
}

// primarySuspected consults the detector's cached view for the shard's
// primary. Always false without a detector: suspicion requires evidence.
func (rt *Router) primarySuspected(shard int) bool {
	if rt.detector == nil {
		return false
	}
	info, err := rt.shardInfo(shard)
	if err != nil {
		return false
	}
	row, ok := rt.detector.Node(info.Addr)
	return ok && row.Suspected
}

// failoverTarget picks the replica a failed read falls over to: from the
// detector's cached view when one covers these replicas (zero inline
// probes), by live parallel probing otherwise.
func (rt *Router) failoverTarget(ctx context.Context, replicas []string) (string, bool) {
	if rt.detector != nil {
		if addr, known, ok := rt.detector.FreshestReplica(replicas, rt.maxLag); known {
			return addr, ok
		}
	}
	return rt.pickReplica(ctx, replicas)
}

// pickReplica probes the shard's replicas and returns the address of the
// freshest live one whose reported lag is within the staleness bound.
func (rt *Router) pickReplica(ctx context.Context, replicas []string) (string, bool) {
	type candidate struct {
		addr string
		seq  uint64
		ok   bool
	}
	probeCtx, cancel := context.WithTimeout(ctx, rt.probe)
	defer cancel()
	results := make([]candidate, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			health, err := probeHealth(probeCtx, rt.client, addr)
			if err != nil || health.Replication == nil {
				return
			}
			repl := health.Replication
			if repl.LagEvents > uint64(rt.maxLag) {
				return
			}
			results[i] = candidate{addr: addr, seq: repl.AppliedSeq, ok: true}
		}(i, addr)
	}
	wg.Wait()
	best, found := candidate{}, false
	for _, c := range results {
		if c.ok && (!found || c.seq > best.seq) {
			best, found = c, true
		}
	}
	return best.addr, found
}

// probeHealth fetches and decodes one node's /health without retries. It is
// shared by the router's inline probes and the failure detector's sampling
// loop — one parser, one fuzz surface.
func probeHealth(ctx context.Context, client *http.Client, addr string) (*serve.HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/health", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxShardResponse))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: replica answered %d", ErrShardUnavailable, resp.StatusCode)
	}
	var health serve.HealthResponse
	if err := json.Unmarshal(body, &health); err != nil {
		return nil, fmt.Errorf("%w: decoding /health: %v", ErrShardResponse, err)
	}
	return &health, nil
}

// maxShardResponse bounds how much of a shard answer the router will buffer,
// so a hostile or broken shard cannot balloon router memory.
const maxShardResponse = 64 << 20

// Handler returns the router's HTTP surface. The routes mirror the shard
// servers', so a client cannot tell a router from a single node apart from
// the extra cluster detail in /info.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", rt.handleHealth)
	mux.HandleFunc("/info", rt.handleInfo)
	mux.HandleFunc("/recommend", rt.handleRecommend)
	mux.HandleFunc("/recommend/batch", rt.handleBatch)
	mux.HandleFunc("/ingest", rt.handleIngest)
	mux.HandleFunc("/users", rt.handleUsers)
	if rt.metrics != nil {
		mux.Handle("/metrics", rt.metrics.Handler())
	}
	// Same middleware order as a shard server: instrumentation outermost so
	// shed requests are counted, admission next so /health and /metrics stay
	// reachable under overload.
	var h http.Handler = mux
	h = rt.admission.Middleware(h)
	if rt.httpObs != nil {
		h = rt.httpObs.Wrap(h)
	}
	return h
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeShardFailure answers the typed 503 for a routing failure.
func writeShardFailure(w http.ResponseWriter, err error) {
	resp := map[string]interface{}{"error": err.Error(), "code": "shard_unavailable"}
	var se *ShardError
	if errors.As(err, &se) {
		resp["shard"] = se.Shard
		if errors.Is(err, ErrShardResponse) {
			resp["code"] = "shard_response"
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, resp)
}

// passthrough relays a shard's verbatim answer (status and body) to the
// client — the single-user proxy path.
func passthrough(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func (rt *Router) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	userKey := r.URL.Query().Get("user")
	if userKey == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing ?user="})
		return
	}
	shard := rt.readTarget(userKey)
	status, body, err := rt.callShardRead(r.Context(), shard, http.MethodGet, "/recommend?"+r.URL.RawQuery, nil)
	if err != nil {
		writeShardFailure(w, err)
		return
	}
	passthrough(w, status, body)
}

// ShardBatchMeta records one shard's contribution to a scatter-gather
// answer, including the exact engine version that served it — the
// per-shard accounting the race regression tests pin.
type ShardBatchMeta struct {
	// Shard is the shard ID.
	Shard int `json:"shard"`
	// Users is how many of the request's users the shard owned.
	Users int `json:"users"`
	// Model and Version echo the shard's self-report for this call.
	Model   string `json:"model"`
	Version int    `json:"version"`
}

// BatchResponse is the router's POST /recommend/batch payload: the standard
// serving shape (results in request order) plus the per-shard scatter
// record. Version is the sum of the participating shards' versions, so a
// version delta across two calls bounds how many shard republishes happened
// in between.
type BatchResponse struct {
	serve.BatchResponse
	// Shards records the scatter: which shards participated, with how many
	// users, at which engine version.
	Shards []ShardBatchMeta `json:"shards"`
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req serve.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return
	}
	if len(req.Users) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "users list is empty"})
		return
	}
	// The router enforces the single-node batch limit itself: fanning an
	// oversized batch out would either multiply the limit by the shard count
	// or bounce a client mistake back as a misleading shard-side 503.
	if len(req.Users) > serve.MaxBatchUsers {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("batch of %d users exceeds the limit of %d", len(req.Users), serve.MaxBatchUsers)})
		return
	}
	// Partition the users by owning shard (the read target, so mid-reshard
	// batches respect per-user cutover state), remembering each user's
	// position so the merged results preserve request order.
	perShard := make(map[int][]int)
	for k, user := range req.Users {
		shard := rt.readTarget(user)
		perShard[shard] = append(perShard[shard], k)
	}

	type shardAnswer struct {
		shard   int
		indices []int
		resp    serve.BatchResponse
		err     error
	}
	answers := make(chan shardAnswer, len(perShard))
	for shard, indices := range perShard {
		go func(shard int, indices []int) {
			users := make([]string, len(indices))
			for k, idx := range indices {
				users[k] = req.Users[idx]
			}
			payload, _ := json.Marshal(serve.BatchRequest{Users: users})
			ans := shardAnswer{shard: shard, indices: indices}
			info, _ := rt.shardInfo(shard)
			status, body, err := rt.callShardRead(r.Context(), shard, http.MethodPost, "/recommend/batch", payload)
			switch {
			case err != nil:
				ans.err = err
			case status != http.StatusOK:
				ans.err = &ShardError{Shard: shard, Addr: info.Addr, Attempts: 1,
					Err: fmt.Errorf("%w: sub-batch rejected with status %d: %s", ErrShardResponse, status, truncate(body))}
			default:
				if err := json.Unmarshal(body, &ans.resp); err != nil {
					ans.err = &ShardError{Shard: shard, Addr: info.Addr, Attempts: 1,
						Err: fmt.Errorf("%w: decoding sub-batch answer: %v", ErrShardResponse, err)}
				} else if len(ans.resp.Results) != len(users) {
					ans.err = &ShardError{Shard: shard, Addr: info.Addr, Attempts: 1,
						Err: fmt.Errorf("%w: sub-batch answered %d results for %d users", ErrShardResponse, len(ans.resp.Results), len(users))}
				}
			}
			answers <- ans
		}(shard, indices)
	}

	out := BatchResponse{}
	out.Results = make([]serve.RecommendResponse, len(req.Users))
	var failure error
	for range perShard {
		ans := <-answers
		if ans.err != nil {
			// A partial batch would silently drop users, so any shard failure
			// fails the whole request loudly; collect the remaining answers
			// first to keep the channel drained.
			if failure == nil {
				failure = ans.err
			}
			continue
		}
		for k, idx := range ans.indices {
			out.Results[idx] = ans.resp.Results[k]
		}
		out.Shards = append(out.Shards, ShardBatchMeta{
			Shard:   ans.shard,
			Users:   len(ans.indices),
			Model:   ans.resp.Model,
			Version: ans.resp.Version,
		})
		out.Model = ans.resp.Model
		out.Version += ans.resp.Version
	}
	if failure != nil {
		writeShardFailure(w, failure)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// ShardIngestMeta records one shard's slice of a routed ingest batch.
type ShardIngestMeta struct {
	// Shard is the shard ID.
	Shard int `json:"shard"`
	// Result is the shard's own ingest summary (events applied, sequence
	// cursor, serving version, post-commit warning).
	Result serve.IngestResult `json:"result"`
}

// IngestResponse is the router's POST /ingest payload: the total applied
// count plus the per-shard routing record. There is no cluster-wide
// sequence number — each shard owns its cursor — so Seq is omitted.
type IngestResponse struct {
	// Applied is the event count absorbed across all shards.
	Applied int `json:"applied"`
	// Shards records which owner received which slice.
	Shards []ShardIngestMeta `json:"shards"`
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	var req serve.IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid JSON: " + err.Error()})
		return
	}
	if len(req.Events) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "events list is empty"})
		return
	}
	// Mirror the single-node ingest limit (see handleBatch for the reason).
	if len(req.Events) > serve.MaxIngestEvents {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("batch of %d events exceeds the limit of %d", len(req.Events), serve.MaxIngestEvents)})
		return
	}
	for k, ev := range req.Events {
		if ev.User == "" || ev.Item == "" {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("event %d is missing a user or item key", k)})
			return
		}
	}
	// Events go to the shard owning their user: the owner's write-ahead log
	// is the durability point for that user's interactions. Mid-reshard the
	// write target is the next ring's owner (the old owner is draining, its
	// log frozen for moving users). Writes are never failed over to replicas
	// (see callShardRead).
	perShard := make(map[int][]serve.IngestEvent)
	for _, ev := range req.Events {
		shard := rt.writeTarget(ev.User)
		perShard[shard] = append(perShard[shard], ev)
	}

	type shardAnswer struct {
		shard  int
		events int
		result serve.IngestResult
		err    error
	}
	answers := make(chan shardAnswer, len(perShard))
	for shard, events := range perShard {
		go func(shard int, events []serve.IngestEvent) {
			payload, _ := json.Marshal(serve.IngestRequest{Events: events})
			ans := shardAnswer{shard: shard, events: len(events)}
			info, _ := rt.shardInfo(shard)
			status, body, err := rt.callShard(r.Context(), shard, http.MethodPost, "/ingest", payload)
			switch {
			case err != nil:
				ans.err = err
			case status != http.StatusOK:
				ans.err = &ShardError{Shard: shard, Addr: info.Addr, Attempts: 1,
					Err: fmt.Errorf("%w: ingest slice rejected with status %d: %s", ErrShardResponse, status, truncate(body))}
			default:
				if err := json.Unmarshal(body, &ans.result); err != nil {
					ans.err = &ShardError{Shard: shard, Addr: info.Addr, Attempts: 1,
						Err: fmt.Errorf("%w: decoding ingest answer: %v", ErrShardResponse, err)}
				}
			}
			answers <- ans
		}(shard, events)
	}

	out := IngestResponse{}
	var failure error
	for range perShard {
		ans := <-answers
		if ans.err != nil {
			if failure == nil {
				failure = ans.err
			}
			continue
		}
		out.Applied += ans.result.Applied
		out.Shards = append(out.Shards, ShardIngestMeta{Shard: ans.shard, Result: ans.result})
	}
	if failure != nil {
		// Slices that did land are durably applied at their shards; the 503
		// reports what succeeded so the caller does not blindly retry the
		// whole batch (re-sending an applied slice would double-count it).
		// The code distinguishes retryable outages (shard_unavailable) from
		// protocol mismatches (shard_response), like every other route.
		resp := map[string]interface{}{
			"error":   failure.Error(),
			"code":    "shard_unavailable",
			"applied": out.Applied,
			"shards":  out.Shards,
		}
		if errors.Is(failure, ErrShardResponse) {
			resp["code"] = "shard_response"
		}
		var se *ShardError
		if errors.As(failure, &se) {
			resp["shard"] = se.Shard
		}
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// ShardStatus is one shard's row in the aggregated /info and /health
// answers.
type ShardStatus struct {
	// Shard and Addr identify the shard.
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Healthy reports whether the shard answered its probe.
	Healthy bool `json:"healthy"`
	// Error carries the probe failure when Healthy is false.
	Error string `json:"error,omitempty"`
	// Info is the shard's own /info answer (nil when unreachable).
	Info *serve.InfoResponse `json:"info,omitempty"`
	// Health is the shard's own /health answer when the probe path was
	// /health (nil when unreachable or when probing /info).
	Health *serve.HealthResponse `json:"health,omitempty"`
	// EpochMismatch flags a shard whose snapshot was cut for a different
	// ring epoch or shard count than the router routes by — a deployment
	// error that silently misroutes users if ignored.
	EpochMismatch bool `json:"epoch_mismatch,omitempty"`
}

// ClusterInfo is the cluster-level block of the router's /info answer.
type ClusterInfo struct {
	// Epoch and NumShards describe the router's ring.
	Epoch     uint64 `json:"epoch"`
	NumShards int    `json:"num_shards"`
	// Healthy counts the shards that answered the probe.
	Healthy int `json:"healthy"`
	// Shards holds the per-shard detail.
	Shards []ShardStatus `json:"shards"`
}

// InfoResponse is the router's GET /info payload. The embedded standard
// fields aggregate across reachable shards (version is the SUM of shard
// versions, so deltas count cluster-wide republishes; cache counters are
// summed; universe sizes take the widest shard view), which keeps the
// router drop-in compatible with single-node /info consumers like the load
// driver.
type InfoResponse struct {
	serve.InfoResponse
	// Cluster carries the per-shard breakdown.
	Cluster ClusterInfo `json:"cluster"`
}

// probeShards fans one GET across all shards with the probe timeout.
func (rt *Router) probeShards(ctx context.Context, path string) []ShardStatus {
	ring := rt.Ring()
	statuses := make([]ShardStatus, ring.NumShards())
	ctx, cancel := context.WithTimeout(ctx, rt.probe)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < ring.NumShards(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			info := ring.Shard(i)
			st := ShardStatus{Shard: info.ID, Addr: info.Addr}
			status, body, err := rt.callShard(ctx, i, http.MethodGet, path, nil)
			switch {
			case err != nil:
				st.Error = err.Error()
			case status != http.StatusOK:
				st.Error = fmt.Sprintf("shard answered %d", status)
			default:
				var parsed serve.InfoResponse
				if path == "/info" {
					if err := json.Unmarshal(body, &parsed); err != nil {
						st.Error = fmt.Errorf("%w: decoding /info: %v", ErrShardResponse, err).Error()
						break
					}
					st.Info = &parsed
					if id := parsed.Shard; id != nil &&
						(id.RingEpoch != ring.Epoch() || id.NumShards != ring.NumShards() || id.ShardID != info.ID) {
						st.EpochMismatch = true
					}
					rt.rm.epochMismatch(i, st.EpochMismatch)
				}
				if path == "/health" {
					// Best-effort: a shard running an older build answers a
					// bare {"status":"ok"}, which still decodes.
					var health serve.HealthResponse
					if err := json.Unmarshal(body, &health); err == nil {
						st.Health = &health
					}
				}
				st.Healthy = true
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	return statuses
}

func (rt *Router) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	ring := rt.Ring()
	statuses := rt.probeShards(r.Context(), "/info")
	out := InfoResponse{Cluster: ClusterInfo{
		Epoch:     ring.Epoch(),
		NumShards: ring.NumShards(),
		Shards:    statuses,
	}}
	for _, st := range statuses {
		if !st.Healthy {
			continue
		}
		out.Cluster.Healthy++
		info := st.Info
		if info == nil {
			continue
		}
		if out.Model == "" {
			out.Model = info.Model
			out.Dataset = info.Dataset
			out.TopN = info.TopN
		}
		out.Version += info.Version
		if info.NumUsers > out.NumUsers {
			out.NumUsers = info.NumUsers
		}
		if info.NumItems > out.NumItems {
			out.NumItems = info.NumItems
		}
		out.Cache.Hits += info.Cache.Hits
		out.Cache.Misses += info.Cache.Misses
		out.Cache.Coalesced += info.Cache.Coalesced
		out.Cache.Size += info.Cache.Size
		out.Cache.Capacity += info.Cache.Capacity
	}
	writeJSON(w, http.StatusOK, out)
}

// HealthResponse is the router's GET /health payload: "ok" when every shard
// answered its probe, "degraded" otherwise. The router itself answers 200
// either way — it is alive and still routing to the healthy shards.
type HealthResponse struct {
	// Status is "ok" or "degraded".
	Status string `json:"status"`
	// Healthy and Shards count probe outcomes.
	Healthy int `json:"healthy"`
	Shards  int `json:"shards"`
	// Down lists the unreachable shard IDs (absent when all are up).
	Down []int `json:"down,omitempty"`
	// Admission lists per-shard shed counts and limiter saturation, one row
	// per reachable shard that reports admission state in its own /health.
	Admission []ShardAdmission `json:"admission,omitempty"`
	// RouterAdmission is the router's own admission snapshot when admission
	// control is enabled at the router.
	RouterAdmission *admit.Stats `json:"router_admission,omitempty"`
	// Replicas lists per-replica liveness and lag, one row per replica
	// address in the ring (absent on replica-less clusters).
	Replicas []ReplicaHealth `json:"replicas,omitempty"`
	// Detector lists the failure detector's cached per-node liveness rows
	// (absent when the router runs without a detector).
	Detector []NodeLiveness `json:"detector,omitempty"`
}

// ReplicaHealth is one replica's row in the router's aggregated /health
// answer: whether it answered its probe, its applied cursor and how many
// committed events it still lags behind its primary.
type ReplicaHealth struct {
	// Shard and Addr identify the replica.
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	// Healthy reports whether the replica answered its probe.
	Healthy bool `json:"healthy"`
	// Error carries the probe failure when Healthy is false.
	Error string `json:"error,omitempty"`
	// AppliedSeq and LagEvents echo the replica's replication cursor.
	AppliedSeq uint64 `json:"applied_seq"`
	LagEvents  uint64 `json:"lag_events"`
}

// probeReplicas fans a /health GET across every replica address in the ring
// and records the widest per-shard lag in the replica-lag gauge.
func (rt *Router) probeReplicas(ctx context.Context) []ReplicaHealth {
	ring := rt.Ring()
	type slot struct {
		shard int
		addr  string
	}
	var slots []slot
	for i := 0; i < ring.NumShards(); i++ {
		info := ring.Shard(i)
		for _, addr := range info.Replicas {
			slots = append(slots, slot{shard: i, addr: addr})
		}
	}
	if len(slots) == 0 {
		return nil
	}
	probeCtx, cancel := context.WithTimeout(ctx, rt.probe)
	defer cancel()
	rows := make([]ReplicaHealth, len(slots))
	var wg sync.WaitGroup
	for k, sl := range slots {
		wg.Add(1)
		go func(k int, sl slot) {
			defer wg.Done()
			row := ReplicaHealth{Shard: ring.Shard(sl.shard).ID, Addr: sl.addr}
			health, err := probeHealth(probeCtx, rt.client, sl.addr)
			switch {
			case err != nil:
				row.Error = err.Error()
			case health.Replication == nil:
				row.Error = "node reports no replication status"
			default:
				row.Healthy = true
				row.AppliedSeq = health.Replication.AppliedSeq
				row.LagEvents = health.Replication.LagEvents
			}
			rows[k] = row
		}(k, sl)
	}
	wg.Wait()
	maxLag := make([]uint64, ring.NumShards())
	for k, row := range rows {
		if row.LagEvents > maxLag[slots[k].shard] {
			maxLag[slots[k].shard] = row.LagEvents
		}
	}
	for shard, lag := range maxLag {
		rt.rm.replicaLag(shard, lag)
	}
	return rows
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	statuses := rt.probeShards(r.Context(), "/health")
	out := HealthResponse{Status: "ok", Shards: len(statuses)}
	out.Replicas = rt.probeReplicas(r.Context())
	if rt.detector != nil {
		out.Detector = rt.detector.View()
	}
	for _, st := range statuses {
		if st.Healthy {
			out.Healthy++
		} else {
			out.Down = append(out.Down, st.Shard)
		}
		if st.Health != nil && st.Health.Admission != nil {
			a := *st.Health.Admission
			out.Admission = append(out.Admission, ShardAdmission{
				Shard: st.Shard,
				Stats: a,
				Shed:  a.Shed(),
			})
		}
	}
	if out.Healthy < out.Shards {
		out.Status = "degraded"
	}
	if rt.admission != nil {
		stats := rt.admission.Stats()
		out.RouterAdmission = &stats
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleUsers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "GET only"})
		return
	}
	// Shards replicate the identifier universe (ownership partitions the
	// serving work, not the tables), so the widest shard view is the
	// cluster's servable-user count.
	statuses := rt.probeShards(r.Context(), "/info")
	max, reachable := 0, 0
	for _, st := range statuses {
		if st.Info != nil {
			reachable++
			if st.Info.NumUsers > max {
				max = st.Info.NumUsers
			}
		}
	}
	if reachable == 0 {
		writeShardFailure(w, fmt.Errorf("%w: no shard answered /info", ErrShardUnavailable))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"servable_users": max})
}

// truncate bounds a hostile body's appearance in an error message.
func truncate(body []byte) string {
	const limit = 200
	if len(body) > limit {
		return string(body[:limit]) + "…"
	}
	return string(body)
}
