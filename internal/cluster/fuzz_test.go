package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ganc/internal/serve"
)

// allowedDecodeError reports whether a DecodeRing failure is one of the
// typed sentinels — the only failures the wire parser may produce.
func allowedDecodeError(err error) bool {
	return errors.Is(err, ErrRingMagic) || errors.Is(err, ErrRingVersion) ||
		errors.Is(err, ErrRingCorrupt) || errors.Is(err, ErrBadRing)
}

// FuzzRingDecode throws arbitrary bytes at the shard-map wire parser. The
// contract: never panic, fail only with the typed sentinels, and any map
// that does parse must route every user key to exactly one in-range shard,
// deterministically, with ownership surviving a re-encode round trip.
func FuzzRingDecode(f *testing.F) {
	good, err := NewRing(3, 16, []ShardInfo{{ID: 0, Addr: "h1:1"}, {ID: 7, Addr: "h2:2"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good.Encode())
	f.Add([]byte(RingMagic))
	f.Add([]byte("GANCRINGgarbage"))
	f.Add([]byte{})
	mutated := good.Encode()
	mutated[len(mutated)/2] ^= 0x40
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRing(data)
		if err != nil {
			if !allowedDecodeError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		users := []string{"", "alice", string(data), "user-42", "\x00\xff"}
		for _, u := range users {
			owner := r.Owner(u)
			if owner < 0 || owner >= r.NumShards() {
				t.Fatalf("user %q routed to out-of-range shard %d of %d", u, owner, r.NumShards())
			}
			if again := r.Owner(u); again != owner {
				t.Fatalf("user %q routed to %d then %d", u, owner, again)
			}
		}
		back, err := DecodeRing(r.Encode())
		if err != nil {
			t.Fatalf("re-encoded ring does not decode: %v", err)
		}
		for _, u := range users {
			if back.Owner(u) != r.Owner(u) {
				t.Fatalf("ownership of %q changed across re-encode", u)
			}
		}
	})
}

// FuzzPeerListRouting feeds hostile peer lists and user keys to the
// cmd-line parsing and routing pipeline: ParsePeers must fail typed or
// yield a ring on which every user key routes to exactly one shard, and —
// with an arbitrary live subset — OwnerAmong lands on a live shard whenever
// one exists.
func FuzzPeerListRouting(f *testing.F) {
	f.Add("h1:8081,h2:8082,h3:8083", "alice", uint8(0b101))
	f.Add("", "u", uint8(0))
	f.Add(",,,", "u", uint8(1))
	f.Add("a,a", "u", uint8(3))
	f.Add(strings.Repeat("x", 300), "u", uint8(7))

	f.Fuzz(func(t *testing.T, list, user string, liveMask uint8) {
		shards, err := ParsePeers(list)
		if err != nil {
			if !errors.Is(err, ErrBadPeers) {
				t.Fatalf("untyped peer-list error: %v", err)
			}
			return
		}
		r, err := NewRing(1, 0, shards)
		if err != nil {
			t.Fatalf("parsed peers do not build a ring: %v", err)
		}
		owner := r.Owner(user)
		if owner < 0 || owner >= r.NumShards() {
			t.Fatalf("user %q routed to out-of-range shard %d", user, owner)
		}
		if again := r.Owner(user); again != owner {
			t.Fatalf("routing of %q is not deterministic", user)
		}
		alive := func(s int) bool { return liveMask&(1<<(s%8)) != 0 }
		anyAlive := false
		for s := 0; s < r.NumShards(); s++ {
			if alive(s) {
				anyAlive = true
				break
			}
		}
		got := r.OwnerAmong(user, alive)
		switch {
		case !anyAlive && got != -1:
			t.Fatalf("no live shards but OwnerAmong returned %d", got)
		case anyAlive && (got < 0 || got >= r.NumShards() || !alive(got)):
			t.Fatalf("OwnerAmong returned %d, which is not a live shard", got)
		case anyAlive && alive(owner) && got != owner:
			t.Fatalf("owner %d is alive but OwnerAmong chose %d", owner, got)
		}
	})
}

// FuzzRouterHostileShardResponse stands a fake shard that answers every
// request with attacker-controlled status and body, and drives every router
// route through it. The router must never panic and must answer each client
// with a bounded, well-formed status: a passthrough, a 4xx of its own, or a
// typed 503.
func FuzzRouterHostileShardResponse(f *testing.F) {
	f.Add(200, []byte("{}"))
	f.Add(200, []byte("\x00\xff not json"))
	f.Add(200, []byte(`{"results":[{"user":"u"}],"model":"m","version":1}`))
	f.Add(500, []byte("boom"))
	f.Add(404, []byte(`{"error":"nope"}`))
	f.Add(200, []byte(`{"results":[],"version":-9}`))

	f.Fuzz(func(t *testing.T, status int, body []byte) {
		if status < 100 || status > 999 {
			status = 200 + (((status % 500) + 500) % 500)
		}
		shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
			_, _ = w.Write(body)
		}))
		defer shard.Close()
		ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: strings.TrimPrefix(shard.URL, "http://")}})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := NewRouter(RouterConfig{Ring: ring, Retries: 0})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()

		check := func(route string, resp *http.Response, err error) {
			if err != nil {
				t.Fatalf("%s: transport error through router: %v", route, err)
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				t.Fatalf("%s: reading router answer: %v", route, err)
			}
			if resp.StatusCode < 200 || resp.StatusCode > 599 {
				t.Fatalf("%s: router produced status %d", route, resp.StatusCode)
			}
		}

		resp, err := http.Get(ts.URL + "/recommend?user=u")
		check("/recommend", resp, err)
		batch, _ := json.Marshal(serve.BatchRequest{Users: []string{"u", "v"}})
		resp, err = http.Post(ts.URL+"/recommend/batch", "application/json", bytes.NewReader(batch))
		check("/recommend/batch", resp, err)
		ing, _ := json.Marshal(serve.IngestRequest{Events: []serve.IngestEvent{{User: "u", Item: "i", Value: 1}}})
		resp, err = http.Post(ts.URL+"/ingest", "application/json", bytes.NewReader(ing))
		check("/ingest", resp, err)
		resp, err = http.Get(ts.URL + "/info")
		check("/info", resp, err)
		resp, err = http.Get(ts.URL + "/health")
		check("/health", resp, err)
		resp, err = http.Get(ts.URL + "/users")
		check("/users", resp, err)
	})
}

// FuzzDetectorHostileHealth stands hostile nodes whose /health answers
// attacker-controlled status and body, and drives the failure detector's
// sampling loop plus a detector-routed read through them. The contract: the
// detector never panics, a malformed answer (non-200 or undecodable JSON) is
// a miss — never adopted into the liveness view as an alive row with a
// garbage cursor — the cached view only ever contains ring addresses, and
// the router fronting that view still answers every client with a bounded,
// well-formed status.
func FuzzDetectorHostileHealth(f *testing.F) {
	f.Add(200, []byte("{}"))
	f.Add(200, []byte(`{"status":"ok","shard":0,"replication":{"role":"replica","applied_seq":18446744073709551615,"lag_events":7}}`))
	f.Add(200, []byte("\x00\xff not json"))
	f.Add(200, []byte(`{"replication":{"applied_seq":-1}}`))
	f.Add(500, []byte("boom"))
	f.Add(204, []byte{})
	f.Add(200, []byte(`{"replication":`))

	f.Fuzz(func(t *testing.T, status int, body []byte) {
		// 1xx is excluded: the server treats it as informational and the
		// handler's body write becomes a separate final 200, so the probe
		// legitimately sees a different status than the fuzzer chose.
		if status < 200 || status > 999 {
			status = 200 + (((status % 500) + 500) % 500)
		}
		hostile := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
			_, _ = w.Write(body)
		})
		primary := httptest.NewServer(hostile)
		defer primary.Close()
		replica := httptest.NewServer(hostile)
		defer replica.Close()
		pAddr := strings.TrimPrefix(primary.URL, "http://")
		rAddr := strings.TrimPrefix(replica.URL, "http://")

		ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: pAddr, Replicas: []string{rAddr}}})
		if err != nil {
			t.Fatal(err)
		}
		d := newDetector(DetectorConfig{Ring: func() *Ring { return ring }, SuspectAfter: 1})
		defer d.Close()
		d.sample()
		d.sample()

		// The answer is adoptable only when it is a 200 carrying valid JSON —
		// the same decode the probe performs. Anything else must read as a
		// dead node, not as an alive row with a poisoned cursor.
		var parsed serve.HealthResponse
		adoptable := status == http.StatusOK && json.Unmarshal(body, &parsed) == nil
		for _, addr := range []string{pAddr, rAddr} {
			row, ok := d.Node(addr)
			if !ok {
				t.Fatalf("sampled node %s missing from the view", addr)
			}
			if row.Alive != adoptable {
				t.Fatalf("node %s alive=%v after a status-%d answer (adoptable=%v)", addr, row.Alive, status, adoptable)
			}
			if adoptable && parsed.Replication != nil && row.AppliedSeq != parsed.Replication.AppliedSeq {
				t.Fatalf("view cursor %d does not match the served cursor %d", row.AppliedSeq, parsed.Replication.AppliedSeq)
			}
			if !adoptable && row.AppliedSeq != 0 {
				t.Fatalf("a malformed answer poisoned node %s's cursor to %d", addr, row.AppliedSeq)
			}
		}
		for _, row := range d.View() {
			if row.Addr != pAddr && row.Addr != rAddr {
				t.Fatalf("view invented address %q", row.Addr)
			}
		}
		if addr, _, ok := d.FreshestReplica([]string{rAddr}, 1<<40); ok && addr != rAddr {
			t.Fatalf("FreshestReplica returned %q, not a candidate", addr)
		}

		rt, err := NewRouter(RouterConfig{Ring: ring, Detector: d, Retries: 0})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/recommend?user=u")
		if err != nil {
			t.Fatalf("transport error through router: %v", err)
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatalf("reading router answer: %v", err)
		}
		if resp.StatusCode < 200 || resp.StatusCode > 599 {
			t.Fatalf("router produced status %d", resp.StatusCode)
		}
	})
}

// FuzzRingOwnershipPartition drives the partition property the scatter
// paths rely on directly: for any shard count and any two user keys, owners
// are in range, equal keys share an owner, and the partition of a batch by
// owner covers each key exactly once.
func FuzzRingOwnershipPartition(f *testing.F) {
	f.Add(uint8(3), "alice", "bob")
	f.Add(uint8(1), "", "x")
	f.Add(uint8(16), "sim-user-7-0000001", "sim-user-7-0000002")

	f.Fuzz(func(t *testing.T, n uint8, a, b string) {
		shardCount := int(n)%16 + 1
		r, err := NewUniformRing(1, shardCount)
		if err != nil {
			t.Fatal(err)
		}
		users := []string{a, b, a + b, fmt.Sprintf("%s|%s", a, b)}
		seen := make(map[string]int)
		for _, u := range users {
			owner := r.Owner(u)
			if owner < 0 || owner >= shardCount {
				t.Fatalf("user %q routed to shard %d of %d", u, owner, shardCount)
			}
			if prev, ok := seen[u]; ok && prev != owner {
				t.Fatalf("user %q owned by both shard %d and shard %d", u, prev, owner)
			}
			seen[u] = owner
		}
	})
}
