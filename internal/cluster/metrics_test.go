package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ganc/internal/admit"
	"ganc/internal/dataset"
	"ganc/internal/obs"
	"ganc/internal/serve"
)

// scrapeRouter fetches and strictly parses the router's /metrics.
func scrapeRouter(t *testing.T, url string) *obs.Scrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	sc, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("router /metrics failed strict parse: %v", err)
	}
	return sc
}

// TestRouterMetrics drives reads through an instrumented router and checks
// the scrape: per-shard fan-out counters accounting for every shard call,
// per-route HTTP series, zeroed epoch-mismatch gauges, and the router's own
// admission series.
func TestRouterMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ctrl := admit.New(admit.Config{MaxConcurrent: 64})
	rt, _ := clusterFixture(t, 3, func(cfg *RouterConfig) {
		cfg.Metrics = reg
		cfg.Admission = ctrl
	})
	ts := routerServer(t, rt)

	const reads = 20
	wantFanout := 0
	for u := 0; u < reads; u++ {
		var out serve.RecommendResponse
		if code := getJSON(t, ts.URL+"/recommend?user=user-"+strconv.Itoa(u), &out); code != http.StatusOK {
			t.Fatalf("read %d = %d", u, code)
		}
		wantFanout++
	}
	users := make([]string, 40)
	owners := map[int]bool{}
	for u := range users {
		users[u] = fmt.Sprintf("user-%d", u)
		owners[rt.Owner(users[u])] = true
	}
	var batch BatchResponse
	if code := postJSON(t, ts.URL+"/recommend/batch", serve.BatchRequest{Users: users}, &batch); code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	wantFanout += len(owners) // one sub-batch call per owning shard

	sc := scrapeRouter(t, ts.URL)
	var fanout float64
	for i := 0; i < 3; i++ {
		v, _ := sc.Value("ganc_router_fanout_total", obs.L("shard", strconv.Itoa(i)))
		fanout += v
		if mm, ok := sc.Value("ganc_router_epoch_mismatch", obs.L("shard", strconv.Itoa(i))); !ok || mm != 0 {
			t.Errorf("epoch mismatch gauge shard %d = %v, %v (want 0)", i, mm, ok)
		}
	}
	if fanout != float64(wantFanout) {
		t.Errorf("fanout total = %v, want %d", fanout, wantFanout)
	}
	if v := sc.SumByPrefix("ganc_http_requests_total", obs.L("route", "/recommend")); v != reads {
		t.Errorf("router /recommend requests_total = %v, want %d", v, reads)
	}
	if v, ok := sc.Value("ganc_http_request_duration_seconds_count", obs.L("route", "/recommend/batch")); !ok || v != 1 {
		t.Errorf("batch latency count = %v, %v", v, ok)
	}
	if v, ok := sc.Value("ganc_admission_admitted_total"); !ok || v != reads+1 {
		t.Errorf("router admitted_total = %v, %v (want %d)", v, ok, reads+1)
	}
	if v, ok := sc.Value("ganc_router_retries_total", obs.L("shard", "0")); !ok || v != 0 {
		t.Errorf("retries shard 0 = %v, %v", v, ok)
	}
}

// TestRouterHealthSurfacesShardAdmission stands up shards with their own
// admission controllers, drives one into shedding, and checks the router's
// aggregated /health reports the per-shard shed count and saturation.
func TestRouterHealthSurfacesShardAdmission(t *testing.T) {
	const n = 2
	infos := make([]ShardInfo, n)
	shardURLs := make([]string, n)
	for i := 0; i < n; i++ {
		b := dataset.NewBuilder("tiny", 4)
		b.Add("user-0", "item-0", 5)
		d := b.Build()
		eng := &echoEngine{name: "echo", items: 1}
		srv, err := serve.New(d, eng, 1,
			serve.WithShardIdentity(serve.ShardIdentity{ShardID: i, NumShards: n, RingEpoch: 1}),
			serve.WithAdmission(admit.New(admit.Config{RatePerSec: 0.0001, Burst: 1, MaxConcurrent: 4})))
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(srv.Handler())
		t.Cleanup(hts.Close)
		shardURLs[i] = hts.URL
		infos[i] = ShardInfo{ID: i, Addr: strings.TrimPrefix(hts.URL, "http://")}
	}
	ring, err := NewRing(1, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Ring: ring, ProbeTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := routerServer(t, rt)

	// Exhaust shard 0's burst directly: first admitted, second shed.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(shardURLs[0] + "/recommend?user=user-0")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	var health HealthResponse
	if code := getJSON(t, ts.URL+"/health", &health); code != http.StatusOK {
		t.Fatalf("/health = %d", code)
	}
	if health.Status != "ok" || len(health.Admission) != n {
		t.Fatalf("health = %+v, want ok with %d admission rows", health, n)
	}
	var shard0 *ShardAdmission
	for i := range health.Admission {
		if health.Admission[i].Shard == 0 {
			shard0 = &health.Admission[i]
		}
	}
	if shard0 == nil || shard0.Shed < 1 || shard0.RateLimited < 1 {
		t.Fatalf("shard 0 admission row = %+v, want shed >= 1", shard0)
	}
	if shard0.MaxConcurrent != 4 {
		t.Fatalf("shard 0 max_concurrent = %d, want 4", shard0.MaxConcurrent)
	}
}
