package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ganc/internal/dataset"
	"ganc/internal/ingest"
	"ganc/internal/serve"
)

// TestReplicationCommitRacesCatchUpAndStatus is the replication sibling of
// TestRouterScatterGatherRacesShardPublishes: per-shard primaries committing
// batches (WAL append + inline ship) race the background catch-up loops,
// Resync heartbeats, injected replica outages and concurrent status readers,
// under -race in CI. The functional assertion is exact cursor accounting:
// after the storm every replica's cursor equals its primary's WAL head, every
// committed event was applied exactly once and in order, and reported lag is
// zero — duplicates suppressed, gaps healed, nothing skipped.
func TestReplicationCommitRacesCatchUpAndStatus(t *testing.T) {
	const (
		shards     = 2
		writers    = 3
		iterations = 25
		batchLen   = 2
	)
	total := uint64(writers * iterations * batchLen)

	type shardRig struct {
		wal     *ingest.Log
		sp      *Shipper
		backend *countingBackend
		ra      *ReplicaApplier
		commit  sync.Mutex // stands in for the ingestor's lock
	}
	rigs := make([]*shardRig, shards)
	for i := range rigs {
		walPath := filepath.Join(t.TempDir(), fmt.Sprintf("shard-%03d.wal", i))
		wal, err := ingest.OpenLog(walPath)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { wal.Close() })
		backend := &countingBackend{}
		ra := NewReplicaApplier(i, 1, backend)
		sp := NewShipper(ShipperConfig{
			Shard: i, Epoch: 1, WALPath: walPath,
			Replicas:    []string{replicaServer(t, ra)},
			ShipTimeout: 2 * time.Second, RetryBackoff: 2 * time.Millisecond, BatchEvents: 7,
		})
		t.Cleanup(sp.Close)
		rigs[i] = &shardRig{wal: wal, sp: sp, backend: backend, ra: ra}
	}

	start := make(chan struct{})
	stop := make(chan struct{})
	errs := make(chan error, shards*(writers+2)*iterations)
	var wg sync.WaitGroup

	for si, rig := range rigs {
		// Writers: commit batches the way the ingestor does — WAL append and
		// post-commit hook under one lock — from several goroutines.
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(si int, rig *shardRig) {
				defer wg.Done()
				<-start
				for k := 0; k < iterations; k++ {
					rig.commit.Lock()
					first := rig.wal.Seq() + 1
					batch := evs(int(first), batchLen)
					if _, err := rig.wal.Append(batch); err != nil {
						rig.commit.Unlock()
						errs <- fmt.Errorf("shard %d: wal append: %v", si, err)
						return
					}
					rig.sp.Commit(first, batch)
					rig.commit.Unlock()
				}
			}(si, rig)
		}
		// Chaos: inject replica outages (flipping the shipper to catch-up
		// mode) and fire Resync heartbeats mid-commit-storm.
		wg.Add(1)
		go func(rig *shardRig) {
			defer wg.Done()
			<-start
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				case <-time.After(3 * time.Millisecond):
				}
				switch k % 3 {
				case 0:
					rig.backend.mu.Lock()
					rig.backend.failErr = errors.New("injected replica outage")
					rig.backend.mu.Unlock()
					time.Sleep(2 * time.Millisecond)
					rig.backend.mu.Lock()
					rig.backend.failErr = nil
					rig.backend.mu.Unlock()
				case 1:
					rig.sp.Resync()
				case 2:
					rig.sp.SetHead(rig.wal.Seq())
				}
			}
		}(rig)
		// Status readers: lag arithmetic must stay coherent mid-race.
		wg.Add(1)
		go func(si int, rig *shardRig) {
			defer wg.Done()
			<-start
			for {
				select {
				case <-stop:
					return
				case <-time.After(time.Millisecond):
				}
				st := rig.ra.Status()
				if st.AppliedSeq > st.PrimarySeq {
					errs <- fmt.Errorf("shard %d replica: applied %d past head %d", si, st.AppliedSeq, st.PrimarySeq)
				}
				if st.LagEvents != st.PrimarySeq-st.AppliedSeq {
					errs <- fmt.Errorf("shard %d replica: lag %d != %d-%d", si, st.LagEvents, st.PrimarySeq, st.AppliedSeq)
				}
				pst := rig.sp.Status()
				if pst.AppliedSeq > total {
					errs <- fmt.Errorf("shard %d primary: head %d past total %d", si, pst.AppliedSeq, total)
				}
				for _, rl := range pst.Replicas {
					if rl.AckedSeq > total {
						errs <- fmt.Errorf("shard %d primary: acked %d past total %d", si, rl.AckedSeq, total)
					}
				}
			}
		}(si, rig)
	}

	close(start)
	// Writers finish first; then stop the chaos and status goroutines.
	waitWriters := make(chan struct{})
	go func() { wg.Wait(); close(waitWriters) }()
	deadline := time.After(30 * time.Second)
	for done := false; !done; {
		select {
		case <-waitWriters:
			done = true
		case <-time.After(5 * time.Millisecond):
			allCommitted := true
			for _, rig := range rigs {
				if rig.wal.Seq() < total {
					allCommitted = false
				}
			}
			if allCommitted {
				select {
				case <-stop:
				default:
					close(stop)
				}
			}
		case <-deadline:
			t.Fatal("commit storm did not finish in time")
		}
	}
	select {
	case <-stop:
	default:
		close(stop)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exact per-shard cursor accounting after convergence.
	for si, rig := range rigs {
		if got := rig.wal.Seq(); got != total {
			t.Fatalf("shard %d WAL head %d, want %d", si, got, total)
		}
		if err := rig.sp.WaitSync(10 * time.Second); err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		if got := rig.backend.Seq(); got != total {
			t.Fatalf("shard %d replica cursor %d, want %d", si, got, total)
		}
		st := rig.ra.Status()
		if st.LagEvents != 0 || st.AppliedSeq != total {
			t.Fatalf("shard %d replica status %+v after sync", si, st)
		}
		pst := rig.sp.Status()
		if len(pst.Replicas) != 1 || !pst.Replicas[0].InSync || pst.Replicas[0].AckedSeq != total {
			t.Fatalf("shard %d primary status %+v after sync", si, pst.Replicas)
		}
		rig.backend.mu.Lock()
		if len(rig.backend.events) != int(total) {
			rig.backend.mu.Unlock()
			t.Fatalf("shard %d applied %d events, want exactly %d", si, len(rig.backend.events), total)
		}
		for i, ev := range rig.backend.events {
			if ev.Value != float64(i+1) {
				rig.backend.mu.Unlock()
				t.Fatalf("shard %d event %d has value %v, want %d (out of order or re-applied)", si, i, ev.Value, i+1)
			}
		}
		rig.backend.mu.Unlock()
	}
}

// replicatedShard is one shard of the failover fixture: a primary and one
// warm replica, both real servers over the same universe, the replica
// reporting its replication cursor through a real applier probe.
type replicatedShard struct {
	primary *testShard
	replica *testShard
	applier *ReplicaApplier
	backend *countingBackend
}

// replicatedFixture stands up n shards, each with a live replica, and a
// router whose ring carries the replica addresses — the read-failover
// topology.
func replicatedFixture(t testing.TB, n int, opts ...func(*RouterConfig)) (*Router, []*replicatedShard) {
	t.Helper()
	const users, items = 40, 12
	build := func(shard int) (*serve.Server, *echoEngine) {
		b := dataset.NewBuilder("tiny", users)
		for u := 0; u < users; u++ {
			b.Add(fmt.Sprintf("user-%d", u), fmt.Sprintf("item-%d", u%items), 5)
		}
		eng := &echoEngine{name: "echo", items: items}
		srv, err := serve.New(b.Build(), eng, 3,
			serve.WithShardIdentity(serve.ShardIdentity{ShardID: shard, NumShards: n, RingEpoch: 1}))
		if err != nil {
			t.Fatal(err)
		}
		return srv, eng
	}
	shards := make([]*replicatedShard, n)
	infos := make([]ShardInfo, n)
	for i := 0; i < n; i++ {
		psrv, peng := build(i)
		pts := httptest.NewServer(psrv.Handler())
		t.Cleanup(pts.Close)

		rsrv, reng := build(i)
		backend := &countingBackend{}
		applier := NewReplicaApplier(i, 1, backend)
		rsrv.SetReplicationProbe(applier.Status)
		mux := http.NewServeMux()
		mux.Handle("/replicate", applier.Handler())
		mux.Handle("/", rsrv.Handler())
		rts := httptest.NewServer(mux)
		t.Cleanup(rts.Close)

		shards[i] = &replicatedShard{
			primary: &testShard{srv: psrv, eng: peng, ts: pts},
			replica: &testShard{srv: rsrv, eng: reng, ts: rts},
			applier: applier,
			backend: backend,
		}
		infos[i] = ShardInfo{
			ID:       i,
			Addr:     strings.TrimPrefix(pts.URL, "http://"),
			Replicas: []string{strings.TrimPrefix(rts.URL, "http://")},
		}
	}
	ring, err := NewRing(1, 0, infos)
	if err != nil {
		t.Fatal(err)
	}
	cfg := RouterConfig{Ring: ring, Retries: 1, RetryBackoff: 2 * time.Millisecond, ProbeTimeout: 2 * time.Second}
	for _, opt := range opts {
		opt(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, shards
}

// TestRouterFailoverReadsRaceHealthAggregation kills one shard's primary and
// hammers the router with single-user reads for every shard plus /health
// aggregation, concurrently, under -race in CI. Every read must succeed —
// the dead primary's reads served by its replica, the live shard's by its
// primary — and the accounting is exact: the dead shard's replica computes
// exactly its shard's successful reads, the live shard's replica computes
// none, and /health reports the dead primary down while both replicas stay
// healthy with zero lag.
func TestRouterFailoverReadsRaceHealthAggregation(t *testing.T) {
	rt, shards := replicatedFixture(t, 2)
	ts := routerServer(t, rt)

	// Partition the fixture users by owning shard.
	byShard := make([][]string, len(shards))
	for u := 0; u < 40; u++ {
		user := fmt.Sprintf("user-%d", u)
		owner := rt.Owner(user)
		byShard[owner] = append(byShard[owner], user)
	}
	for i, us := range byShard {
		if len(us) == 0 {
			t.Fatalf("fixture users do not cover shard %d", i)
		}
	}

	// Kill shard 0's primary. From here every shard-0 read must fail over.
	const dead = 0
	shards[dead].primary.ts.Close()

	const (
		readers    = 4
		iterations = 15
	)
	start := make(chan struct{})
	errs := make(chan error, readers*3*iterations)
	served := make([]atomic.Int64, len(shards))
	var wg sync.WaitGroup

	for r := 0; r < readers; r++ {
		for si := range shards {
			wg.Add(1)
			go func(r, si int) {
				defer wg.Done()
				<-start
				users := byShard[si]
				for k := 0; k < iterations; k++ {
					user := users[(r+k)%len(users)]
					var out serve.RecommendResponse
					status := getJSON(t, ts.URL+"/recommend?user="+user, &out)
					if status != http.StatusOK {
						errs <- fmt.Errorf("reader %d shard %d: status %d for %s", r, si, status, user)
						continue
					}
					if len(out.Items) == 0 {
						errs <- fmt.Errorf("reader %d shard %d: empty answer for %s", r, si, user)
						continue
					}
					served[si].Add(1)
				}
			}(r, si)
		}
		// Health readers: aggregation stays coherent while reads fail over.
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for k := 0; k < iterations; k++ {
				var health HealthResponse
				if status := getJSON(t, ts.URL+"/health", &health); status != http.StatusOK {
					errs <- fmt.Errorf("health reader %d: status %d", r, status)
					continue
				}
				if health.Status != "degraded" || health.Healthy != len(shards)-1 {
					errs <- fmt.Errorf("health reader %d: %q with %d healthy", r, health.Status, health.Healthy)
				}
				if len(health.Down) != 1 || health.Down[0] != dead {
					errs <- fmt.Errorf("health reader %d: down list %v", r, health.Down)
				}
				if len(health.Replicas) != len(shards) {
					errs <- fmt.Errorf("health reader %d: %d replica rows, want %d", r, len(health.Replicas), len(shards))
					continue
				}
				for _, row := range health.Replicas {
					if !row.Healthy {
						errs <- fmt.Errorf("health reader %d: replica %d/%s unhealthy: %s", r, row.Shard, row.Addr, row.Error)
					}
					if row.LagEvents != 0 {
						errs <- fmt.Errorf("health reader %d: replica %d lags %d events on an idle cluster", r, row.Shard, row.LagEvents)
					}
				}
			}
		}(r)
	}

	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Exact accounting: every read succeeded, the dead shard's replica served
	// exactly its shard's reads, the live shard's replica served none. Each
	// server's TopN cache computes one engine call per distinct user, so the
	// expected compute count is the distinct-user set each shard saw.
	want := int64(readers * iterations)
	for si := range shards {
		if got := served[si].Load(); got != want {
			t.Fatalf("shard %d: %d successful reads, want %d", si, got, want)
		}
	}
	distinct := func(si int) int64 {
		seen := map[int]bool{}
		for r := 0; r < readers; r++ {
			for k := 0; k < iterations; k++ {
				seen[(r+k)%len(byShard[si])] = true
			}
		}
		return int64(len(seen))
	}
	if got, want := shards[dead].replica.eng.computes.Load(), distinct(dead); got != want {
		t.Fatalf("dead shard's replica computed %d distinct reads, want exactly %d", got, want)
	}
	if got := shards[1].replica.eng.computes.Load(); got != 0 {
		t.Fatalf("live shard's replica computed %d reads, want 0", got)
	}
	if got, want := shards[1].primary.eng.computes.Load(), distinct(1); got != want {
		t.Fatalf("live shard's primary computed %d distinct reads, want exactly %d", got, want)
	}
}

// TestShipperAndDetectorShutdownLeakNoGoroutines is the goroutine-leak census
// for the two background machines this package runs: a Shipper's per-replica
// catch-up loops (plus a quorum-blocked Commit) and a Detector's sampling
// loop with a suspicion callback in flight. Several construct/exercise/Close
// rounds must return the process to its pre-round goroutine count — a Close
// that forgets a catch-up loop, a quorum wait, or a callback goroutine shows
// up as a monotonic leak here, under -race in CI.
func TestShipperAndDetectorShutdownLeakNoGoroutines(t *testing.T) {
	// The fixture servers (replica endpoint, health node) go up before the
	// baseline so their accept loops are part of it; per-round keep-alive
	// connections are drained explicitly below.
	backend := &countingBackend{}
	ra := NewReplicaApplier(0, 1, backend)
	repAddr := replicaServer(t, ra)
	primary := newHealthNode(t, 0, "primary")
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: primary.addr(), Replicas: []string{repAddr}}})
	if err != nil {
		t.Fatal(err)
	}
	primary.down.Store(true) // every detector round drives a suspicion callback

	waitBaseline := func(base int) error {
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			if n := runtime.NumGoroutine(); n <= base {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("goroutines: %d, baseline %d", runtime.NumGoroutine(), base)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	base := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		walPath := filepath.Join(t.TempDir(), "census.wal")
		wal, err := ingest.OpenLog(walPath)
		if err != nil {
			t.Fatal(err)
		}
		sp := NewShipper(ShipperConfig{
			Shard: 0, Epoch: 1, WALPath: walPath,
			Replicas:    []string{repAddr, "127.0.0.1:1"}, // one live, one unreachable: its catch-up loop spins until Close
			WriteQuorum: 2, QuorumTimeout: 20 * time.Millisecond,
			ShipTimeout: 100 * time.Millisecond, RetryBackoff: 2 * time.Millisecond,
			StartSeq: wal.Seq(),
		})
		first := wal.Seq() + 1
		batch := evs(int(first), 3)
		if _, err := wal.Append(batch); err != nil {
			t.Fatal(err)
		}
		// The unreachable replica can never ack, so this Commit exercises the
		// quorum wait through its timeout-degrade path.
		sp.Commit(first, batch)
		sp.Resync()
		if n := sp.Status().QuorumTimeouts; n == 0 {
			t.Fatalf("round %d: commit against an unreachable quorum peer recorded no quorum timeout", round)
		}

		var fired sync.WaitGroup
		fired.Add(1)
		d := NewDetector(DetectorConfig{
			Ring:         func() *Ring { return ring },
			Interval:     5 * time.Millisecond,
			ProbeTimeout: 100 * time.Millisecond,
			SuspectAfter: 1,
			OnSuspectPrimary: func(int, string) {
				fired.Done()
			},
		})
		fired.Wait() // a callback goroutine ran; Close must also have waited for it

		d.Close()
		d.Close() // idempotent
		sp.Close()
		sp.Close()
		if err := wal.Close(); err != nil {
			t.Fatal(err)
		}
		// Keep-alive connections opened this round hold transport goroutines;
		// they are owned by the clients the closed machines leave behind.
		sp.client.CloseIdleConnections()
		d.client.CloseIdleConnections()
		if err := waitBaseline(base); err != nil {
			t.Fatalf("round %d leaked: %v", round, err)
		}
	}
}
