// Package cluster implements the sharded serving tier: a consistent-hash
// user-sharding layer and an HTTP scatter-gather router that fronts N shard
// servers (each an ordinary internal/serve server bootstrapped from a
// shard-scoped snapshot).
//
// The unit of partitioning is the user: the paper's GANC framework computes
// every recommendation list from one user's profile against shared item-level
// statistics, so user-partitioned serving needs no cross-shard coordination
// on the read path. The Ring assigns every external user key to exactly one
// shard via a consistent-hash ring with virtual nodes; the Router proxies
// GET /recommend to the owning shard, fans POST /recommend/batch and
// POST /ingest out across owning shards and merges the answers, and
// aggregates /info and /health across the whole cluster.
//
// Hashing is by shard ID only — never by address — so the same (epoch,
// replicas, shard count) triple yields the byte-identical ring everywhere:
// the process that shard-splits a snapshot, every shard and the router all
// agree on ownership without talking to each other. The epoch number
// versions that agreement: any membership change (shard count, replicas)
// must bump the epoch, and mixing epochs in one cluster is a deployment
// error the router surfaces through /info (see DESIGN.md §10).
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"sort"
	"strings"
)

// Ring limits guarding against nonsense in corrupt or hostile shard maps.
const (
	maxShards       = 1 << 10
	maxReplicas     = 1 << 10
	maxAddrLen      = 1 << 8
	maxReplicaAddrs = 8
)

// DefaultReplicas is the virtual-node count per shard when a Ring is built
// without an explicit override. 256 vnodes put the per-shard share's
// coefficient of variation around 6%, keeping the worst shard within ~20%
// of fair even on unlucky draws.
const DefaultReplicas = 256

// Sentinel errors for ring construction and wire-format parsing, matchable
// with errors.Is.
var (
	// ErrRingMagic marks bytes that are not a GANC shard map at all.
	ErrRingMagic = errors.New("cluster: not a GANC shard map (bad magic)")
	// ErrRingVersion marks a shard map written by an incompatible format
	// version.
	ErrRingVersion = errors.New("cluster: unsupported shard-map format version")
	// ErrRingCorrupt marks a shard map whose structure or checksum does not
	// hold.
	ErrRingCorrupt = errors.New("cluster: corrupt shard map")
	// ErrBadRing marks an invalid ring description (no shards, duplicate
	// shard IDs, out-of-range replica counts).
	ErrBadRing = errors.New("cluster: invalid ring")
	// ErrBadPeers marks a malformed peer list.
	ErrBadPeers = errors.New("cluster: invalid peer list")
)

// RingMagic identifies the shard-map wire format. It never changes; the
// format version after it gates layout evolution.
const RingMagic = "GANCRING"

// ringFormatVersion is the base wire-format version; ringFormatVersionReplicas
// extends each shard entry with a replica address list. Encode writes the base
// version whenever no shard carries replicas — so replica-less shard maps stay
// byte-identical to those written by older builds — and the replica-aware
// version otherwise. DecodeRing reads both.
const (
	ringFormatVersion         = 1
	ringFormatVersionReplicas = 2
)

// ShardInfo describes one shard: its stable identifier (the hashing key) and
// the address its HTTP server answers on. The address is routing metadata
// only — it never enters the hash, so shards can move between hosts without
// changing ownership.
type ShardInfo struct {
	// ID is the shard's stable identifier within the ring.
	ID int `json:"id"`
	// Addr is the shard server's host:port (empty for in-process rings that
	// are resolved by index instead of address). For a replicated shard this
	// is always the current primary — the only node that accepts writes.
	Addr string `json:"addr"`
	// Replicas lists the shard's replica addresses (read-failover targets).
	// Like Addr, they are routing metadata only and never enter the hash;
	// promotion swaps an entry with Addr without moving any user's ownership.
	Replicas []string `json:"replicas,omitempty"`
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash  uint64
	shard int // index into shards, not shard ID
}

// Ring is an immutable consistent-hash ring over a fixed shard set. Safe for
// concurrent use.
type Ring struct {
	epoch    uint64
	replicas int
	shards   []ShardInfo
	points   []ringPoint
}

// NewRing builds a ring over the given shards. replicas ≤ 0 selects
// DefaultReplicas. Shard IDs must be unique, non-negative and fit the wire
// format; the shard order is preserved for index-based lookups.
func NewRing(epoch uint64, replicas int, shards []ShardInfo) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("%w: no shards", ErrBadRing)
	}
	if len(shards) > maxShards {
		return nil, fmt.Errorf("%w: %d shards exceeds the limit of %d", ErrBadRing, len(shards), maxShards)
	}
	if replicas > maxReplicas {
		return nil, fmt.Errorf("%w: %d replicas exceeds the limit of %d", ErrBadRing, replicas, maxReplicas)
	}
	seen := make(map[int]struct{}, len(shards))
	for _, s := range shards {
		if s.ID < 0 || uint64(s.ID) > uint64(^uint32(0)) {
			return nil, fmt.Errorf("%w: shard ID %d out of range", ErrBadRing, s.ID)
		}
		if len(s.Addr) > maxAddrLen {
			return nil, fmt.Errorf("%w: shard %d address exceeds %d bytes", ErrBadRing, s.ID, maxAddrLen)
		}
		if _, dup := seen[s.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate shard ID %d", ErrBadRing, s.ID)
		}
		seen[s.ID] = struct{}{}
		if len(s.Replicas) > maxReplicaAddrs {
			return nil, fmt.Errorf("%w: shard %d lists %d replicas, the limit is %d",
				ErrBadRing, s.ID, len(s.Replicas), maxReplicaAddrs)
		}
		for k, addr := range s.Replicas {
			if addr == "" {
				return nil, fmt.Errorf("%w: shard %d replica %d has an empty address", ErrBadRing, s.ID, k)
			}
			if len(addr) > maxAddrLen {
				return nil, fmt.Errorf("%w: shard %d replica %d address exceeds %d bytes",
					ErrBadRing, s.ID, k, maxAddrLen)
			}
		}
	}
	copied := make([]ShardInfo, len(shards))
	for i, s := range shards {
		copied[i] = s
		copied[i].Replicas = append([]string(nil), s.Replicas...)
	}
	r := &Ring{
		epoch:    epoch,
		replicas: replicas,
		shards:   copied,
		points:   make([]ringPoint, 0, replicas*len(shards)),
	}
	var vnode [20]byte
	for idx, s := range r.shards {
		binary.BigEndian.PutUint64(vnode[4:], uint64(s.ID))
		for rep := 0; rep < replicas; rep++ {
			copy(vnode[:4], "vn|")
			binary.BigEndian.PutUint64(vnode[12:], uint64(rep))
			r.points = append(r.points, ringPoint{hash: hashBytes(vnode[:]), shard: idx})
		}
	}
	// Ties between vnodes of different shards are broken by shard ID so the
	// ring is a pure function of (epoch, replicas, shard IDs).
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		return r.shards[pa.shard].ID < r.shards[pb.shard].ID
	})
	return r, nil
}

// NewUniformRing builds the standard ring over shards 0..n-1 with empty
// addresses and DefaultReplicas — the form used to shard-split snapshots,
// where ownership matters but addresses are not known yet.
func NewUniformRing(epoch uint64, n int) (*Ring, error) {
	shards := make([]ShardInfo, n)
	for i := range shards {
		shards[i] = ShardInfo{ID: i}
	}
	return NewRing(epoch, 0, shards)
}

// hashBytes is the ring's hash function: FNV-1a 64 with a splitmix64
// avalanche finalizer. Plain FNV-1a clusters badly on vnode inputs that
// differ only in a trailing counter byte; the finalizer restores full-width
// dispersion. Both stages are fixed arithmetic, so the hash is stable across
// processes and platforms — which the cross-process ownership agreement
// depends on.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return mix64(h.Sum64())
}

// hashKey hashes an external user key onto the ring.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Steele et al.), a fixed bijective
// avalanche over uint64.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e9b5
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Epoch returns the ring's membership epoch.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Replicas returns the virtual-node count per shard.
func (r *Ring) Replicas() int { return r.replicas }

// NumShards returns the shard count.
func (r *Ring) NumShards() int { return len(r.shards) }

// Shards returns a copy of the shard descriptors in ring order.
func (r *Ring) Shards() []ShardInfo {
	out := make([]ShardInfo, len(r.shards))
	for i, s := range r.shards {
		out[i] = s
		out[i].Replicas = append([]string(nil), s.Replicas...)
	}
	return out
}

// Shard returns the descriptor at index i (ring order, not shard ID). The
// Replicas slice is shared with the ring and must be treated as read-only.
func (r *Ring) Shard(i int) ShardInfo { return r.shards[i] }

// HasReplicas reports whether any shard carries replica addresses.
func (r *Ring) HasReplicas() bool {
	for _, s := range r.shards {
		if len(s.Replicas) > 0 {
			return true
		}
	}
	return false
}

// ownerIndex finds the ring point owning a hash: the first point clockwise
// from the hash, wrapping at the top.
func (r *Ring) ownerIndex(h uint64) int {
	k := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if k == len(r.points) {
		k = 0
	}
	return k
}

// Owner returns the index (into Shards) of the shard owning the user key.
// Every key maps to exactly one shard, deterministically.
func (r *Ring) Owner(userKey string) int {
	return r.points[r.ownerIndex(hashKey(userKey))].shard
}

// OwnerAmong returns the owning shard index restricted to shards for which
// alive reports true, walking clockwise past dead owners — the failover
// ownership rule for state-free decisions (health summaries, rebalancing
// previews). State-bearing routes must use Owner: a user's profile lives
// only on its true owner. Returns -1 when no shard is alive.
func (r *Ring) OwnerAmong(userKey string, alive func(shard int) bool) int {
	start := r.ownerIndex(hashKey(userKey))
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if alive(p.shard) {
			return p.shard
		}
	}
	return -1
}

// --- Wire format ---------------------------------------------------------------
//
//	offset  size  field
//	0       8     magic "GANCRING"
//	8       4     format version (uint32, big endian)
//	12      8     epoch (uint64)
//	20      4     replicas (uint32)
//	24      4     shard count (uint32)
//	28      …     per shard: 4  shard ID (uint32)
//	              2  address length (uint16)
//	              …  address (UTF-8)
//	              — version 2 only —
//	              2  replica count (uint16)
//	              …  per replica: 2 address length (uint16), address (UTF-8)
//	…       4     CRC-32 (IEEE) of every preceding byte

// Encode serializes the ring's shard map in the wire format documented
// above, choosing version 1 when no shard carries replica addresses (so the
// bytes match older builds exactly) and version 2 otherwise.
func (r *Ring) Encode() []byte {
	version := uint32(ringFormatVersion)
	n := 28
	for _, s := range r.shards {
		n += 6 + len(s.Addr)
	}
	if r.HasReplicas() {
		version = ringFormatVersionReplicas
		for _, s := range r.shards {
			n += 2
			for _, addr := range s.Replicas {
				n += 2 + len(addr)
			}
		}
	}
	buf := make([]byte, 0, n+4)
	buf = append(buf, RingMagic...)
	buf = binary.BigEndian.AppendUint32(buf, version)
	buf = binary.BigEndian.AppendUint64(buf, r.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(r.replicas))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.shards)))
	for _, s := range r.shards {
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.ID))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Addr)))
		buf = append(buf, s.Addr...)
		if version == ringFormatVersionReplicas {
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(s.Replicas)))
			for _, addr := range s.Replicas {
				buf = binary.BigEndian.AppendUint16(buf, uint16(len(addr)))
				buf = append(buf, addr...)
			}
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeRing parses a shard map from the wire format and rebuilds the ring.
// Malformed input fails with an error wrapping ErrRingMagic, ErrRingVersion,
// ErrRingCorrupt or ErrBadRing — never a panic — so hostile bytes cannot
// take a router down.
func DecodeRing(data []byte) (*Ring, error) {
	if len(data) < len(RingMagic) {
		return nil, fmt.Errorf("%w: %d bytes is too short for the magic", ErrRingCorrupt, len(data))
	}
	if string(data[:len(RingMagic)]) != RingMagic {
		return nil, ErrRingMagic
	}
	if len(data) < 32 {
		return nil, fmt.Errorf("%w: %d bytes is too short for the header", ErrRingCorrupt, len(data))
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: shard map fails its checksum", ErrRingCorrupt)
	}
	version := binary.BigEndian.Uint32(body[8:])
	if version != ringFormatVersion && version != ringFormatVersionReplicas {
		return nil, fmt.Errorf("%w: shard map has version %d, this build reads versions %d and %d",
			ErrRingVersion, version, ringFormatVersion, ringFormatVersionReplicas)
	}
	epoch := binary.BigEndian.Uint64(body[12:])
	replicas := binary.BigEndian.Uint32(body[20:])
	count := binary.BigEndian.Uint32(body[24:])
	if replicas == 0 || replicas > maxReplicas {
		return nil, fmt.Errorf("%w: replica count %d out of range", ErrRingCorrupt, replicas)
	}
	if count == 0 || count > maxShards {
		return nil, fmt.Errorf("%w: shard count %d out of range", ErrRingCorrupt, count)
	}
	shards := make([]ShardInfo, 0, count)
	rest := body[28:]
	for k := uint32(0); k < count; k++ {
		if len(rest) < 6 {
			return nil, fmt.Errorf("%w: shard table truncated at entry %d", ErrRingCorrupt, k)
		}
		id := binary.BigEndian.Uint32(rest)
		addrLen := int(binary.BigEndian.Uint16(rest[4:]))
		rest = rest[6:]
		if addrLen > maxAddrLen {
			return nil, fmt.Errorf("%w: shard %d address length %d out of range", ErrRingCorrupt, id, addrLen)
		}
		if len(rest) < addrLen {
			return nil, fmt.Errorf("%w: shard %d address truncated", ErrRingCorrupt, id)
		}
		info := ShardInfo{ID: int(id), Addr: string(rest[:addrLen])}
		rest = rest[addrLen:]
		if version == ringFormatVersionReplicas {
			if len(rest) < 2 {
				return nil, fmt.Errorf("%w: shard %d replica list truncated", ErrRingCorrupt, id)
			}
			repCount := int(binary.BigEndian.Uint16(rest))
			rest = rest[2:]
			if repCount > maxReplicaAddrs {
				return nil, fmt.Errorf("%w: shard %d replica count %d out of range", ErrRingCorrupt, id, repCount)
			}
			for rk := 0; rk < repCount; rk++ {
				if len(rest) < 2 {
					return nil, fmt.Errorf("%w: shard %d replica %d truncated", ErrRingCorrupt, id, rk)
				}
				repLen := int(binary.BigEndian.Uint16(rest))
				rest = rest[2:]
				if repLen == 0 || repLen > maxAddrLen {
					return nil, fmt.Errorf("%w: shard %d replica %d address length %d out of range",
						ErrRingCorrupt, id, rk, repLen)
				}
				if len(rest) < repLen {
					return nil, fmt.Errorf("%w: shard %d replica %d address truncated", ErrRingCorrupt, id, rk)
				}
				info.Replicas = append(info.Replicas, string(rest[:repLen]))
				rest = rest[repLen:]
			}
		}
		shards = append(shards, info)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the shard table", ErrRingCorrupt, len(rest))
	}
	return NewRing(epoch, int(replicas), shards)
}

// ParsePeers turns a comma-separated address list ("h1:8081,h2:8082") into
// shard descriptors with IDs assigned by position — the cmd-line form of a
// shard map. Empty entries and duplicate addresses fail with ErrBadPeers.
func ParsePeers(list string) ([]ShardInfo, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("%w: empty list", ErrBadPeers)
	}
	parts := strings.Split(list, ",")
	shards := make([]ShardInfo, 0, len(parts))
	seen := make(map[string]struct{}, len(parts))
	for k, part := range parts {
		addr := strings.TrimSpace(part)
		if addr == "" {
			return nil, fmt.Errorf("%w: entry %d is empty", ErrBadPeers, k)
		}
		if len(addr) > maxAddrLen {
			return nil, fmt.Errorf("%w: entry %d exceeds %d bytes", ErrBadPeers, k, maxAddrLen)
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("%w: duplicate address %q", ErrBadPeers, addr)
		}
		seen[addr] = struct{}{}
		shards = append(shards, ShardInfo{ID: k, Addr: addr})
	}
	return shards, nil
}

// ParsePeerTopology extends ParsePeers with replica addresses: each
// comma-separated entry is "primary" or "primary+replica1+replica2", e.g.
// "h1:8081+h1:9081,h2:8082+h2:9082" for a two-shard cluster with one replica
// each. IDs are assigned by position; empty entries, oversized addresses and
// duplicate addresses (across primaries and replicas alike) fail with
// ErrBadPeers.
func ParsePeerTopology(list string) ([]ShardInfo, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("%w: empty list", ErrBadPeers)
	}
	parts := strings.Split(list, ",")
	shards := make([]ShardInfo, 0, len(parts))
	seen := make(map[string]struct{}, len(parts))
	take := func(entry int, raw string) (string, error) {
		addr := strings.TrimSpace(raw)
		if addr == "" {
			return "", fmt.Errorf("%w: entry %d has an empty address", ErrBadPeers, entry)
		}
		if len(addr) > maxAddrLen {
			return "", fmt.Errorf("%w: entry %d address exceeds %d bytes", ErrBadPeers, entry, maxAddrLen)
		}
		if _, dup := seen[addr]; dup {
			return "", fmt.Errorf("%w: duplicate address %q", ErrBadPeers, addr)
		}
		seen[addr] = struct{}{}
		return addr, nil
	}
	for k, part := range parts {
		nodes := strings.Split(part, "+")
		if len(nodes)-1 > maxReplicaAddrs {
			return nil, fmt.Errorf("%w: entry %d lists %d replicas, the limit is %d",
				ErrBadPeers, k, len(nodes)-1, maxReplicaAddrs)
		}
		primary, err := take(k, nodes[0])
		if err != nil {
			return nil, err
		}
		info := ShardInfo{ID: k, Addr: primary}
		for _, rep := range nodes[1:] {
			addr, err := take(k, rep)
			if err != nil {
				return nil, err
			}
			info.Replicas = append(info.Replicas, addr)
		}
		shards = append(shards, info)
	}
	return shards, nil
}
