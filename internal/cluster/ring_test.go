package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"slices"
	"testing"
)

// testRing builds a 3-shard ring with loopback-style addresses.
func testRing(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing(1, 0, []ShardInfo{
		{ID: 0, Addr: "127.0.0.1:9000"},
		{ID: 1, Addr: "127.0.0.1:9001"},
		{ID: 2, Addr: "127.0.0.1:9002"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingOwnershipDeterministicAndBalanced pins the two properties routing
// correctness rests on: the same key always maps to the same shard (across
// independently built rings), and the key space is spread over all shards
// within consistent-hash tolerance.
func TestRingOwnershipDeterministicAndBalanced(t *testing.T) {
	a, b := testRing(t), testRing(t)
	counts := make([]int, a.NumShards())
	const keys = 30000
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("user-%d", k)
		owner := a.Owner(key)
		if owner < 0 || owner >= a.NumShards() {
			t.Fatalf("key %q routed to out-of-range shard %d", key, owner)
		}
		if again := b.Owner(key); again != owner {
			t.Fatalf("independently built rings disagree on %q: %d vs %d", key, owner, again)
		}
		counts[owner]++
	}
	fair := float64(keys) / float64(len(counts))
	for shard, c := range counts {
		if math.Abs(float64(c)-fair)/fair > 0.35 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %.0f): ring is unbalanced %v", shard, c, keys, fair, counts)
		}
	}
}

// TestRingOwnershipIgnoresAddresses: moving a shard to a new host must not
// reshuffle users — the hash covers shard IDs only.
func TestRingOwnershipIgnoresAddresses(t *testing.T) {
	a := testRing(t)
	moved, err := NewRing(1, 0, []ShardInfo{
		{ID: 0, Addr: "10.0.0.1:80"},
		{ID: 1, Addr: "10.0.0.2:80"},
		{ID: 2, Addr: "10.0.0.3:80"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("user-%d", k)
		if a.Owner(key) != moved.Owner(key) {
			t.Fatalf("ownership of %q changed when addresses moved", key)
		}
	}
}

// TestRingConsistentOnGrowth checks the consistent-hashing contract: adding
// a shard relocates roughly 1/(n+1) of the keys, not all of them.
func TestRingConsistentOnGrowth(t *testing.T) {
	three := testRing(t)
	four, err := NewRing(2, 0, []ShardInfo{
		{ID: 0, Addr: "a"}, {ID: 1, Addr: "b"}, {ID: 2, Addr: "c"}, {ID: 3, Addr: "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	moved := 0
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("user-%d", k)
		if three.Owner(key) != four.Owner(key) {
			moved++
		}
	}
	// Expect ~25% relocation; a modulo hash would relocate ~75%.
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Fatalf("adding one shard relocated %.0f%% of keys — not consistent hashing", frac*100)
	}
}

// TestOwnerAmongSkipsDeadShards pins the failover lookup: the true owner
// when alive, a live shard otherwise, -1 only when nothing is alive.
func TestOwnerAmongSkipsDeadShards(t *testing.T) {
	r := testRing(t)
	key := "some-user"
	owner := r.Owner(key)
	if got := r.OwnerAmong(key, func(int) bool { return true }); got != owner {
		t.Fatalf("all-alive OwnerAmong %d != Owner %d", got, owner)
	}
	got := r.OwnerAmong(key, func(s int) bool { return s != owner })
	if got == owner || got < 0 || got >= r.NumShards() {
		t.Fatalf("OwnerAmong with dead owner returned %d (owner %d)", got, owner)
	}
	if got := r.OwnerAmong(key, func(int) bool { return false }); got != -1 {
		t.Fatalf("OwnerAmong with no live shards returned %d, want -1", got)
	}
}

// TestRingWireRoundTrip: encode → decode preserves epoch, replicas, shard
// set and — crucially — ownership.
func TestRingWireRoundTrip(t *testing.T) {
	r, err := NewRing(7, 32, []ShardInfo{{ID: 0, Addr: "h1:1"}, {ID: 4, Addr: "h2:2"}, {ID: 9, Addr: ""}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRing(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch() != 7 || back.Replicas() != 32 || back.NumShards() != 3 {
		t.Fatalf("round-trip lost header: epoch=%d replicas=%d shards=%d", back.Epoch(), back.Replicas(), back.NumShards())
	}
	for i, s := range r.Shards() {
		if got := back.Shard(i); got.ID != s.ID || got.Addr != s.Addr || !slices.Equal(got.Replicas, s.Replicas) {
			t.Fatalf("shard %d round-tripped as %+v, want %+v", i, got, s)
		}
	}
	for k := 0; k < 2000; k++ {
		key := fmt.Sprintf("u%d", k)
		if r.Owner(key) != back.Owner(key) {
			t.Fatalf("ownership of %q changed across the wire", key)
		}
	}
}

// TestDecodeRingTypedErrors pins the failure taxonomy of the wire parser.
func TestDecodeRingTypedErrors(t *testing.T) {
	good := func() []byte { return testRing(t).Encode() }
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrRingCorrupt},
		{"bad magic", []byte("NOTARING????????"), ErrRingMagic},
		{"truncated header", []byte(RingMagic + "xx"), ErrRingCorrupt},
		{"bit flip", func() []byte { d := good(); d[len(d)/2] ^= 0xff; return d }(), ErrRingCorrupt},
		{"truncated tail", func() []byte { d := good(); return d[:len(d)-6] }(), ErrRingCorrupt},
		{"bad version", func() []byte {
			d := good()
			d[11] = 99 // format version low byte
			// Recompute the checksum so the version check is what fires.
			return append(d[:len(d)-4], testRingChecksum(d[:len(d)-4])...)
		}(), ErrRingVersion},
	}
	for _, tc := range cases {
		if _, err := DecodeRing(tc.data); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want errors.Is %v", tc.name, err, tc.want)
		}
	}
}

// testRingChecksum recomputes the trailing CRC for a doctored body.
func testRingChecksum(body []byte) []byte {
	return binary.BigEndian.AppendUint32(nil, crc32.ChecksumIEEE(body))
}

// TestNewRingRejectsBadShardSets pins construction validation.
func TestNewRingRejectsBadShardSets(t *testing.T) {
	if _, err := NewRing(1, 0, nil); !errors.Is(err, ErrBadRing) {
		t.Fatalf("empty shard set: %v", err)
	}
	if _, err := NewRing(1, 0, []ShardInfo{{ID: 0}, {ID: 0}}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("duplicate IDs: %v", err)
	}
	if _, err := NewRing(1, 0, []ShardInfo{{ID: -1}}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("negative ID: %v", err)
	}
	if _, err := NewRing(1, maxReplicas+1, []ShardInfo{{ID: 0}}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("replica overflow: %v", err)
	}
}

// TestParsePeers pins the peer-list grammar and its typed failures.
func TestParsePeers(t *testing.T) {
	shards, err := ParsePeers("h1:8081, h2:8082 ,h3:8083")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 3 || shards[1].ID != 1 || shards[1].Addr != "h2:8082" || shards[1].Replicas != nil {
		t.Fatalf("parsed %+v", shards)
	}
	for _, bad := range []string{"", "  ", "h1:1,,h2:2", "h1:1,h1:1"} {
		if _, err := ParsePeers(bad); !errors.Is(err, ErrBadPeers) {
			t.Fatalf("peer list %q: got %v, want ErrBadPeers", bad, err)
		}
	}
}
