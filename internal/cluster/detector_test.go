package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ganc/internal/serve"
)

// healthNode is a stub cluster node for detector tests: it serves /health
// with a configurable replication cursor, counts hits per path, and can be
// switched to answering 500 (down) without closing its listener.
type healthNode struct {
	ts         *httptest.Server
	down       atomic.Bool
	healthHits atomic.Int64
	recoHits   atomic.Int64
	role       string
	seq        atomic.Uint64
	lag        atomic.Uint64
}

func newHealthNode(t *testing.T, shard int, role string) *healthNode {
	t.Helper()
	n := &healthNode{role: role}
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		n.healthHits.Add(1)
		if n.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		id := shard
		writeJSON(w, http.StatusOK, serve.HealthResponse{
			Status: "ok", Shard: &id,
			Replication: &serve.ReplicationStatus{
				Role:       n.role,
				AppliedSeq: n.seq.Load(),
				LagEvents:  n.lag.Load(),
			},
		})
	})
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, _ *http.Request) {
		n.recoHits.Add(1)
		if n.down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"served_by": n.role})
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func (n *healthNode) addr() string { return strings.TrimPrefix(n.ts.URL, "http://") }

// testDetector builds a loop-less detector over a fixed ring; tests drive
// sample() synchronously so suspicion timing is deterministic.
func testDetector(t *testing.T, ring *Ring, cfg DetectorConfig) *Detector {
	t.Helper()
	cfg.Ring = func() *Ring { return ring }
	d := newDetector(cfg)
	t.Cleanup(d.Close)
	return d
}

func TestDetectorSuspicionRisesAndClears(t *testing.T) {
	primary := newHealthNode(t, 0, "primary")
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: primary.addr()}})
	if err != nil {
		t.Fatal(err)
	}
	d := testDetector(t, ring, DetectorConfig{SuspectAfter: 3})

	d.sample()
	row, ok := d.Node(primary.addr())
	if !ok || !row.Alive || row.Suspected {
		t.Fatalf("healthy primary row = %+v, ok=%v; want alive, unsuspected", row, ok)
	}

	primary.down.Store(true)
	for i := 1; i <= 2; i++ {
		d.sample()
		if row, _ := d.Node(primary.addr()); row.Suspected {
			t.Fatalf("suspected after only %d misses (threshold 3)", i)
		}
	}
	d.sample()
	if row, _ := d.Node(primary.addr()); !row.Suspected || row.Misses != 3 {
		t.Fatalf("after 3 misses row = %+v; want suspected with 3 misses", row)
	}

	primary.down.Store(false)
	d.sample()
	if row, _ := d.Node(primary.addr()); row.Suspected || !row.Alive || row.Misses != 0 {
		t.Fatalf("after recovery row = %+v; want alive, unsuspected, zero misses", row)
	}
}

func TestDetectorSuspicionCallbackFiresOncePerEpisode(t *testing.T) {
	primary := newHealthNode(t, 0, "primary")
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: primary.addr()}})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	d := testDetector(t, ring, DetectorConfig{
		SuspectAfter:     2,
		OnSuspectPrimary: func(int, string) { fired.Add(1) },
	})

	primary.down.Store(true)
	for i := 0; i < 5; i++ {
		d.sample()
	}
	d.wg.Wait() // callbacks run in tracked goroutines; Close would also wait
	if n := fired.Load(); n != 1 {
		t.Fatalf("callback fired %d times across one outage episode, want exactly 1", n)
	}

	// Recovery re-arms the latch; a second outage fires a second callback.
	primary.down.Store(false)
	d.sample()
	primary.down.Store(true)
	for i := 0; i < 3; i++ {
		d.sample()
	}
	d.wg.Wait()
	if n := fired.Load(); n != 2 {
		t.Fatalf("callback fired %d times across two outage episodes, want 2", n)
	}
}

func TestFreshestReplicaPrefersHighestCursorAndSkipsSuspects(t *testing.T) {
	primary := newHealthNode(t, 0, "primary")
	fresh := newHealthNode(t, 0, "replica")
	fresh.seq.Store(50)
	stale := newHealthNode(t, 0, "replica")
	stale.seq.Store(40)
	stale.lag.Store(10)
	dead := newHealthNode(t, 0, "replica")
	dead.seq.Store(99)
	dead.down.Store(true)

	reps := []string{fresh.addr(), stale.addr(), dead.addr()}
	ring, err := NewRing(1, 0, []ShardInfo{{ID: 0, Addr: primary.addr(), Replicas: reps}})
	if err != nil {
		t.Fatal(err)
	}
	d := testDetector(t, ring, DetectorConfig{SuspectAfter: 1})
	d.sample()

	addr, known, ok := d.FreshestReplica(reps, 1024)
	if !known || !ok || addr != fresh.addr() {
		t.Fatalf("FreshestReplica = (%q, known=%v, ok=%v), want the live 50-cursor replica %q", addr, known, ok, fresh.addr())
	}
	// A tight staleness bound disqualifies the lagging replica too; the fresh
	// one still wins even though the (dead) replica advertises a higher seq.
	if addr, _, ok := d.FreshestReplica(reps, 5); !ok || addr != fresh.addr() {
		t.Fatalf("FreshestReplica under lag bound 5 = (%q, ok=%v), want %q", addr, ok, fresh.addr())
	}
	// Addresses the view has never sampled report known=false so callers fall
	// back to live probing instead of concluding "no replica".
	if _, known, _ := d.FreshestReplica([]string{"127.0.0.1:1"}, 1024); known {
		t.Fatal("an unsampled address must report known=false")
	}
}

// TestFailoverReadSkipsSuspectedPrimaryWithZeroInlineProbes is the regression
// test for per-request failover probing: once the detector suspects a
// primary, a read must (a) never touch the dead primary — the retry budget is
// not burned — and (b) pick its failover replica from the detector's cached
// view without a single inline /health probe. The old router re-probed every
// replica on every failed read and retried the primary to exhaustion first.
func TestFailoverReadSkipsSuspectedPrimaryWithZeroInlineProbes(t *testing.T) {
	primary := newHealthNode(t, 0, "primary")
	replica := newHealthNode(t, 0, "replica")
	replica.seq.Store(7)

	ring, err := NewRing(1, 0, []ShardInfo{
		{ID: 0, Addr: primary.addr(), Replicas: []string{replica.addr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := testDetector(t, ring, DetectorConfig{SuspectAfter: 2})
	rt, err := NewRouter(RouterConfig{
		Ring:     ring,
		Detector: d,
		// A deliberately fat retry budget: if the suspected primary were still
		// consulted, the hit counters below would show the attempts.
		Retries:      5,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	primary.down.Store(true)
	d.sample()
	d.sample()
	if row, _ := d.Node(primary.addr()); !row.Suspected {
		t.Fatalf("primary not suspected after 2 misses: %+v", row)
	}

	primaryBefore := primary.healthHits.Load() + primary.recoHits.Load()
	replicaHealthBefore := replica.healthHits.Load()

	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/recommend?user=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read during a suspected-primary outage answered %d, want 200 via failover", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["served_by"] != "replica" {
		t.Fatalf("read served by %q, want the replica", body["served_by"])
	}

	if n := primary.healthHits.Load() + primary.recoHits.Load() - primaryBefore; n != 0 {
		t.Fatalf("the suspected primary received %d requests during the read; the detector view must skip it outright", n)
	}
	if n := replica.healthHits.Load() - replicaHealthBefore; n != 0 {
		t.Fatalf("the read performed %d inline /health probes; the failover target must come from the cached view", n)
	}
	if n := replica.recoHits.Load(); n != 1 {
		t.Fatalf("replica served %d reads, want exactly 1 (one failover round-trip)", n)
	}
}

// TestRouterWithoutDetectorStillProbesInline pins the fallback: a router
// built without a detector (or whose detector has not sampled the shard yet)
// keeps the old behavior — primary first, then live replica probing.
func TestRouterWithoutDetectorStillProbesInline(t *testing.T) {
	primary := newHealthNode(t, 0, "primary")
	replica := newHealthNode(t, 0, "replica")
	primary.down.Store(true)

	ring, err := NewRing(1, 0, []ShardInfo{
		{ID: 0, Addr: primary.addr(), Replicas: []string{replica.addr()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRouter(RouterConfig{Ring: ring, Retries: 0, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/recommend?user=u1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover read answered %d, want 200", resp.StatusCode)
	}
	if n := replica.healthHits.Load(); n == 0 {
		t.Fatal("without a detector the router must probe replicas inline")
	}
}
