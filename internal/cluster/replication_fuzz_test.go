package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzReplicateHostileBody throws attacker-controlled bytes at the replica's
// POST /replicate endpoint. The contract under fuzz: the handler never
// panics, allocation stays bounded (the reader is capped before decoding),
// every answer is a decodable ReplicateResponse carrying the replica's
// authoritative cursor, the status is always from the protocol's taxonomy,
// and no hostile body ever moves the cursor — only a well-formed in-order
// batch may advance it.
func FuzzReplicateHostileBody(f *testing.F) {
	f.Add([]byte(`{"shard":0,"epoch":1,"first_seq":1,"head_seq":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":7,"epoch":1,"first_seq":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":0,"first_seq":1,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"first_seq":999,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":-1}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"first_seq":0,"events":[{"user":"u","item":"i","value":1}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"first_seq":18446744073709551615,"events":[{"user":"u","item":"i","value":1},{"user":"u","item":"i","value":2}]}`))
	f.Add([]byte(`{"shard":0,"epoch":1,"first_seq":1,"events":[{"user":"","item":"i","value":1}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))
	f.Add(bytes.Repeat([]byte(`[`), 4096))

	allowed := map[int]bool{
		http.StatusOK:                  true,
		http.StatusBadRequest:          true,
		http.StatusConflict:            true,
		http.StatusInternalServerError: true,
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		backend := &countingBackend{}
		ra := NewReplicaApplier(0, 1, backend)
		handler := ra.Handler()

		// Fire the same body twice: the second answer's cursor must never be
		// behind the first — replay can only be idempotent or advancing.
		var prevCursor uint64
		for round := 0; round < 2; round++ {
			req := httptest.NewRequest(http.MethodPost, "/replicate", bytes.NewReader(raw))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)

			if !allowed[rec.Code] {
				t.Fatalf("status %d outside the replicate taxonomy for body %q", rec.Code, truncate(raw))
			}
			var resp ReplicateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("undecodable answer %q for body %q", rec.Body.String(), truncate(raw))
			}
			if resp.AppliedSeq != backend.Seq() {
				t.Fatalf("answer cites cursor %d, backend is at %d", resp.AppliedSeq, backend.Seq())
			}
			if resp.AppliedSeq < prevCursor {
				t.Fatalf("cursor regressed %d -> %d on replay", prevCursor, resp.AppliedSeq)
			}
			if rec.Code != http.StatusOK {
				if resp.Code == "" || resp.Error == "" {
					t.Fatalf("refusal %d without a typed code/error: %q", rec.Code, rec.Body.String())
				}
				if resp.AppliedSeq != prevCursor {
					t.Fatalf("refused body moved the cursor %d -> %d", prevCursor, resp.AppliedSeq)
				}
			}
			prevCursor = resp.AppliedSeq
		}
	})
}

// FuzzReplicateSequenceStream feeds an applier a fuzz-shaped stream of
// batches — duplicated, overlapping, gapped, out of order, heartbeat-only —
// and model-checks the cursor rules after every call: the cursor never
// regresses, a gap refusal never applies anything, an accepted batch lands
// the cursor exactly at its last sequence, and at the end the backend holds
// each committed event exactly once, in order. Every batch goes through the
// wire codec first, so the stream exercises exactly what a shipper can send.
func FuzzReplicateSequenceStream(f *testing.F) {
	f.Add([]byte{1, 4, 1, 4, 5, 2, 3, 4})    // apply, duplicate, extend, overlap
	f.Add([]byte{1, 3, 9, 2, 4, 3})          // gap, then heal
	f.Add([]byte{1, 0, 2, 0, 1, 7})          // heartbeats around a batch
	f.Add([]byte{255, 7, 1, 7, 255, 7})      // far-future gaps sandwiching progress
	f.Add([]byte{1, 1, 2, 1, 3, 1, 4, 1})    // single-event chain
	f.Add([]byte{1, 6, 1, 6, 1, 6, 7, 6, 1}) // replay storms

	ctx := context.Background()
	f.Fuzz(func(t *testing.T, ops []byte) {
		backend := &countingBackend{}
		ra := NewReplicaApplier(0, 1, backend)
		cursor := uint64(0)
		for i := 0; i+1 < len(ops) && i < 128; i += 2 {
			first := uint64(ops[i])
			n := int(ops[i+1] % 8)
			req := ReplicateRequest{Shard: 0, Epoch: 1, FirstSeq: first, HeadSeq: first + uint64(n)}
			if n > 0 {
				req.Events = evs(int(first), n)
			}
			// Round-trip through the wire codec: streams a real shipper could
			// not encode (first_seq 0 with events) are a parse refusal, not an
			// applier input.
			payload, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			parsed, err := ParseReplicateRequest(bytes.NewReader(payload))
			if err != nil {
				if !errors.Is(err, ErrReplicateBody) {
					t.Fatalf("untyped parse failure: %v", err)
				}
				continue
			}
			resp, err := ra.Apply(ctx, parsed)
			if resp.AppliedSeq < cursor {
				t.Fatalf("cursor regressed %d -> %d on batch [%d,+%d)", cursor, resp.AppliedSeq, first, n)
			}
			last := first + uint64(n) - 1
			switch {
			case err == nil && n == 0:
				if resp.Applied != 0 || resp.AppliedSeq != cursor {
					t.Fatalf("heartbeat answered %+v at cursor %d", resp, cursor)
				}
			case err == nil && last <= cursor:
				if resp.Applied != 0 || resp.AppliedSeq != cursor {
					t.Fatalf("duplicate [%d,%d] answered %+v at cursor %d", first, last, resp, cursor)
				}
			case err == nil:
				if resp.AppliedSeq != last {
					t.Fatalf("accepted batch [%d,%d] left cursor at %d", first, last, resp.AppliedSeq)
				}
				if got := uint64(resp.Applied); got != last-cursor {
					t.Fatalf("batch [%d,%d] at cursor %d applied %d events, want %d", first, last, cursor, got, last-cursor)
				}
			case errors.Is(err, ErrReplicateGap):
				if !resp.Gap || resp.AppliedSeq != cursor || first <= cursor+1 {
					t.Fatalf("gap refusal %+v (%v) for batch [%d,%d] at cursor %d", resp, err, first, last, cursor)
				}
			default:
				t.Fatalf("untyped apply failure: %v", err)
			}
			if resp.AppliedSeq != backend.Seq() {
				t.Fatalf("answer cites cursor %d, backend is at %d", resp.AppliedSeq, backend.Seq())
			}
			cursor = resp.AppliedSeq
		}
		// Exactly-once, in order: the backend holds precisely events 1..cursor.
		backend.mu.Lock()
		defer backend.mu.Unlock()
		if uint64(len(backend.events)) != cursor {
			t.Fatalf("backend holds %d events at cursor %d", len(backend.events), cursor)
		}
		for i, ev := range backend.events {
			if ev.Value != float64(i+1) {
				t.Fatalf("event %d has value %v, want %d", i, ev.Value, i+1)
			}
		}
	})
}
