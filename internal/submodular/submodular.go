// Package submodular provides the combinatorial optimization machinery behind
// GANC's dynamic-coverage objective: marginal-gain oracles, the locally
// greedy algorithm of Fisher, Nemhauser & Wolsey (1978) for maximizing a
// monotone submodular function subject to a partition matroid, a lazy-greedy
// accelerated variant, and small helpers for verifying submodularity and
// monotonicity empirically (used by the tests and the ablation benchmarks).
//
// The paper's Appendix B shows that with the Dyn coverage recommender the
// objective Σ_u v_u(P_u) is monotone submodular over user–item pairs and the
// constraint "N items per user" is a partition matroid, so locally greedy
// gives a 1/2-approximation. This package exposes those pieces in a
// recommender-agnostic way; internal/core wires them to GANC's value
// functions.
package submodular

import (
	"container/heap"
	"fmt"

	"ganc/internal/types"
)

// GainFunc returns the marginal gain of adding item i to user u's current
// set, given the state accumulated so far. Implementations may close over
// mutable state (e.g. the Dyn recommendation-frequency counter); Maximize
// calls Commit after each selection so the state can be updated.
type GainFunc func(u types.UserID, i types.ItemID) float64

// Oracle describes the objective to the optimizer.
type Oracle interface {
	// Gain returns the marginal gain of adding item i to user u's set given
	// everything selected so far.
	Gain(u types.UserID, i types.ItemID) float64
	// Commit informs the oracle that item i was added to user u's set, so it
	// can update any shared state (Dyn frequencies, per-user accumulators).
	Commit(u types.UserID, i types.ItemID)
	// Candidates returns the item identifiers eligible for user u (typically
	// the catalog minus the user's train items). The returned slice is not
	// modified.
	Candidates(u types.UserID) []types.ItemID
}

// LocallyGreedy assigns exactly n items to each user in the given order, at
// each step picking the candidate with the largest marginal gain. It is the
// reference optimizer: O(|users|·|candidates|·n) oracle calls.
func LocallyGreedy(users []types.UserID, n int, oracle Oracle) types.Recommendations {
	recs := make(types.Recommendations, len(users))
	for _, u := range users {
		recs[u] = greedyForUser(u, n, oracle)
	}
	return recs
}

func greedyForUser(u types.UserID, n int, oracle Oracle) types.TopNSet {
	candidates := oracle.Candidates(u)
	if n > len(candidates) {
		n = len(candidates)
	}
	chosen := make(map[types.ItemID]struct{}, n)
	set := make(types.TopNSet, 0, n)
	for step := 0; step < n; step++ {
		bestItem := types.InvalidItem
		bestGain := 0.0
		first := true
		for _, i := range candidates {
			if _, used := chosen[i]; used {
				continue
			}
			g := oracle.Gain(u, i)
			if first || g > bestGain || (g == bestGain && i < bestItem) {
				bestGain, bestItem, first = g, i, false
			}
		}
		if bestItem == types.InvalidItem {
			break
		}
		chosen[bestItem] = struct{}{}
		set = append(set, bestItem)
		oracle.Commit(u, bestItem)
	}
	return set
}

// lazyEntry is a heap entry for lazy greedy: the cached gain of an item.
type lazyEntry struct {
	item  types.ItemID
	gain  float64
	stamp int // selection count at which the gain was computed
}

type lazyHeap []lazyEntry

func (h lazyHeap) Len() int { return len(h) }
func (h lazyHeap) Less(a, b int) bool {
	if h[a].gain != h[b].gain {
		return h[a].gain > h[b].gain
	}
	return h[a].item < h[b].item
}
func (h lazyHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *lazyHeap) Push(x interface{}) { *h = append(*h, x.(lazyEntry)) }
func (h *lazyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// LazyGreedyForUser selects n items for a single user using lazy evaluation
// (Minoux's accelerated greedy): cached gains are only re-evaluated when an
// item reaches the top of the priority queue with a stale timestamp. For
// submodular gains this returns exactly the same set as the plain greedy
// sweep while evaluating far fewer gains; for the modular parts of GANC's
// objective (Stat and Rand coverage) it degenerates gracefully to a single
// evaluation per item.
func LazyGreedyForUser(u types.UserID, n int, oracle Oracle) types.TopNSet {
	candidates := oracle.Candidates(u)
	if n > len(candidates) {
		n = len(candidates)
	}
	h := make(lazyHeap, 0, len(candidates))
	for _, i := range candidates {
		h = append(h, lazyEntry{item: i, gain: oracle.Gain(u, i), stamp: 0})
	}
	heap.Init(&h)
	set := make(types.TopNSet, 0, n)
	selections := 0
	for len(set) < n && h.Len() > 0 {
		top := heap.Pop(&h).(lazyEntry)
		if top.stamp == selections {
			// Fresh gain: take it.
			set = append(set, top.item)
			oracle.Commit(u, top.item)
			selections++
			continue
		}
		// Stale: re-evaluate and push back.
		top.gain = oracle.Gain(u, top.item)
		top.stamp = selections
		heap.Push(&h, top)
	}
	return set
}

// PartitionMatroid models the "at most limit items per user" constraint. It
// exists to make the matroid argument in the paper's Appendix B executable
// and testable, and to guard optimizer implementations in tests.
type PartitionMatroid struct {
	limit  int
	counts map[types.UserID]int
}

// NewPartitionMatroid creates a matroid allowing at most limit items per user.
func NewPartitionMatroid(limit int) *PartitionMatroid {
	if limit < 0 {
		limit = 0
	}
	return &PartitionMatroid{limit: limit, counts: make(map[types.UserID]int)}
}

// CanAdd reports whether another item may be added to user u's set.
func (m *PartitionMatroid) CanAdd(u types.UserID) bool {
	return m.counts[u] < m.limit
}

// Add records an addition for user u. It returns an error when the addition
// would violate the matroid constraint.
func (m *PartitionMatroid) Add(u types.UserID) error {
	if !m.CanAdd(u) {
		return fmt.Errorf("submodular: user %d already holds %d items (limit %d)", u, m.counts[u], m.limit)
	}
	m.counts[u]++
	return nil
}

// Count returns how many items user u currently holds.
func (m *PartitionMatroid) Count(u types.UserID) int { return m.counts[u] }

// Limit returns the per-user limit.
func (m *PartitionMatroid) Limit() int { return m.limit }

// SetFunction is a plain set function over item sets, used by the empirical
// submodularity checks below.
type SetFunction func(items []types.ItemID) float64

// IsMonotone empirically verifies f(A) ≤ f(A ∪ {i}) for the given ground set
// by growing a chain of sets in the order provided. It is a test helper, not
// a proof: it samples one chain, which is enough to catch implementation
// mistakes in coverage functions.
func IsMonotone(f SetFunction, ground []types.ItemID) bool {
	prefix := make([]types.ItemID, 0, len(ground))
	prev := f(prefix)
	for _, i := range ground {
		prefix = append(prefix, i)
		cur := f(prefix)
		if cur < prev-1e-9 {
			return false
		}
		prev = cur
	}
	return true
}

// IsSubmodular empirically checks the diminishing-returns property
// f(A ∪ {x}) − f(A) ≥ f(B ∪ {x}) − f(B) for all prefixes A ⊆ B of the ground
// ordering and every x outside B. Quadratic in |ground|; use small grounds.
func IsSubmodular(f SetFunction, ground []types.ItemID) bool {
	for aEnd := 0; aEnd <= len(ground); aEnd++ {
		for bEnd := aEnd; bEnd <= len(ground); bEnd++ {
			a := ground[:aEnd]
			b := ground[:bEnd]
			fa, fb := f(a), f(b)
			for _, x := range ground[bEnd:] {
				gainA := f(append(append([]types.ItemID{}, a...), x)) - fa
				gainB := f(append(append([]types.ItemID{}, b...), x)) - fb
				if gainA < gainB-1e-9 {
					return false
				}
			}
		}
	}
	return true
}
