// Package submodular provides the combinatorial optimization machinery behind
// GANC's dynamic-coverage objective: marginal-gain oracles, the locally
// greedy algorithm of Fisher, Nemhauser & Wolsey (1978) for maximizing a
// monotone submodular function subject to a partition matroid, a lazy-greedy
// accelerated variant, and small helpers for verifying submodularity and
// monotonicity empirically (used by the tests and the ablation benchmarks).
//
// The paper's Appendix B shows that with the Dyn coverage recommender the
// objective Σ_u v_u(P_u) is monotone submodular over user–item pairs and the
// constraint "N items per user" is a partition matroid, so locally greedy
// gives a 1/2-approximation. This package exposes those pieces in a
// recommender-agnostic way; internal/core wires them to GANC's value
// functions.
package submodular

import (
	"fmt"

	"ganc/internal/types"
)

// GainFunc returns the marginal gain of adding item i to user u's current
// set, given the state accumulated so far. Implementations may close over
// mutable state (e.g. the Dyn recommendation-frequency counter); Maximize
// calls Commit after each selection so the state can be updated.
type GainFunc func(u types.UserID, i types.ItemID) float64

// Oracle describes the objective to the optimizer.
type Oracle interface {
	// Gain returns the marginal gain of adding item i to user u's set given
	// everything selected so far.
	Gain(u types.UserID, i types.ItemID) float64
	// Commit informs the oracle that item i was added to user u's set, so it
	// can update any shared state (Dyn frequencies, per-user accumulators).
	Commit(u types.UserID, i types.ItemID)
	// Candidates returns the item identifiers eligible for user u (typically
	// the catalog minus the user's train items). The returned slice is not
	// modified.
	Candidates(u types.UserID) []types.ItemID
}

// LocallyGreedy assigns exactly n items to each user in the given order, at
// each step picking the candidate with the largest marginal gain. It is the
// reference optimizer: O(|users|·|candidates|·n) oracle calls.
func LocallyGreedy(users []types.UserID, n int, oracle Oracle) types.Recommendations {
	recs := make(types.Recommendations, len(users))
	for _, u := range users {
		recs[u] = greedyForUser(u, n, oracle)
	}
	return recs
}

func greedyForUser(u types.UserID, n int, oracle Oracle) types.TopNSet {
	candidates := oracle.Candidates(u)
	if n > len(candidates) {
		n = len(candidates)
	}
	chosen := make(map[types.ItemID]struct{}, n)
	set := make(types.TopNSet, 0, n)
	for step := 0; step < n; step++ {
		bestItem := types.InvalidItem
		bestGain := 0.0
		first := true
		for _, i := range candidates {
			if _, used := chosen[i]; used {
				continue
			}
			g := oracle.Gain(u, i)
			if first || g > bestGain || (g == bestGain && i < bestItem) {
				bestGain, bestItem, first = g, i, false
			}
		}
		if bestItem == types.InvalidItem {
			break
		}
		chosen[bestItem] = struct{}{}
		set = append(set, bestItem)
		oracle.Commit(u, bestItem)
	}
	return set
}

// lazyEntry is a heap entry for lazy greedy: the cached gain of an item.
type lazyEntry struct {
	item  types.ItemID
	gain  float64
	stamp int // selection count at which the gain was computed
}

// lazyHeap is a max-heap over lazyEntry with direct sift operations instead
// of container/heap: the interface-based API boxes every pushed and popped
// entry, which dominated the allocation profile of the hot CELF sweeps.
type lazyHeap []lazyEntry

func (h lazyHeap) less(a, b int) bool {
	if h[a].gain != h[b].gain {
		return h[a].gain > h[b].gain
	}
	return h[a].item < h[b].item
}

func (h lazyHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h lazyHeap) siftDown(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		best := left
		if right := left + 1; right < n && h.less(right, left) {
			best = right
		}
		if !h.less(best, i) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h lazyHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// replaceTop overwrites the maximum entry and restores the heap property —
// the pop-recompute-push cycle of lazy greedy collapsed into one sift.
func (h lazyHeap) replaceTop(e lazyEntry) {
	h[0] = e
	h.siftDown(0)
}

// popTop removes and returns the maximum entry.
func (h *lazyHeap) popTop() lazyEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old = old[:n]
	old.siftDown(0)
	*h = old
	return top
}

// LazyGreedyForUser selects n items for a single user using lazy evaluation
// (Minoux's accelerated greedy): cached gains are only re-evaluated when an
// item reaches the top of the priority queue with a stale timestamp. For
// submodular gains this returns exactly the same set as the plain greedy
// sweep while evaluating far fewer gains; for the modular parts of GANC's
// objective (Stat and Rand coverage) it degenerates gracefully to a single
// evaluation per item.
func LazyGreedyForUser(u types.UserID, n int, oracle Oracle) types.TopNSet {
	return LazyGreedyForUserScratch(u, n, oracle, nil)
}

// LazyScratch holds the CELF priority queue's backing storage so hot callers
// (the per-user sweeps of core.GANC's optimizer) can run thousands of lazy
// selections without reallocating the heap. The zero value is ready to use;
// a LazyScratch must not be shared between concurrent sweeps.
type LazyScratch struct {
	h lazyHeap
}

// LazyGreedyForUserScratch is LazyGreedyForUser with caller-owned heap
// storage. A nil scratch allocates fresh storage (LazyGreedyForUser's
// behaviour); otherwise the scratch's buffer is reused across calls.
func LazyGreedyForUserScratch(u types.UserID, n int, oracle Oracle, scratch *LazyScratch) types.TopNSet {
	candidates := oracle.Candidates(u)
	if n > len(candidates) {
		n = len(candidates)
	}
	var h lazyHeap
	if scratch != nil {
		h = scratch.h[:0]
	}
	if cap(h) < len(candidates) {
		h = make(lazyHeap, 0, len(candidates))
	}
	for _, i := range candidates {
		h = append(h, lazyEntry{item: i, gain: oracle.Gain(u, i), stamp: 0})
	}
	h.init()
	set := make(types.TopNSet, 0, n)
	selections := 0
	for len(set) < n && len(h) > 0 {
		top := h[0]
		if top.stamp == selections {
			// Fresh gain: take it.
			set = append(set, top.item)
			oracle.Commit(u, top.item)
			selections++
			h.popTop()
			continue
		}
		// Stale: re-evaluate in place and restore the heap property.
		top.gain = oracle.Gain(u, top.item)
		top.stamp = selections
		h.replaceTop(top)
	}
	if scratch != nil {
		scratch.h = h[:0]
	}
	return set
}

// PartitionMatroid models the "at most limit items per user" constraint. It
// exists to make the matroid argument in the paper's Appendix B executable
// and testable, and to guard optimizer implementations in tests.
type PartitionMatroid struct {
	limit  int
	counts map[types.UserID]int
}

// NewPartitionMatroid creates a matroid allowing at most limit items per user.
func NewPartitionMatroid(limit int) *PartitionMatroid {
	if limit < 0 {
		limit = 0
	}
	return &PartitionMatroid{limit: limit, counts: make(map[types.UserID]int)}
}

// CanAdd reports whether another item may be added to user u's set.
func (m *PartitionMatroid) CanAdd(u types.UserID) bool {
	return m.counts[u] < m.limit
}

// Add records an addition for user u. It returns an error when the addition
// would violate the matroid constraint.
func (m *PartitionMatroid) Add(u types.UserID) error {
	if !m.CanAdd(u) {
		return fmt.Errorf("submodular: user %d already holds %d items (limit %d)", u, m.counts[u], m.limit)
	}
	m.counts[u]++
	return nil
}

// Count returns how many items user u currently holds.
func (m *PartitionMatroid) Count(u types.UserID) int { return m.counts[u] }

// Limit returns the per-user limit.
func (m *PartitionMatroid) Limit() int { return m.limit }

// SetFunction is a plain set function over item sets, used by the empirical
// submodularity checks below.
type SetFunction func(items []types.ItemID) float64

// IsMonotone empirically verifies f(A) ≤ f(A ∪ {i}) for the given ground set
// by growing a chain of sets in the order provided. It is a test helper, not
// a proof: it samples one chain, which is enough to catch implementation
// mistakes in coverage functions.
func IsMonotone(f SetFunction, ground []types.ItemID) bool {
	prefix := make([]types.ItemID, 0, len(ground))
	prev := f(prefix)
	for _, i := range ground {
		prefix = append(prefix, i)
		cur := f(prefix)
		if cur < prev-1e-9 {
			return false
		}
		prev = cur
	}
	return true
}

// IsSubmodular empirically checks the diminishing-returns property
// f(A ∪ {x}) − f(A) ≥ f(B ∪ {x}) − f(B) for all prefixes A ⊆ B of the ground
// ordering and every x outside B. Quadratic in |ground|; use small grounds.
func IsSubmodular(f SetFunction, ground []types.ItemID) bool {
	for aEnd := 0; aEnd <= len(ground); aEnd++ {
		for bEnd := aEnd; bEnd <= len(ground); bEnd++ {
			a := ground[:aEnd]
			b := ground[:bEnd]
			fa, fb := f(a), f(b)
			for _, x := range ground[bEnd:] {
				gainA := f(append(append([]types.ItemID{}, a...), x)) - fa
				gainB := f(append(append([]types.ItemID{}, b...), x)) - fb
				if gainA < gainB-1e-9 {
					return false
				}
			}
		}
	}
	return true
}
