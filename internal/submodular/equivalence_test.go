package submodular

import (
	"math/rand"
	"testing"

	"ganc/internal/types"
)

// referenceGreedyForUser is the small reference implementation the property
// tests pin the lazy (CELF) selection against: a per-pick full rescan of the
// candidate slice, exactly the shape of the pre-refactor core sweeps. It is
// deliberately kept in the test file, not the package, so the production path
// cannot quietly become its own oracle.
func referenceGreedyForUser(u types.UserID, n int, oracle Oracle) types.TopNSet {
	candidates := oracle.Candidates(u)
	if n > len(candidates) {
		n = len(candidates)
	}
	chosen := make(map[types.ItemID]struct{}, n)
	set := make(types.TopNSet, 0, n)
	for step := 0; step < n; step++ {
		bestItem := types.InvalidItem
		bestGain := 0.0
		first := true
		for _, i := range candidates {
			if _, used := chosen[i]; used {
				continue
			}
			g := oracle.Gain(u, i)
			if first || g > bestGain || (g == bestGain && i < bestItem) {
				bestGain, bestItem, first = g, i, false
			}
		}
		if bestItem == types.InvalidItem {
			break
		}
		chosen[bestItem] = struct{}{}
		set = append(set, bestItem)
		oracle.Commit(u, bestItem)
	}
	return set
}

// modularOracle has fixed per-item gains (the Stat/Rand-style objective).
type modularOracle struct {
	gains []float64
	cands []types.ItemID
}

func (o *modularOracle) Gain(_ types.UserID, i types.ItemID) float64 { return o.gains[i] }
func (o *modularOracle) Commit(types.UserID, types.ItemID)           {}
func (o *modularOracle) Candidates(types.UserID) []types.ItemID      { return o.cands }

// dynStyleOracle mirrors the Dyn coverage objective: the gain of an item
// decays with how often it has been committed.
type dynStyleOracle struct {
	weight []float64
	freq   []int
	cands  []types.ItemID
}

func (o *dynStyleOracle) Gain(_ types.UserID, i types.ItemID) float64 {
	return o.weight[i] / (1 + float64(o.freq[i]))
}
func (o *dynStyleOracle) Commit(_ types.UserID, i types.ItemID) { o.freq[i]++ }
func (o *dynStyleOracle) Candidates(types.UserID) []types.ItemID {
	return o.cands
}

func randomCandidates(rng *rand.Rand, numItems int) []types.ItemID {
	cands := make([]types.ItemID, 0, numItems)
	for i := 0; i < numItems; i++ {
		if rng.Float64() < 0.8 {
			cands = append(cands, types.ItemID(i))
		}
	}
	return cands
}

// coarseGains draws gains from a small value set so ties are frequent and the
// tie-breaking rules are genuinely exercised.
func coarseGains(rng *rand.Rand, numItems int) []float64 {
	gains := make([]float64, numItems)
	for i := range gains {
		gains[i] = float64(rng.Intn(6)) / 5.0
	}
	return gains
}

func assertSameSet(t *testing.T, trial int, got, want types.TopNSet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: lengths differ: lazy %v vs reference %v", trial, got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("trial %d: lazy %v != reference %v", trial, got, want)
		}
	}
}

func TestLazyGreedyMatchesReferenceOnModularObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		numItems := 20 + rng.Intn(60)
		gains := coarseGains(rng, numItems)
		cands := randomCandidates(rng, numItems)
		n := 1 + rng.Intn(12)
		lazy := LazyGreedyForUser(0, n, &modularOracle{gains: gains, cands: cands})
		ref := referenceGreedyForUser(0, n, &modularOracle{gains: gains, cands: cands})
		assertSameSet(t, trial, lazy, ref)
	}
}

func TestLazyGreedyMatchesReferenceOnSubmodularObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 50; trial++ {
		numItems := 20 + rng.Intn(60)
		weight := coarseGains(rng, numItems)
		cands := randomCandidates(rng, numItems)
		n := 1 + rng.Intn(12)
		// Pre-seed frequencies so gains start partially decayed.
		freq := make([]int, numItems)
		for i := range freq {
			freq[i] = rng.Intn(3)
		}
		freqCopy := append([]int(nil), freq...)
		lazy := LazyGreedyForUser(0, n, &dynStyleOracle{weight: weight, freq: freq, cands: cands})
		ref := referenceGreedyForUser(0, n, &dynStyleOracle{weight: weight, freq: freqCopy, cands: cands})
		assertSameSet(t, trial, lazy, ref)
	}
}

func TestLazyGreedyScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var scratch LazyScratch
	for trial := 0; trial < 30; trial++ {
		numItems := 10 + rng.Intn(80)
		weight := coarseGains(rng, numItems)
		cands := randomCandidates(rng, numItems)
		n := 1 + rng.Intn(8)
		freq := make([]int, numItems)
		freqCopy := make([]int, numItems)
		withScratch := LazyGreedyForUserScratch(0, n, &dynStyleOracle{weight: weight, freq: freq, cands: cands}, &scratch)
		fresh := LazyGreedyForUser(0, n, &dynStyleOracle{weight: weight, freq: freqCopy, cands: cands})
		assertSameSet(t, trial, withScratch, fresh)
	}
}
