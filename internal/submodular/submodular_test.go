package submodular

import (
	"math"
	"testing"

	"ganc/internal/types"
)

// coverageOracle is a test oracle implementing a Dyn-style diminishing-
// returns gain: 1/sqrt(1 + f_i) where f_i counts previous recommendations of
// item i across all users.
type coverageOracle struct {
	freq       map[types.ItemID]int
	candidates []types.ItemID
	gainCalls  int
}

func newCoverageOracle(numItems int) *coverageOracle {
	cands := make([]types.ItemID, numItems)
	for i := range cands {
		cands[i] = types.ItemID(i)
	}
	return &coverageOracle{freq: make(map[types.ItemID]int), candidates: cands}
}

func (o *coverageOracle) Gain(_ types.UserID, i types.ItemID) float64 {
	o.gainCalls++
	return 1 / math.Sqrt(1+float64(o.freq[i]))
}

func (o *coverageOracle) Commit(_ types.UserID, i types.ItemID) { o.freq[i]++ }

func (o *coverageOracle) Candidates(types.UserID) []types.ItemID { return o.candidates }

// accuracyOracle is a modular (no interaction) oracle with fixed per-item
// scores, used to verify greedy picks the top-scoring items.
type accuracyOracle struct {
	scores     map[types.ItemID]float64
	candidates []types.ItemID
}

func (o *accuracyOracle) Gain(_ types.UserID, i types.ItemID) float64 { return o.scores[i] }
func (o *accuracyOracle) Commit(types.UserID, types.ItemID)           {}
func (o *accuracyOracle) Candidates(types.UserID) []types.ItemID      { return o.candidates }

func TestLocallyGreedyPicksTopScoresForModularObjective(t *testing.T) {
	o := &accuracyOracle{
		scores:     map[types.ItemID]float64{0: 0.1, 1: 0.9, 2: 0.5, 3: 0.7},
		candidates: []types.ItemID{0, 1, 2, 3},
	}
	recs := LocallyGreedy([]types.UserID{0}, 2, o)
	got := recs[0]
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("greedy picked %v, want [1 3]", got)
	}
}

func TestLocallyGreedySpreadsItemsUnderDynCoverage(t *testing.T) {
	// With a pure Dyn coverage objective and 3 users × 2 items over a
	// 6-item catalog, greedy should never recommend the same item twice:
	// a fresh item always has gain 1 > 1/sqrt(2).
	o := newCoverageOracle(6)
	users := []types.UserID{0, 1, 2}
	recs := LocallyGreedy(users, 2, o)
	freq := recs.ItemFrequencies()
	for item, count := range freq {
		if count > 1 {
			t.Fatalf("item %d recommended %d times; Dyn coverage should spread items", item, count)
		}
	}
	if len(recs.DistinctItems()) != 6 {
		t.Fatalf("expected all 6 items used, got %d", len(recs.DistinctItems()))
	}
}

func TestLocallyGreedyRespectsPerUserLimit(t *testing.T) {
	o := newCoverageOracle(10)
	recs := LocallyGreedy([]types.UserID{0, 1}, 4, o)
	for u, set := range recs {
		if len(set) != 4 {
			t.Fatalf("user %d received %d items, want 4", u, len(set))
		}
		seen := map[types.ItemID]bool{}
		for _, i := range set {
			if seen[i] {
				t.Fatalf("user %d has duplicate item %d", u, i)
			}
			seen[i] = true
		}
	}
}

func TestLocallyGreedyHandlesSmallCandidateSets(t *testing.T) {
	o := newCoverageOracle(2)
	recs := LocallyGreedy([]types.UserID{7}, 5, o)
	if len(recs[7]) != 2 {
		t.Fatalf("expected the whole 2-item catalog, got %v", recs[7])
	}
}

func TestLazyGreedyMatchesPlainGreedyOnSubmodularObjective(t *testing.T) {
	// Lazy greedy must produce the same selections as plain greedy for a
	// submodular objective. Run both on identical oracle state sequences.
	plain := newCoverageOracle(12)
	lazy := newCoverageOracle(12)
	users := []types.UserID{0, 1, 2, 3}
	n := 3
	var plainSets, lazySets []types.TopNSet
	for _, u := range users {
		plainSets = append(plainSets, greedyForUser(u, n, plain))
		lazySets = append(lazySets, LazyGreedyForUser(u, n, lazy))
	}
	for k := range plainSets {
		if len(plainSets[k]) != len(lazySets[k]) {
			t.Fatalf("user %d set sizes differ: %v vs %v", users[k], plainSets[k], lazySets[k])
		}
		for j := range plainSets[k] {
			if plainSets[k][j] != lazySets[k][j] {
				t.Fatalf("user %d selection differs: %v vs %v", users[k], plainSets[k], lazySets[k])
			}
		}
	}
}

func TestLazyGreedyEvaluatesFewerGainsThanPlainOnLargerCatalogs(t *testing.T) {
	plain := newCoverageOracle(200)
	lazy := newCoverageOracle(200)
	for u := types.UserID(0); u < 10; u++ {
		greedyForUser(u, 5, plain)
	}
	for u := types.UserID(0); u < 10; u++ {
		LazyGreedyForUser(u, 5, lazy)
	}
	if lazy.gainCalls >= plain.gainCalls {
		t.Fatalf("lazy greedy used %d gain calls, plain used %d; expected fewer", lazy.gainCalls, plain.gainCalls)
	}
}

func TestPartitionMatroid(t *testing.T) {
	m := NewPartitionMatroid(2)
	if m.Limit() != 2 {
		t.Fatal("limit")
	}
	if !m.CanAdd(0) {
		t.Fatal("empty matroid should allow additions")
	}
	if err := m.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0); err != nil {
		t.Fatal(err)
	}
	if m.CanAdd(0) {
		t.Fatal("limit reached but CanAdd still true")
	}
	if err := m.Add(0); err == nil {
		t.Fatal("exceeding the limit did not error")
	}
	if m.Count(0) != 2 || m.Count(1) != 0 {
		t.Fatalf("counts wrong: %d, %d", m.Count(0), m.Count(1))
	}
	neg := NewPartitionMatroid(-5)
	if neg.CanAdd(0) {
		t.Fatal("negative limit should behave as zero")
	}
}

func TestIsMonotoneAndIsSubmodularOnCoverageFunction(t *testing.T) {
	// f(A) = Σ_{distinct items} 1 (set cover) is monotone submodular.
	cover := func(items []types.ItemID) float64 {
		set := map[types.ItemID]bool{}
		for _, i := range items {
			set[i] = true
		}
		return float64(len(set))
	}
	ground := []types.ItemID{0, 1, 2, 1, 3}
	if !IsMonotone(cover, ground) {
		t.Fatal("set cover should be monotone")
	}
	if !IsSubmodular(cover, ground) {
		t.Fatal("set cover should be submodular")
	}
}

func TestIsSubmodularDetectsSupermodularFunction(t *testing.T) {
	// f(A) = |A|² is supermodular (increasing returns); the check must fail.
	square := func(items []types.ItemID) float64 {
		return float64(len(items) * len(items))
	}
	ground := []types.ItemID{0, 1, 2, 3}
	if IsSubmodular(square, ground) {
		t.Fatal("|A|² must not pass the submodularity check")
	}
	if !IsMonotone(square, ground) {
		t.Fatal("|A|² is monotone and should pass the monotonicity check")
	}
}

func TestIsMonotoneDetectsDecreasingFunction(t *testing.T) {
	dec := func(items []types.ItemID) float64 { return -float64(len(items)) }
	if IsMonotone(dec, []types.ItemID{0, 1, 2}) {
		t.Fatal("a decreasing function must not pass the monotonicity check")
	}
}

func TestDynStyleObjectiveIsSubmodularAcrossUsers(t *testing.T) {
	// Reproduce the Appendix B argument empirically: the value of a set of
	// (user, item) pairs under the Dyn coverage function
	// Σ_pairs 1/sqrt(1 + f_i(before)) — equivalently Σ_i Σ_{k=1..f_i} 1/√k —
	// is monotone submodular in the set of pairs. We encode pairs as items
	// with the item component in the low bits.
	pairValue := func(pairs []types.ItemID) float64 {
		freq := map[int]int{}
		for _, p := range pairs {
			freq[int(p)%10]++
		}
		total := 0.0
		for _, f := range freq {
			for k := 1; k <= f; k++ {
				total += 1 / math.Sqrt(float64(k))
			}
		}
		return total
	}
	// Ground set: 8 pairs touching 3 distinct items across 4 users.
	ground := []types.ItemID{0, 10, 20, 1, 11, 2, 12, 21}
	if !IsMonotone(pairValue, ground) {
		t.Fatal("Dyn objective should be monotone")
	}
	if !IsSubmodular(pairValue, ground) {
		t.Fatal("Dyn objective should be submodular")
	}
}
