//go:build !amd64

package linalg

// Portable kernel entry points for architectures without a hand-written
// implementation: the unrolled multi-accumulator Go loops.

func dot32x8(a, b []float32) float32 { return dot32x8Generic(a, b) }

func dotQ8(a, b []int8) int32 { return dotQ8Generic(a, b) }
