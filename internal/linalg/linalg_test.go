package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ganc/internal/mat"
)

func TestNewSparseBasicAccess(t *testing.T) {
	s := NewSparse(3, 4, []Entry{
		{0, 1, 2.0},
		{1, 3, -1.0},
		{2, 0, 4.0},
	})
	if s.Rows() != 3 || s.Cols() != 4 || s.NNZ() != 3 {
		t.Fatalf("shape/nnz wrong: %dx%d nnz=%d", s.Rows(), s.Cols(), s.NNZ())
	}
	if s.At(0, 1) != 2.0 || s.At(1, 3) != -1.0 || s.At(2, 0) != 4.0 {
		t.Fatal("stored values wrong")
	}
	if s.At(0, 0) != 0 || s.At(2, 3) != 0 {
		t.Fatal("missing entries should read as zero")
	}
}

func TestNewSparseSumsDuplicates(t *testing.T) {
	s := NewSparse(2, 2, []Entry{
		{0, 0, 1.5},
		{0, 0, 2.5},
		{1, 1, 1},
	})
	if s.At(0, 0) != 4.0 {
		t.Fatalf("duplicates not summed: %v", s.At(0, 0))
	}
	if s.NNZ() != 2 {
		t.Fatalf("NNZ after merge = %d, want 2", s.NNZ())
	}
}

func TestNewSparsePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range entry did not panic")
		}
	}()
	NewSparse(2, 2, []Entry{{2, 0, 1}})
}

func TestSparseMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, cols := 7, 5
	var entries []Entry
	dense := mat.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.4 {
				v := rng.NormFloat64()
				entries = append(entries, Entry{r, c, v})
				dense.Set(r, c, v)
			}
		}
	}
	s := NewSparse(rows, cols, entries)
	v := make([]float64, cols)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := s.MulVec(v)
	want := dense.MulVec(v)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	u := make([]float64, rows)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	gotT := s.TMulVec(u)
	wantT := dense.TMulVec(u)
	for i := range gotT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %v, want %v", i, gotT[i], wantT[i])
		}
	}
}

func TestSparseMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows, cols, k := 6, 4, 3
	var entries []Entry
	dense := mat.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.5 {
				v := rng.NormFloat64()
				entries = append(entries, Entry{r, c, v})
				dense.Set(r, c, v)
			}
		}
	}
	s := NewSparse(rows, cols, entries)
	b := mat.NewDense(cols, k)
	for r := 0; r < cols; r++ {
		for c := 0; c < k; c++ {
			b.Set(r, c, rng.NormFloat64())
		}
	}
	if !mat.Equal(s.MulDense(b), mat.Mul(dense, b), 1e-12) {
		t.Fatal("MulDense disagrees with dense product")
	}
	bb := mat.NewDense(rows, k)
	for r := 0; r < rows; r++ {
		for c := 0; c < k; c++ {
			bb.Set(r, c, rng.NormFloat64())
		}
	}
	if !mat.Equal(s.TMulDense(bb), mat.Mul(dense.T(), bb), 1e-12) {
		t.Fatal("TMulDense disagrees with dense product")
	}
}

func TestQRProducesOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := mat.NewDense(10, 4)
	for r := 0; r < 10; r++ {
		for c := 0; c < 4; c++ {
			a.Set(r, c, rng.NormFloat64())
		}
	}
	q := QR(a, rng)
	for i := 0; i < 4; i++ {
		ci := q.Col(i)
		if math.Abs(mat.Norm2(ci)-1) > 1e-9 {
			t.Fatalf("column %d not unit length: %v", i, mat.Norm2(ci))
		}
		for j := i + 1; j < 4; j++ {
			if d := math.Abs(mat.Dot(ci, q.Col(j))); d > 1e-9 {
				t.Fatalf("columns %d,%d not orthogonal: %v", i, j, d)
			}
		}
	}
}

func TestQRHandlesRankDeficientInput(t *testing.T) {
	// Two identical columns: QR must still return orthonormal columns.
	a := mat.NewDense(5, 2)
	for r := 0; r < 5; r++ {
		a.Set(r, 0, float64(r+1))
		a.Set(r, 1, float64(r+1))
	}
	q := QR(a, rand.New(rand.NewSource(2)))
	if math.Abs(mat.Norm2(q.Col(1))-1) > 1e-9 {
		t.Fatal("degenerate column not replaced with a unit vector")
	}
	if d := math.Abs(mat.Dot(q.Col(0), q.Col(1))); d > 1e-9 {
		t.Fatalf("degenerate column not orthogonalized: %v", d)
	}
}

func TestJacobiEigenDiagonalMatrix(t *testing.T) {
	a := mat.NewDenseFrom([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, _ := JacobiEigen(a, 32, 1e-14)
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Fatalf("eigvals = %v, want %v", vals, want)
		}
	}
}

func TestJacobiEigenKnownSymmetricMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors (1,1)/√2, (1,-1)/√2.
	a := mat.NewDenseFrom([][]float64{
		{2, 1},
		{1, 2},
	})
	vals, v := JacobiEigen(a, 32, 1e-14)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigvals = %v", vals)
	}
	// Check A·v0 = 3·v0.
	v0 := v.Col(0)
	av0 := a.MulVec(v0)
	for i := range v0 {
		if math.Abs(av0[i]-3*v0[i]) > 1e-9 {
			t.Fatalf("eigenvector residual too large: %v vs %v", av0, v0)
		}
	}
}

func TestJacobiEigenPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square input did not panic")
		}
	}()
	JacobiEigen(mat.NewDense(2, 3), 10, 1e-10)
}

func TestJacobiEigenReconstructionProperty(t *testing.T) {
	// Property: for random symmetric matrices, V·diag(λ)·Vᵀ ≈ A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 4
		a := mat.NewDense(k, k)
		for i := 0; i < k; i++ {
			for j := i; j < k; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, v := JacobiEigen(a, 64, 1e-14)
		// Reconstruct.
		lam := mat.NewDense(k, k)
		for i := 0; i < k; i++ {
			lam.Set(i, i, vals[i])
		}
		recon := mat.Mul(mat.Mul(v, lam), v.T())
		return mat.Equal(a, recon, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedSVDRecoversLowRankMatrix(t *testing.T) {
	// Build an exactly rank-2 matrix and verify rank-2 SVD reconstructs it.
	rng := rand.New(rand.NewSource(7))
	rows, cols := 20, 15
	u1, u2 := randVec(rng, rows), randVec(rng, rows)
	v1, v2 := randVec(rng, cols), randVec(rng, cols)
	var entries []Entry
	dense := mat.NewDense(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			val := 5*u1[r]*v1[c] + 2*u2[r]*v2[c]
			dense.Set(r, c, val)
			entries = append(entries, Entry{r, c, val})
		}
	}
	s := NewSparse(rows, cols, entries)
	res, err := TruncatedSVD(s, 2, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	recon := res.Reconstruct()
	if !mat.Equal(dense, recon, 1e-6) {
		diff := 0.0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				d := dense.At(r, c) - recon.At(r, c)
				diff += d * d
			}
		}
		t.Fatalf("rank-2 reconstruction error %g too large", math.Sqrt(diff))
	}
	if res.S[0] < res.S[1] {
		t.Fatalf("singular values not descending: %v", res.S)
	}
}

func TestTruncatedSVDSingularValuesOfKnownMatrix(t *testing.T) {
	// diag(3, 2, 1) padded to 5x4: singular values are 3, 2, 1.
	entries := []Entry{{0, 0, 3}, {1, 1, 2}, {2, 2, 1}}
	s := NewSparse(5, 4, entries)
	res, err := TruncatedSVD(s, 3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(res.S[i]-w) > 1e-6 {
			t.Fatalf("singular values %v, want %v", res.S, want)
		}
	}
}

func TestTruncatedSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows, cols := 30, 12
	var entries []Entry
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < 0.3 {
				entries = append(entries, Entry{r, c, rng.Float64() * 5})
			}
		}
	}
	s := NewSparse(rows, cols, entries)
	res, err := TruncatedSVD(s, 4, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if math.Abs(mat.Norm2(res.U.Col(i))-1) > 1e-6 {
			t.Fatalf("U column %d not unit", i)
		}
		if res.S[i] > 1e-9 && math.Abs(mat.Norm2(res.V.Col(i))-1) > 1e-6 {
			t.Fatalf("V column %d not unit", i)
		}
		for j := i + 1; j < 4; j++ {
			if math.Abs(mat.Dot(res.U.Col(i), res.U.Col(j))) > 1e-6 {
				t.Fatalf("U columns %d,%d not orthogonal", i, j)
			}
		}
	}
}

func TestTruncatedSVDErrors(t *testing.T) {
	s := NewSparse(3, 3, []Entry{{0, 0, 1}})
	if _, err := TruncatedSVD(s, 0, 1, 1); err == nil {
		t.Fatal("rank 0 did not error")
	}
	if _, err := TruncatedSVD(s, 10, 1, 1); err == nil {
		t.Fatal("rank larger than dimensions did not error")
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
