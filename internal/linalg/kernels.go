package linalg

import "math"

// Scoring kernels and contiguous factor-block layouts for the bulk-scoring
// hot path. The MF/rank models train in float64 per-row slices (numerically
// convenient) but serve from the types below: one backing slice per factor
// matrix (row stride = dims), float32 or symmetric int8 elements, and
// fixed-width unrolled dot kernels whose independent accumulators break the
// loop-carried ADD dependency that bounds a naive scalar loop. DESIGN.md §12
// documents the layout, the quantization scheme and the benchmark
// methodology; kernels_bench_test.go gates the speedup ratio in CI.

// Dot64 is the scalar float64 reference dot product. Single accumulator,
// left-to-right — the exact summation order the per-row [][]float64 paths
// use, kept here so the kernel benchmarks compare against the real baseline.
func Dot64(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dot32 is the scalar float32 dot product (single accumulator,
// left-to-right). It is the remainder loop for the unrolled kernels and the
// fallback for dims < 4.
func Dot32(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Dot32x4 computes a float32 dot product with 4 independent accumulators.
// The three-index slice expressions pin the slice capacity so the compiler
// proves all eight loads in a block are in bounds from one comparison.
func Dot32x4(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Dot32x8 computes the widest float32 dot product — the kernel the bulk
// scorers run and the one the CI ratio gate measures against Dot64. On
// amd64 it dispatches to a hand-scheduled SSE2 kernel (4 lanes × 4
// accumulators; SSE2 is part of the amd64 baseline so no feature detection
// is needed — gc does not auto-vectorize scalar loops, so the unrolled Go
// version below tops out at the 2-loads-per-element scalar port limit).
// Other architectures run the 8-accumulator pure-Go version. Both reduce
// through a fixed tree, so results are deterministic for a given dims.
func Dot32x8(a, b []float32) float32 {
	if len(b) < len(a) { // one bounds check up front covers the asm kernel
		panic("linalg: Dot32x8: len(b) < len(a)")
	}
	return dot32x8(a, b)
}

// dot32x8Generic is the portable Dot32x8: 8 independent accumulators break
// the loop-carried ADD dependency of the single-accumulator scalar loop;
// three-index slice expressions pin capacities so one comparison proves all
// sixteen loads per block are in bounds.
func dot32x8Generic(a, b []float32) float32 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float32
	i := 0
	for ; i+8 <= len(a); i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
		s4 += aa[4] * bb[4]
		s5 += aa[5] * bb[5]
		s6 += aa[6] * bb[6]
		s7 += aa[7] * bb[7]
	}
	s := ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// DotQ8 computes the integer dot product of two symmetric int8-quantized
// rows, accumulating in int32. With |x| ≤ 127 a product is ≤ 16129, so
// int32 holds > 130k dims without overflow — far beyond any factor count
// this system uses. On amd64 it runs an SSE2 kernel (sign-extend via
// unpack+shift, PMADDWD pair-sums); elsewhere the 4-wide unrolled Go loop.
func DotQ8(a, b []int8) int32 {
	if len(b) < len(a) { // one bounds check up front covers the asm kernel
		panic("linalg: DotQ8: len(b) < len(a)")
	}
	return dotQ8(a, b)
}

// dotQ8Generic is the portable DotQ8 (4 independent int32 accumulators).
func dotQ8Generic(a, b []int8) int32 {
	var s0, s1, s2, s3 int32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += int32(aa[0]) * int32(bb[0])
		s1 += int32(aa[1]) * int32(bb[1])
		s2 += int32(aa[2]) * int32(bb[2])
		s3 += int32(aa[3]) * int32(bb[3])
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// Block is a dense rows×dims float32 matrix in one backing slice, row-major
// with stride = dims. Factor matrices convert into Blocks once after
// training (or snapshot load) so the scoring loop walks contiguous memory
// instead of chasing per-row slice headers.
type Block struct {
	rows, dims int
	data       []float32
}

// BlockFrom64 packs a [][]float64 factor matrix into a Block, truncating
// each element to float32. Every row must have the same length. A matrix
// with zero rows yields an empty Block with dims 0.
func BlockFrom64(m [][]float64) Block {
	if len(m) == 0 {
		return Block{}
	}
	dims := len(m[0])
	data := make([]float32, len(m)*dims)
	for r, row := range m {
		base := r * dims
		for c, v := range row {
			data[base+c] = float32(v)
		}
	}
	return Block{rows: len(m), dims: dims, data: data}
}

// BlockFromData wraps an existing flat row-major slice (len = rows*dims)
// without copying — the snapshot load path hands gob-decoded sections
// straight to it.
func BlockFromData(rows, dims int, data []float32) Block {
	if len(data) != rows*dims {
		panic("linalg: BlockFromData length mismatch")
	}
	return Block{rows: rows, dims: dims, data: data}
}

// Rows returns the number of rows.
func (b Block) Rows() int { return b.rows }

// Dims returns the row width (and stride).
func (b Block) Dims() int { return b.dims }

// Data returns the backing slice (rows×dims, row-major). Persistence
// serializes it directly.
func (b Block) Data() []float32 { return b.data }

// Row returns row r as a full-capacity subslice of the backing array.
func (b Block) Row(r int) []float32 {
	off := r * b.dims
	return b.data[off : off+b.dims : off+b.dims]
}

// QuantizedBlock is a Block quantized to symmetric int8 with one scale per
// row: q[c] = round(row[c]/scale) clamped to [-127,127], scale =
// maxabs(row)/127. The dot of two quantized rows recovers the real value as
// float64(int32 dot) × scaleA × scaleB.
type QuantizedBlock struct {
	rows, dims int
	data       []int8
	scales     []float32
}

// Quantize converts a float32 Block to a QuantizedBlock.
func Quantize(b Block) QuantizedBlock {
	q := QuantizedBlock{
		rows:   b.rows,
		dims:   b.dims,
		data:   make([]int8, len(b.data)),
		scales: make([]float32, b.rows),
	}
	for r := 0; r < b.rows; r++ {
		off := r * b.dims
		q.scales[r] = QuantizeRowInto(b.data[off:off+b.dims], q.data[off:off+b.dims])
	}
	return q
}

// QuantizeRowInto quantizes one float32 row into dst (same length) and
// returns the row scale. An all-zero row gets scale 0 and all-zero codes; a
// non-finite element makes the whole row zero (scale 0) rather than
// poisoning the scale — trained factors are always finite, so this only
// guards corrupted input.
func QuantizeRowInto(row []float32, dst []int8) float32 {
	var maxAbs float32
	for _, v := range row {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(float64(maxAbs), 0) || maxAbs != maxAbs {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, v := range row {
		q := int32(math.RoundToEven(float64(v * inv)))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// Rows returns the number of rows.
func (q QuantizedBlock) Rows() int { return q.rows }

// Dims returns the row width.
func (q QuantizedBlock) Dims() int { return q.dims }

// Row returns quantized row r.
func (q QuantizedBlock) Row(r int) []int8 {
	off := r * q.dims
	return q.data[off : off+q.dims : off+q.dims]
}

// Scale returns the quantization scale of row r.
func (q QuantizedBlock) Scale(r int) float32 { return q.scales[r] }
