//go:build amd64

#include "textflag.h"

// func dot32x8(a, b []float32) float32
//
// Float32 dot product over len(a) elements (caller guarantees
// len(b) >= len(a)). Main loop: 16 elements per iteration into four
// independent XMM accumulators (MULPS+ADDPS), then a 4-wide loop, then a
// scalar tail, then a fixed-shape horizontal reduction — the same
// deterministic tree for every call with the same length.
TEXT ·dot32x8(SB), NOSPLIT, $0-52
	MOVQ  a_base+0(FP), SI
	MOVQ  a_len+8(FP), CX
	MOVQ  b_base+24(FP), DI
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  AX, AX
	MOVQ  CX, DX
	ANDQ  $-16, DX
	CMPQ  DX, $0
	JE    quad

loop16:
	MOVUPS (SI)(AX*4), X4
	MOVUPS 16(SI)(AX*4), X5
	MOVUPS 32(SI)(AX*4), X6
	MOVUPS 48(SI)(AX*4), X7
	MOVUPS (DI)(AX*4), X8
	MOVUPS 16(DI)(AX*4), X9
	MOVUPS 32(DI)(AX*4), X10
	MOVUPS 48(DI)(AX*4), X11
	MULPS  X8, X4
	MULPS  X9, X5
	MULPS  X10, X6
	MULPS  X11, X7
	ADDPS  X4, X0
	ADDPS  X5, X1
	ADDPS  X6, X2
	ADDPS  X7, X3
	ADDQ   $16, AX
	CMPQ   AX, DX
	JL     loop16

quad:
	MOVQ  CX, DX
	ANDQ  $-4, DX
	CMPQ  AX, DX
	JGE   reduce

loop4:
	MOVUPS (SI)(AX*4), X4
	MOVUPS (DI)(AX*4), X8
	MULPS  X8, X4
	ADDPS  X4, X0
	ADDQ   $4, AX
	CMPQ   AX, DX
	JL     loop4

reduce:
	ADDPS   X1, X0
	ADDPS   X3, X2
	ADDPS   X2, X0
	MOVAPS  X0, X1
	MOVHLPS X0, X1               // X1 low pair = X0 high pair
	ADDPS   X1, X0
	MOVAPS  X0, X1
	SHUFPS  $0x01, X1, X1        // X1 lane0 = X0 lane1
	ADDSS   X1, X0
	CMPQ    AX, CX
	JGE     done

scalar:
	MOVSS (SI)(AX*4), X4
	MULSS (DI)(AX*4), X4
	ADDSS X4, X0
	INCQ  AX
	CMPQ  AX, CX
	JL    scalar

done:
	MOVSS X0, ret+48(FP)
	RET

// func dotQ8(a, b []int8) int32
//
// Symmetric int8 dot product accumulated in int32 (caller guarantees
// len(b) >= len(a)). Main loop: 16 bytes per iteration, sign-extended to
// int16 via the SSE2 unpack-with-self + arithmetic-shift idiom, pair-summed
// into int32 lanes with PMADDWL, accumulated with PADDL. A scalar tail in
// GPRs handles len%16.
TEXT ·dotQ8(SB), NOSPLIT, $0-52
	MOVQ a_base+0(FP), SI
	MOVQ a_len+8(FP), CX
	MOVQ b_base+24(FP), DI
	PXOR X0, X0
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   qreduce

qloop16:
	MOVOU     (SI)(AX*1), X4
	MOVOU     (DI)(AX*1), X5
	MOVOU     X4, X6
	MOVOU     X5, X7
	PUNPCKLBW X4, X4
	PSRAW     $8, X4             // a, low 8 bytes sign-extended to words
	PUNPCKHBW X6, X6
	PSRAW     $8, X6             // a, high 8 bytes
	PUNPCKLBW X5, X5
	PSRAW     $8, X5             // b, low
	PUNPCKHBW X7, X7
	PSRAW     $8, X7             // b, high
	PMADDWL   X5, X4             // four int32 pair-sums (low half)
	PMADDWL   X7, X6             // four int32 pair-sums (high half)
	PADDL     X4, X0
	PADDL     X6, X0
	ADDQ      $16, AX
	CMPQ      AX, DX
	JL        qloop16

qreduce:
	MOVOU X0, X1
	PSRLO $8, X1
	PADDL X1, X0
	MOVOU X0, X1
	PSRLO $4, X1
	PADDL X1, X0
	MOVL  X0, R10                // low int32 lane holds the vector sum
	CMPQ  AX, CX
	JGE   qdone

qscalar:
	MOVBQSX (SI)(AX*1), R8
	MOVBQSX (DI)(AX*1), R9
	IMULQ   R9, R8
	ADDQ    R8, R10
	INCQ    AX
	CMPQ    AX, CX
	JL      qscalar

qdone:
	MOVL R10, ret+48(FP)
	RET
