//go:build race

package linalg

// raceDetectorEnabled reports whether this test binary was built with
// -race. The kernel speedup ratio gate skips under the race detector: it
// inflates memory-access costs unevenly, so the measured ratio says nothing
// about production kernel performance.
const raceDetectorEnabled = true
