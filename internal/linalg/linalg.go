// Package linalg implements the numerical routines needed by the PureSVD
// recommender: QR orthonormalization, a Jacobi symmetric eigensolver, and a
// randomized truncated SVD for sparse user–item matrices.
//
// PureSVD (Cremonesi et al., RecSys 2010) imputes missing ratings with zeros
// and takes a rank-k SVD of the resulting matrix. The matrices involved are
// |U|×|I| with only |D| non-zeros, so the implementation never materializes
// the dense matrix: all products go through a compressed sparse row (CSR)
// representation.
package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"ganc/internal/mat"
)

// Sparse is a compressed sparse row matrix. Build one with NewSparse.
type Sparse struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	values     []float64
}

// Entry is a single non-zero element used to construct a Sparse matrix.
type Entry struct {
	Row, Col int
	Value    float64
}

// NewSparse builds a CSR matrix of the given shape from entries. Duplicate
// (row, col) entries are summed. Entries outside the shape cause a panic.
func NewSparse(rows, cols int, entries []Entry) *Sparse {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid sparse shape %dx%d", rows, cols))
	}
	counts := make([]int, rows+1)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("linalg: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols))
		}
		counts[e.Row+1]++
	}
	for r := 0; r < rows; r++ {
		counts[r+1] += counts[r]
	}
	colIdx := make([]int, len(entries))
	values := make([]float64, len(entries))
	next := make([]int, rows)
	copy(next, counts[:rows])
	for _, e := range entries {
		p := next[e.Row]
		colIdx[p] = e.Col
		values[p] = e.Value
		next[e.Row]++
	}
	s := &Sparse{rows: rows, cols: cols, rowPtr: counts, colIdx: colIdx, values: values}
	s.sumDuplicates()
	return s
}

// sumDuplicates merges duplicate column indices within each row.
func (s *Sparse) sumDuplicates() {
	newRowPtr := make([]int, s.rows+1)
	newCol := s.colIdx[:0]
	newVal := s.values[:0]
	write := 0
	for r := 0; r < s.rows; r++ {
		start, end := s.rowPtr[r], s.rowPtr[r+1]
		// Small rows: insertion-style merge via map only when duplicates may
		// exist. Sort the row slice by column, then merge equal neighbours.
		row := make([]Entry, 0, end-start)
		for p := start; p < end; p++ {
			row = append(row, Entry{Row: r, Col: s.colIdx[p], Value: s.values[p]})
		}
		sortEntriesByCol(row)
		for i := 0; i < len(row); {
			j := i + 1
			v := row[i].Value
			for j < len(row) && row[j].Col == row[i].Col {
				v += row[j].Value
				j++
			}
			newCol = append(newCol, row[i].Col)
			newVal = append(newVal, v)
			write++
			i = j
		}
		newRowPtr[r+1] = write
	}
	s.rowPtr = newRowPtr
	s.colIdx = newCol
	s.values = newVal
}

func sortEntriesByCol(row []Entry) {
	// Insertion sort: rows are short (a user's profile size).
	for i := 1; i < len(row); i++ {
		for j := i; j > 0 && row[j].Col < row[j-1].Col; j-- {
			row[j], row[j-1] = row[j-1], row[j]
		}
	}
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored non-zeros.
func (s *Sparse) NNZ() int { return len(s.values) }

// At returns the element at (r, c); zero if not stored.
func (s *Sparse) At(r, c int) float64 {
	for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
		if s.colIdx[p] == c {
			return s.values[p]
		}
	}
	return 0
}

// MulVec computes s·v (length cols → length rows).
func (s *Sparse) MulVec(v []float64) []float64 {
	if len(v) != s.cols {
		panic("linalg: MulVec length mismatch")
	}
	out := make([]float64, s.rows)
	for r := 0; r < s.rows; r++ {
		sum := 0.0
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			sum += s.values[p] * v[s.colIdx[p]]
		}
		out[r] = sum
	}
	return out
}

// TMulVec computes sᵀ·v (length rows → length cols).
func (s *Sparse) TMulVec(v []float64) []float64 {
	if len(v) != s.rows {
		panic("linalg: TMulVec length mismatch")
	}
	out := make([]float64, s.cols)
	for r := 0; r < s.rows; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			out[s.colIdx[p]] += s.values[p] * vr
		}
	}
	return out
}

// MulDense computes s·B where B is cols×k, returning a rows×k dense matrix.
func (s *Sparse) MulDense(b *mat.Dense) *mat.Dense {
	if b.Rows() != s.cols {
		panic("linalg: MulDense shape mismatch")
	}
	k := b.Cols()
	out := mat.NewDense(s.rows, k)
	for r := 0; r < s.rows; r++ {
		orow := out.Row(r)
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			v := s.values[p]
			brow := b.Row(s.colIdx[p])
			for j := 0; j < k; j++ {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}

// TMulDense computes sᵀ·B where B is rows×k, returning a cols×k dense matrix.
func (s *Sparse) TMulDense(b *mat.Dense) *mat.Dense {
	if b.Rows() != s.rows {
		panic("linalg: TMulDense shape mismatch")
	}
	k := b.Cols()
	out := mat.NewDense(s.cols, k)
	for r := 0; r < s.rows; r++ {
		brow := b.Row(r)
		for p := s.rowPtr[r]; p < s.rowPtr[r+1]; p++ {
			v := s.values[p]
			orow := out.Row(s.colIdx[p])
			for j := 0; j < k; j++ {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}

// QR orthonormalizes the columns of a in place using modified Gram–Schmidt
// and returns a (now with orthonormal columns). Columns that become
// numerically zero are replaced with random unit vectors orthogonal to the
// previous ones so downstream subspace iteration never collapses.
func QR(a *mat.Dense, rng *rand.Rand) *mat.Dense {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	n, k := a.Rows(), a.Cols()
	for j := 0; j < k; j++ {
		col := a.Col(j)
		// Orthogonalize against previous columns (twice, for stability).
		for pass := 0; pass < 2; pass++ {
			for prev := 0; prev < j; prev++ {
				p := a.Col(prev)
				proj := mat.Dot(col, p)
				mat.AXPY(-proj, p, col)
			}
		}
		norm := mat.Norm2(col)
		if norm < 1e-12 {
			// Degenerate column: replace with a random direction and repeat
			// the orthogonalization once.
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			for prev := 0; prev < j; prev++ {
				p := a.Col(prev)
				proj := mat.Dot(col, p)
				mat.AXPY(-proj, p, col)
			}
			norm = mat.Norm2(col)
			if norm < 1e-12 {
				norm = 1
			}
		}
		mat.Scale(col, 1/norm)
		a.SetCol(j, col)
	}
	_ = n
	return a
}

// JacobiEigen computes the eigen-decomposition of a small symmetric matrix A
// (k×k) using the cyclic Jacobi method. It returns the eigenvalues in
// descending order and the matching eigenvectors as the columns of V.
func JacobiEigen(a *mat.Dense, maxSweeps int, tol float64) (eigvals []float64, v *mat.Dense) {
	k := a.Rows()
	if a.Cols() != k {
		panic("linalg: JacobiEigen requires a square matrix")
	}
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	if tol <= 0 {
		tol = 1e-12
	}
	w := a.Clone()
	v = mat.NewDense(k, k)
	for i := 0; i < k; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				off += w.At(p, q) * w.At(p, q)
			}
		}
		if math.Sqrt(off) < tol {
			break
		}
		for p := 0; p < k; p++ {
			for q := p + 1; q < k; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < tol/float64(k*k) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to W on both sides and accumulate into V.
				for i := 0; i < k; i++ {
					wip, wiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wip-s*wiq)
					w.Set(i, q, s*wip+c*wiq)
				}
				for i := 0; i < k; i++ {
					wpi, wqi := w.At(p, i), w.At(q, i)
					w.Set(p, i, c*wpi-s*wqi)
					w.Set(q, i, s*wpi+c*wqi)
				}
				for i := 0; i < k; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vip-s*viq)
					v.Set(i, q, s*vip+c*viq)
				}
			}
		}
	}
	eigvals = make([]float64, k)
	for i := 0; i < k; i++ {
		eigvals[i] = w.At(i, i)
	}
	// Sort eigen-pairs by descending eigenvalue.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		maxAt := i
		for j := i + 1; j < k; j++ {
			if eigvals[order[j]] > eigvals[order[maxAt]] {
				maxAt = j
			}
		}
		order[i], order[maxAt] = order[maxAt], order[i]
	}
	sortedVals := make([]float64, k)
	sortedV := mat.NewDense(k, k)
	for newIdx, oldIdx := range order {
		sortedVals[newIdx] = eigvals[oldIdx]
		sortedV.SetCol(newIdx, v.Col(oldIdx))
	}
	return sortedVals, sortedV
}

// SVDResult holds a truncated singular value decomposition A ≈ U·diag(S)·Vᵀ.
type SVDResult struct {
	U *mat.Dense // rows × k, orthonormal columns
	S []float64  // k singular values, descending
	V *mat.Dense // cols × k, orthonormal columns
}

// TruncatedSVD computes a rank-k approximation of the sparse matrix A using
// randomized subspace iteration (Halko, Martinsson & Tropp, 2011): sketch the
// range with a Gaussian test matrix, refine it with a few power iterations,
// then solve the small k×k eigenproblem of the projected Gram matrix with the
// Jacobi solver. powerIters=2 and an oversampling of 8 give singular values
// accurate to a few percent on the rating matrices used here, which is far
// below the noise floor of the recommendation metrics.
func TruncatedSVD(a *Sparse, k, powerIters int, seed int64) (*SVDResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("linalg: rank must be positive, got %d", k)
	}
	minDim := a.rows
	if a.cols < minDim {
		minDim = a.cols
	}
	if k > minDim {
		return nil, fmt.Errorf("linalg: rank %d exceeds min(rows, cols)=%d", k, minDim)
	}
	if powerIters < 0 {
		powerIters = 0
	}
	rng := rand.New(rand.NewSource(seed))
	oversample := 8
	p := k + oversample
	if p > minDim {
		p = minDim
	}

	// Random range sketch: Y = A·Ω, Ω gaussian cols×p.
	omega := mat.NewDense(a.cols, p)
	for r := 0; r < a.cols; r++ {
		row := omega.Row(r)
		for c := range row {
			row[c] = rng.NormFloat64()
		}
	}
	y := a.MulDense(omega) // rows × p
	q := QR(y, rng)
	for it := 0; it < powerIters; it++ {
		z := a.TMulDense(q) // cols × p
		z = QR(z, rng)
		y = a.MulDense(z) // rows × p
		q = QR(y, rng)
	}

	// Project: B = Qᵀ·A  (p × cols), then eigen-decompose B·Bᵀ (p × p).
	bt := a.TMulDense(q) // cols × p  == Bᵀ
	// G = B·Bᵀ = Btᵀ·Bt
	g := mat.NewDense(p, p)
	for i := 0; i < p; i++ {
		ci := bt.Col(i)
		for j := i; j < p; j++ {
			val := mat.Dot(ci, bt.Col(j))
			g.Set(i, j, val)
			g.Set(j, i, val)
		}
	}
	eigvals, w := JacobiEigen(g, 64, 1e-12)

	result := &SVDResult{
		U: mat.NewDense(a.rows, k),
		S: make([]float64, k),
		V: mat.NewDense(a.cols, k),
	}
	for j := 0; j < k; j++ {
		lambda := eigvals[j]
		if lambda < 0 {
			lambda = 0
		}
		sigma := math.Sqrt(lambda)
		result.S[j] = sigma
		// U_j = Q · w_j
		wj := w.Col(j)
		uj := make([]float64, a.rows)
		for r := 0; r < a.rows; r++ {
			uj[r] = mat.Dot(q.Row(r), wj)
		}
		result.U.SetCol(j, uj)
		// V_j = Bᵀ · w_j / σ = bt · w_j / σ
		vj := make([]float64, a.cols)
		if sigma > 1e-12 {
			for r := 0; r < a.cols; r++ {
				vj[r] = mat.Dot(bt.Row(r), wj) / sigma
			}
		}
		result.V.SetCol(j, vj)
	}
	return result, nil
}

// Reconstruct returns the dense rank-k approximation U·diag(S)·Vᵀ. Intended
// for tests and small matrices only.
func (r *SVDResult) Reconstruct() *mat.Dense {
	k := len(r.S)
	us := r.U.Clone()
	for j := 0; j < k; j++ {
		col := us.Col(j)
		mat.Scale(col, r.S[j])
		us.SetCol(j, col)
	}
	return mat.Mul(us, r.V.T())
}
