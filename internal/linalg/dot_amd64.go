//go:build amd64

package linalg

// SSE2 kernel entry points (dot_amd64.s). SSE2 is part of the amd64
// architecture baseline, so these need no runtime feature detection. Both
// require len(b) ≥ len(a); the exported wrappers enforce that with one
// up-front bounds check.

//go:noescape
func dot32x8(a, b []float32) float32

//go:noescape
func dotQ8(a, b []int8) int32
