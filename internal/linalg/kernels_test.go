package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func randRow64(rng *rand.Rand, dims int) []float64 {
	row := make([]float64, dims)
	for i := range row {
		row[i] = rng.NormFloat64()
	}
	return row
}

func to32(row []float64) []float32 {
	out := make([]float32, len(row))
	for i, v := range row {
		out[i] = float32(v)
	}
	return out
}

// All float32 kernels must agree with a float64 accumulation of the same
// float32 inputs to within float32 rounding, for every dims alignment the
// remainder loops can see.
func TestDot32KernelsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for dims := 0; dims <= 40; dims++ {
		a64 := randRow64(rng, dims)
		b64 := randRow64(rng, dims)
		a, b := to32(a64), to32(b64)
		var want float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
		}
		tol := 1e-4 * (1 + math.Abs(want))
		for _, k := range []struct {
			name string
			fn   func(a, b []float32) float32
		}{
			{"Dot32", Dot32},
			{"Dot32x4", Dot32x4},
			{"Dot32x8", Dot32x8},
		} {
			got := float64(k.fn(a, b))
			if math.Abs(got-want) > tol {
				t.Errorf("dims=%d %s = %v, want %v (tol %v)", dims, k.name, got, want, tol)
			}
		}
	}
}

// The dispatched Dot32x8/DotQ8 (SSE2 asm on amd64) must agree with their
// portable generic implementations for every tail alignment: float32
// bit-identically is not required (different summation trees), but within
// float32 rounding; int8 exactly (integer arithmetic has one answer).
func TestAsmMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for dims := 0; dims <= 70; dims++ {
		a64 := randRow64(rng, dims)
		b64 := randRow64(rng, dims)
		a, b := to32(a64), to32(b64)
		got := float64(Dot32x8(a, b))
		want := float64(dot32x8Generic(a, b))
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Errorf("dims=%d Dot32x8 = %v, generic = %v", dims, got, want)
		}
		qa := make([]int8, dims)
		qb := make([]int8, dims)
		for i := range qa {
			qa[i] = int8(rng.Intn(255) - 127)
			qb[i] = int8(rng.Intn(255) - 127)
		}
		if g, w := DotQ8(qa, qb), dotQ8Generic(qa, qb); g != w {
			t.Errorf("dims=%d DotQ8 = %d, generic = %d", dims, g, w)
		}
	}
}

// Kernels read len(a) elements: a longer b is fine, a shorter b panics up
// front instead of letting the asm read out of bounds.
func TestKernelLengthContract(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5}
	b := []float32{1, 1, 1, 1, 1, 9, 9}
	if got := Dot32x8(a, b); got != 15 {
		t.Fatalf("Dot32x8 with longer b = %v, want 15", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot32x8 with short b did not panic")
		}
	}()
	Dot32x8(a, b[:3])
}

func TestDot64MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for dims := 0; dims <= 17; dims++ {
		a := randRow64(rng, dims)
		b := randRow64(rng, dims)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot64(a, b); got != want {
			t.Fatalf("dims=%d Dot64 = %v, want bit-identical %v", dims, got, want)
		}
	}
}

func TestBlockFrom64(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {4, 5, 6}}
	b := BlockFrom64(m)
	if b.Rows() != 2 || b.Dims() != 3 {
		t.Fatalf("got %dx%d, want 2x3", b.Rows(), b.Dims())
	}
	for r := range m {
		row := b.Row(r)
		if len(row) != 3 || cap(row) != 3 {
			t.Fatalf("row %d: len=%d cap=%d, want 3/3", r, len(row), cap(row))
		}
		for c, v := range m[r] {
			if row[c] != float32(v) {
				t.Fatalf("row %d col %d: got %v want %v", r, c, row[c], v)
			}
		}
	}
	empty := BlockFrom64(nil)
	if empty.Rows() != 0 || empty.Dims() != 0 || len(empty.Data()) != 0 {
		t.Fatalf("empty block not empty: %+v", empty)
	}
}

func TestBlockFromData(t *testing.T) {
	data := []float32{1, 2, 3, 4, 5, 6}
	b := BlockFromData(3, 2, data)
	if got := b.Row(2); got[0] != 5 || got[1] != 6 {
		t.Fatalf("Row(2) = %v, want [5 6]", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BlockFromData with wrong length did not panic")
		}
	}()
	BlockFromData(2, 2, data)
}

// Quantized dots must recover the float32 reference dot to within the
// per-element quantization error bound: each code is off by at most half a
// step (scale/2), so the dot error is bounded by
// sum_i(|a_i|·sb/2 + |b_i|·sa/2 + sa·sb/4).
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for dims := 1; dims <= 40; dims++ {
		a64 := randRow64(rng, dims)
		b64 := randRow64(rng, dims)
		a, b := to32(a64), to32(b64)
		qa := Quantize(BlockFromData(1, dims, a))
		qb := Quantize(BlockFromData(1, dims, b))
		sa, sb := float64(qa.Scale(0)), float64(qb.Scale(0))
		got := float64(DotQ8(qa.Row(0), qb.Row(0))) * sa * sb
		var want, bound float64
		for i := range a {
			want += float64(a[i]) * float64(b[i])
			bound += math.Abs(float64(a[i]))*sb/2 + math.Abs(float64(b[i]))*sa/2 + sa*sb/4
		}
		if math.Abs(got-want) > bound+1e-9 {
			t.Errorf("dims=%d quantized dot %v vs %v exceeds bound %v", dims, got, want, bound)
		}
	}
}

func TestQuantizeRowIntoEdgeCases(t *testing.T) {
	dst := make([]int8, 4)
	if s := QuantizeRowInto([]float32{0, 0, 0, 0}, dst); s != 0 {
		t.Fatalf("all-zero row scale = %v, want 0", s)
	}
	for i, q := range dst {
		if q != 0 {
			t.Fatalf("all-zero row code[%d] = %d, want 0", i, q)
		}
	}
	inf := float32(math.Inf(1))
	if s := QuantizeRowInto([]float32{1, inf, -2, 3}, dst); s != 0 {
		t.Fatalf("non-finite row scale = %v, want 0", s)
	}
	// Max-magnitude element quantizes to exactly ±127.
	s := QuantizeRowInto([]float32{-4, 2, 4, 1}, dst)
	if s != 4.0/127 {
		t.Fatalf("scale = %v, want %v", s, 4.0/127)
	}
	if dst[0] != -127 || dst[2] != 127 {
		t.Fatalf("max-magnitude codes = %d/%d, want -127/127", dst[0], dst[2])
	}
}

// TestKernelSpeedupGate is the CI kernel regression gate (ISSUE 7 satellite
// 5): Dot32x8 must beat the scalar float64 baseline by ≥2x on the serving
// factor width. Skipped under -race (instrumentation distorts the ratio)
// and -short.
func TestKernelSpeedupGate(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("kernel ratio gate is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping kernel ratio gate in -short mode")
	}
	const dims = 40 // RSVD's serving factor count
	rng := rand.New(rand.NewSource(11))
	a64 := randRow64(rng, dims)
	b64 := randRow64(rng, dims)
	a, b := to32(a64), to32(b64)

	var sink64 float64
	base := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			sink64 += Dot64(a64, b64)
		}
	})
	var sink32 float32
	fast := testing.Benchmark(func(bb *testing.B) {
		for i := 0; i < bb.N; i++ {
			sink32 += Dot32x8(a, b)
		}
	})
	if sink64 == 0 && sink32 == 0 {
		t.Log("sinks both zero (keeps the loops live)")
	}
	ratio := float64(base.NsPerOp()) / float64(fast.NsPerOp())
	t.Logf("Dot64 %d ns/op, Dot32x8 %d ns/op, speedup %.2fx", base.NsPerOp(), fast.NsPerOp(), ratio)
	if ratio < 2.0 {
		t.Fatalf("Dot32x8 speedup %.2fx over scalar float64, want ≥2x", ratio)
	}
}

func BenchmarkDotKernels(b *testing.B) {
	for _, dims := range []int{16, 40, 100} {
		rng := rand.New(rand.NewSource(13))
		a64 := randRow64(rng, dims)
		b64 := randRow64(rng, dims)
		a32, b32 := to32(a64), to32(b64)
		qa := Quantize(BlockFromData(1, dims, a32))
		qb := Quantize(BlockFromData(1, dims, b32))
		b.Run(fmt.Sprintf("Dot64/dims=%d", dims), func(b *testing.B) {
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot64(a64, b64)
			}
			_ = s
		})
		b.Run(fmt.Sprintf("Dot32/dims=%d", dims), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot32(a32, b32)
			}
			_ = s
		})
		b.Run(fmt.Sprintf("Dot32x4/dims=%d", dims), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot32x4(a32, b32)
			}
			_ = s
		})
		b.Run(fmt.Sprintf("Dot32x8/dims=%d", dims), func(b *testing.B) {
			var s float32
			for i := 0; i < b.N; i++ {
				s += Dot32x8(a32, b32)
			}
			_ = s
		})
		b.Run(fmt.Sprintf("DotQ8/dims=%d", dims), func(b *testing.B) {
			var s int32
			for i := 0; i < b.N; i++ {
				s += DotQ8(qa.Row(0), qb.Row(0))
			}
			_ = s
		})
	}
}
