package linalg

import "fmt"

// FactorPair holds one latent-factor model's (user, item) matrices in the
// reduced-precision layouts, built lazily from the float64 training rows.
// Models embed one and call the Ensure methods from SetPrecision; blocks
// already populated (e.g. decoded straight from a snapshot's f32 section)
// are kept as-is, so loading never round-trips through float64.
//
// The Ensure methods are not safe for concurrent use with each other or
// with scoring — precision is fixed at pipeline assembly or snapshot load,
// before a model starts serving.
type FactorPair struct {
	UserB, ItemB Block
	UserQ, ItemQ QuantizedBlock
}

// EnsureF32 builds the float32 blocks from the float64 rows if absent.
func (p *FactorPair) EnsureF32(userF, itemF [][]float64) {
	if p.UserB.Rows() == 0 && len(userF) > 0 {
		p.UserB = BlockFrom64(userF)
	}
	if p.ItemB.Rows() == 0 && len(itemF) > 0 {
		p.ItemB = BlockFrom64(itemF)
	}
}

// EnsureInt8 builds the int8 quantized blocks if absent (first ensuring the
// float32 blocks they derive from).
func (p *FactorPair) EnsureInt8(userF, itemF [][]float64) {
	p.EnsureF32(userF, itemF)
	if p.UserQ.Rows() == 0 && p.UserB.Rows() > 0 {
		p.UserQ = Quantize(p.UserB)
	}
	if p.ItemQ.Rows() == 0 && p.ItemB.Rows() > 0 {
		p.ItemQ = Quantize(p.ItemB)
	}
}

// FactorSection is the flat, gob-friendly form of a FactorPair's float32
// blocks — the versioned model snapshots' "f32 factor section" (DESIGN.md
// §12). Only the float32 blocks are persisted: the int8 codes derive
// deterministically from them and are cheap to re-quantize at load time.
type FactorSection struct {
	Dims int
	User []float32
	Item []float32
}

// F32Section returns the pair's float32 blocks in snapshot form, or nil when
// no blocks were built (the float64-only default tier).
func (p *FactorPair) F32Section() *FactorSection {
	if p.UserB.Rows() == 0 || p.ItemB.Rows() == 0 {
		return nil
	}
	return &FactorSection{Dims: p.UserB.Dims(), User: p.UserB.Data(), Item: p.ItemB.Data()}
}

// RestoreF32Section installs a decoded snapshot section as the pair's
// float32 blocks, validating the flat lengths against the expected row
// counts. A nil or empty section is a no-op (snapshots from before the
// tiered path, or models saved at the float64 tier).
func (p *FactorPair) RestoreF32Section(s *FactorSection, userRows, itemRows int) error {
	if s == nil || (s.Dims == 0 && len(s.User) == 0 && len(s.Item) == 0) {
		return nil
	}
	if s.Dims <= 0 || len(s.User) != userRows*s.Dims || len(s.Item) != itemRows*s.Dims {
		return fmt.Errorf("linalg: f32 factor section (%d user + %d item values at dim %d) does not cover %d user and %d item rows",
			len(s.User), len(s.Item), s.Dims, userRows, itemRows)
	}
	p.UserB = BlockFromData(userRows, s.Dims, s.User)
	p.ItemB = BlockFromData(itemRows, s.Dims, s.Item)
	return nil
}
