package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDensePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(0, 3) did not panic")
		}
	}()
	NewDense(0, 3)
}

func TestDenseAtSetRoundTrip(t *testing.T) {
	m := NewDense(3, 4)
	m.Set(1, 2, 7.5)
	m.Set(2, 3, -1.25)
	if m.At(1, 2) != 7.5 || m.At(2, 3) != -1.25 {
		t.Fatalf("At/Set round trip failed: %v %v", m.At(1, 2), m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("unset element not zero")
	}
}

func TestNewDenseFromAndRowColAccess(t *testing.T) {
	m := NewDenseFrom([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	row := m.Row(1)
	if row[0] != 4 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	col := m.Col(2)
	if col[0] != 3 || col[1] != 6 {
		t.Fatalf("Col(2) = %v", col)
	}
	// Row returns a live view.
	row[0] = 40
	if m.At(1, 0) != 40 {
		t.Fatal("Row did not return a mutable view")
	}
}

func TestNewDenseFromPanicsOnRaggedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged input did not panic")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestSetColAndClone(t *testing.T) {
	m := NewDense(3, 2)
	m.SetCol(1, []float64{1, 2, 3})
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if c.At(2, 1) != 3 {
		t.Fatal("Clone did not copy values")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom([][]float64{
		{1, 2, 3},
		{4, 5, 6},
	})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T shape %dx%d", mt.Rows(), mt.Cols())
	}
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.At(r, c) != mt.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestMulAgainstKnownProduct(t *testing.T) {
	a := NewDenseFrom([][]float64{
		{1, 2},
		{3, 4},
	})
	b := NewDenseFrom([][]float64{
		{5, 6},
		{7, 8},
	})
	got := Mul(a, b)
	want := NewDenseFrom([][]float64{
		{19, 22},
		{43, 50},
	})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Mul = %+v", got)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVecAndTMulVecAgree(t *testing.T) {
	m := NewDenseFrom([][]float64{
		{1, 0, 2},
		{-1, 3, 1},
	})
	v := []float64{2, 1, 0}
	got := m.MulVec(v)
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("MulVec = %v", got)
	}
	u := []float64{1, 2}
	gotT := m.TMulVec(u)
	wantT := m.T().MulVec(u)
	for i := range gotT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-12 {
			t.Fatalf("TMulVec disagrees with T().MulVec: %v vs %v", gotT, wantT)
		}
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// Property: (A·B)·v == A·(B·v) for random small matrices.
	f := func(seedVals [9]float64, vecVals [3]float64) bool {
		a := NewDense(3, 3)
		b := NewDense(3, 3)
		for i := 0; i < 9; i++ {
			// Keep values bounded to avoid overflow noise in the comparison.
			val := math.Mod(seedVals[i], 10)
			a.Set(i/3, i%3, val)
			b.Set(i%3, i/3, -val/2+1)
		}
		v := []float64{math.Mod(vecVals[0], 5), math.Mod(vecVals[1], 5), math.Mod(vecVals[2], 5)}
		left := Mul(a, b).MulVec(v)
		right := a.MulVec(b.MulVec(v))
		for i := range left {
			if math.Abs(left[i]-right[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFillScaleFrobenius(t *testing.T) {
	m := NewDense(2, 2)
	m.Fill(3)
	m.Scale(2)
	if m.At(1, 1) != 6 {
		t.Fatalf("Fill+Scale gave %v", m.At(1, 1))
	}
	if math.Abs(m.FrobeniusNorm()-12) > 1e-12 { // sqrt(4*36) = 12
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestAXPYAndScaleVector(t *testing.T) {
	y := []float64{1, 1, 1}
	AXPY(2, []float64{1, 2, 3}, y)
	if y[0] != 3 || y[1] != 5 || y[2] != 7 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(y, 0.5)
	if y[2] != 3.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestStatsHelpers(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(v) != 5 {
		t.Fatalf("Mean = %v", Mean(v))
	}
	if math.Abs(Variance(v)-4) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(v))
	}
	if math.Abs(StdDev(v)-2) > 1e-12 {
		t.Fatalf("StdDev = %v", StdDev(v))
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate stats not zero")
	}
}

func TestMinMaxAndNormalize01(t *testing.T) {
	v := []float64{3, -1, 7, 0}
	min, max := MinMax(v)
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v, %v", min, max)
	}
	Normalize01(v)
	if v[1] != 0 || v[2] != 1 {
		t.Fatalf("Normalize01 = %v", v)
	}
	for _, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("Normalize01 out of range: %v", v)
		}
	}
	constant := []float64{5, 5, 5}
	Normalize01(constant)
	for _, x := range constant {
		if x != 0 {
			t.Fatalf("constant vector should normalize to zeros, got %v", constant)
		}
	}
}

func TestNormalize01Property(t *testing.T) {
	// Property: output is always within [0,1] and preserves the ordering of
	// the input values.
	f := func(in []float64) bool {
		if len(in) < 2 {
			return true
		}
		v := make([]float64, len(in))
		for i, x := range in {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 1e6)
		}
		orig := make([]float64, len(v))
		copy(orig, v)
		Normalize01(v)
		for i := range v {
			if v[i] < 0 || v[i] > 1 {
				return false
			}
			for j := range v {
				if orig[i] < orig[j] && v[i] > v[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

func TestEqualShapesAndTolerance(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 3)
	if Equal(a, b, 1) {
		t.Fatal("matrices of different shapes reported equal")
	}
	c := NewDense(2, 2)
	c.Set(0, 0, 1e-9)
	if !Equal(a, c, 1e-6) {
		t.Fatal("within-tolerance difference reported unequal")
	}
	if Equal(a, c, 1e-12) {
		t.Fatal("out-of-tolerance difference reported equal")
	}
}
