package mat

import "math"

// Dot returns the inner product of a and b. Panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mat: Dot length mismatch")
	}
	sum := 0.0
	for i, av := range a {
		sum += av * b[i]
	}
	return sum
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Scale multiplies every element of v by s in place and returns v.
func Scale(v []float64, s float64) []float64 {
	for i := range v {
		v[i] *= s
	}
	return v
}

// AXPY computes y ← y + alpha·x in place and returns y.
func AXPY(alpha float64, x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("mat: AXPY length mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
	return y
}

// Sum returns the sum of elements of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Variance returns the population variance of v, or 0 for fewer than two
// elements.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// MinMax returns the minimum and maximum of v. Panics on an empty slice.
func MinMax(v []float64) (min, max float64) {
	if len(v) == 0 {
		panic("mat: MinMax of empty slice")
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Normalize01 rescales v in place to the [0,1] interval using min-max
// normalization (the paper's x_i = (x_i − min x)/(max x − min x)). If all
// values are equal the vector is set to all zeros, matching the convention
// that a constant signal carries no ordering information. Returns v.
func Normalize01(v []float64) []float64 {
	if len(v) == 0 {
		return v
	}
	min, max := MinMax(v)
	span := max - min
	if span == 0 {
		for i := range v {
			v[i] = 0
		}
		return v
	}
	for i := range v {
		v[i] = (v[i] - min) / span
	}
	return v
}

// Clamp returns x restricted to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
