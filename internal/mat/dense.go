// Package mat provides the small dense linear-algebra substrate the rest of
// the library is built on: row-major dense matrices, vectors, and the handful
// of BLAS-level operations (matrix products, norms, orthonormalization
// helpers) that the SVD and matrix-factorization packages need.
//
// The implementation deliberately favours clarity and predictable memory
// layout over micro-optimized kernels; the matrices involved in the paper's
// experiments are at most a few thousand rows by a few hundred columns of
// latent factors, well within reach of straightforward loops.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix. It panics on non-positive
// dimensions because a zero-sized matrix is always a programming error in
// this library.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFrom builds a matrix from a slice of row slices. All rows must have
// equal length.
func NewDenseFrom(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: NewDenseFrom requires non-empty data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for r, row := range rows {
		if len(row) != m.cols {
			panic(fmt.Sprintf("mat: ragged row %d: len %d want %d", r, len(row), m.cols))
		}
		copy(m.data[r*m.cols:(r+1)*m.cols], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row r, column c.
func (m *Dense) At(r, c int) float64 { return m.data[r*m.cols+c] }

// Set assigns the element at row r, column c.
func (m *Dense) Set(r, c int, v float64) { m.data[r*m.cols+c] = v }

// Row returns a mutable view of row r. Writing through the returned slice
// writes into the matrix.
func (m *Dense) Row(r int) []float64 { return m.data[r*m.cols : (r+1)*m.cols] }

// Col copies column c into a new slice.
func (m *Dense) Col(c int) []float64 {
	out := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = m.data[r*m.cols+c]
	}
	return out
}

// SetCol overwrites column c with v (len(v) must equal Rows()).
func (m *Dense) SetCol(c int, v []float64) {
	if len(v) != m.rows {
		panic("mat: SetCol length mismatch")
	}
	for r := 0; r < m.rows; r++ {
		m.data[r*m.cols+c] = v[r]
	}
}

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for r := 0; r < m.rows; r++ {
		base := r * m.cols
		for c := 0; c < m.cols; c++ {
			out.data[c*out.cols+r] = m.data[base+c]
		}
	}
	return out
}

// Mul returns the matrix product a·b. Panics on incompatible shapes.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic("mat: MulVec length mismatch")
	}
	out := make([]float64, m.rows)
	for r := 0; r < m.rows; r++ {
		out[r] = Dot(m.Row(r), v)
	}
	return out
}

// TMulVec returns the product of the transpose with v, i.e. mᵀ·v, without
// materializing the transpose.
func (m *Dense) TMulVec(v []float64) []float64 {
	if len(v) != m.rows {
		panic("mat: TMulVec length mismatch")
	}
	out := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		vr := v[r]
		if vr == 0 {
			continue
		}
		row := m.Row(r)
		for c, mv := range row {
			out[c] += mv * vr
		}
	}
	return out
}

// Equal reports whether a and b have identical shape and all elements agree
// within tolerance tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// FrobeniusNorm returns the Frobenius norm of the matrix.
func (m *Dense) FrobeniusNorm() float64 {
	sum := 0.0
	for _, v := range m.data {
		sum += v * v
	}
	return math.Sqrt(sum)
}
