// Package knn implements an item-based nearest-neighbour collaborative
// filtering recommender (Sarwar et al., WWW 2001), the classical
// memory-based model the paper's related-work section contrasts with latent
// factor methods. It is not one of the paper's evaluated baselines, but it is
// a useful additional accuracy recommender for GANC in small or medium
// datasets, and it exercises a different region of the accuracy/novelty
// trade-off than the matrix-factorization models (neighbourhood models skew
// even harder toward popular items).
//
// The model precomputes, for every item, its top-K most similar items under
// adjusted-cosine similarity (ratings centred per user), and scores an unseen
// item for a user by the similarity-weighted average of the user's ratings on
// the neighbouring items.
package knn

import (
	"fmt"
	"math"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Config holds the hyper-parameters of the item-KNN model.
type Config struct {
	// Neighbors K is the number of similar items kept per item.
	Neighbors int
	// MinOverlap is the minimum number of co-rating users required before a
	// similarity is trusted; pairs below it are discarded.
	MinOverlap int
	// Shrinkage dampens similarities computed from few co-ratings:
	// sim ← sim · overlap / (overlap + Shrinkage). Zero disables it.
	Shrinkage float64
}

// DefaultConfig returns a standard configuration (K=50, overlap ≥ 2,
// shrinkage 10).
func DefaultConfig() Config {
	return Config{Neighbors: 50, MinOverlap: 2, Shrinkage: 10}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Neighbors <= 0:
		return fmt.Errorf("knn: Neighbors must be positive, got %d", c.Neighbors)
	case c.MinOverlap < 1:
		return fmt.Errorf("knn: MinOverlap must be ≥ 1, got %d", c.MinOverlap)
	case c.Shrinkage < 0:
		return fmt.Errorf("knn: Shrinkage must be non-negative, got %v", c.Shrinkage)
	}
	return nil
}

// neighbor is one entry of an item's similarity list.
type neighbor struct {
	item types.ItemID
	sim  float64
}

// ItemKNN is a trained item-based nearest-neighbour model.
type ItemKNN struct {
	cfg       Config
	train     *dataset.Dataset
	neighbors [][]neighbor // per item, sorted by descending similarity
	userMean  []float64
	global    float64
}

// Train builds the item-item similarity lists from the train set.
func Train(train *dataset.Dataset, cfg Config) (*ItemKNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.NumRatings() == 0 {
		return nil, fmt.Errorf("knn: cannot train on an empty dataset")
	}
	m := &ItemKNN{
		cfg:       cfg,
		train:     train,
		neighbors: make([][]neighbor, train.NumItems()),
		userMean:  make([]float64, train.NumUsers()),
		global:    train.MeanRating(),
	}
	for u := 0; u < train.NumUsers(); u++ {
		idxs := train.UserRatings(types.UserID(u))
		if len(idxs) == 0 {
			m.userMean[u] = m.global
			continue
		}
		s := 0.0
		for _, idx := range idxs {
			s += train.Rating(idx).Value
		}
		m.userMean[u] = s / float64(len(idxs))
	}
	m.buildSimilarities()
	return m, nil
}

// buildSimilarities computes adjusted-cosine similarities between all item
// pairs that share at least MinOverlap users, keeping the top-K per item.
// The accumulation walks users (not item pairs), so the cost is
// O(Σ_u |I_u|²), which is what makes item-KNN practical on CF data.
func (m *ItemKNN) buildSimilarities() {
	numItems := m.train.NumItems()
	type acc struct {
		dot     float64
		normA   float64
		normB   float64
		overlap int
	}
	// Pair accumulators keyed by (smaller item, larger item).
	pairs := make(map[[2]int32]*acc)
	for u := 0; u < m.train.NumUsers(); u++ {
		uid := types.UserID(u)
		idxs := m.train.UserRatings(uid)
		mean := m.userMean[u]
		for a := 0; a < len(idxs); a++ {
			ra := m.train.Rating(idxs[a])
			da := ra.Value - mean
			for b := a + 1; b < len(idxs); b++ {
				rb := m.train.Rating(idxs[b])
				db := rb.Value - mean
				i, j := int32(ra.Item), int32(rb.Item)
				di, dj := da, db
				if i > j {
					i, j = j, i
					di, dj = dj, di
				}
				key := [2]int32{i, j}
				p, ok := pairs[key]
				if !ok {
					p = &acc{}
					pairs[key] = p
				}
				p.dot += di * dj
				p.normA += di * di
				p.normB += dj * dj
				p.overlap++
			}
		}
	}
	lists := make([][]neighbor, numItems)
	for key, p := range pairs {
		if p.overlap < m.cfg.MinOverlap {
			continue
		}
		denom := math.Sqrt(p.normA) * math.Sqrt(p.normB)
		if denom == 0 {
			continue
		}
		sim := p.dot / denom
		if m.cfg.Shrinkage > 0 {
			sim *= float64(p.overlap) / (float64(p.overlap) + m.cfg.Shrinkage)
		}
		if sim <= 0 {
			continue // negative/zero similarities carry little signal for top-N
		}
		i, j := types.ItemID(key[0]), types.ItemID(key[1])
		lists[i] = append(lists[i], neighbor{item: j, sim: sim})
		lists[j] = append(lists[j], neighbor{item: i, sim: sim})
	}
	for i := range lists {
		sort.Slice(lists[i], func(a, b int) bool {
			if lists[i][a].sim != lists[i][b].sim {
				return lists[i][a].sim > lists[i][b].sim
			}
			return lists[i][a].item < lists[i][b].item
		})
		if len(lists[i]) > m.cfg.Neighbors {
			lists[i] = lists[i][:m.cfg.Neighbors]
		}
	}
	m.neighbors = lists
}

// Score implements recommender.Scorer: the similarity-weighted average of the
// user's ratings on item i's neighbours, centred on the user's mean. Items
// with no overlapping neighbours fall back to the user's mean rating.
func (m *ItemKNN) Score(u types.UserID, i types.ItemID) float64 {
	// Bound by the trained per-user means, not the attached dataset: a
	// rebound model may score a dataset that has grown new users since
	// training, and those fall back to the global mean.
	if int(u) < 0 || int(u) >= len(m.userMean) || int(i) < 0 || int(i) >= len(m.neighbors) {
		return m.global
	}
	mean := m.userMean[u]
	num, den := 0.0, 0.0
	for _, nb := range m.neighbors[i] {
		if v, ok := m.train.UserRating(u, nb.item); ok {
			num += nb.sim * (v - mean)
			den += nb.sim
		}
	}
	if den == 0 {
		return mean
	}
	return mean + num/den
}

// ScoreUser implements recommender.BulkScorer. The user's ratings are indexed
// once into a map, so each neighbour lookup is O(1) instead of the O(|I_u|)
// profile scan the pointwise Score pays per neighbour.
func (m *ItemKNN) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	if int(u) < 0 || int(u) >= len(m.userMean) {
		for k := range items {
			out[k] = m.global
		}
		return
	}
	mean := m.userMean[u]
	ratings := make(map[types.ItemID]float64, len(m.train.UserRatings(u)))
	for _, idx := range m.train.UserRatings(u) {
		r := m.train.Rating(idx)
		// Keep the first value per item, matching Dataset.UserRating's scan.
		if _, ok := ratings[r.Item]; !ok {
			ratings[r.Item] = r.Value
		}
	}
	for k, i := range items {
		if int(i) < 0 || int(i) >= len(m.neighbors) {
			out[k] = m.global
			continue
		}
		num, den := 0.0, 0.0
		for _, nb := range m.neighbors[i] {
			if v, ok := ratings[nb.item]; ok {
				num += nb.sim * (v - mean)
				den += nb.sim
			}
		}
		if den == 0 {
			out[k] = mean
			continue
		}
		out[k] = mean + num/den
	}
}

// Name implements recommender.Scorer.
func (m *ItemKNN) Name() string { return fmt.Sprintf("ItemKNN%d", m.cfg.Neighbors) }

// Neighbors returns the similarity list of item i (item, similarity pairs in
// descending similarity). Intended for inspection and tests.
func (m *ItemKNN) Neighbors(i types.ItemID) []types.ScoredItem {
	if int(i) < 0 || int(i) >= len(m.neighbors) {
		return nil
	}
	out := make([]types.ScoredItem, len(m.neighbors[i]))
	for k, nb := range m.neighbors[i] {
		out[k] = types.ScoredItem{Item: nb.item, Score: nb.sim}
	}
	return out
}
