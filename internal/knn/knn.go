// Package knn implements an item-based nearest-neighbour collaborative
// filtering recommender (Sarwar et al., WWW 2001), the classical
// memory-based model the paper's related-work section contrasts with latent
// factor methods. It is not one of the paper's evaluated baselines, but it is
// a useful additional accuracy recommender for GANC in small or medium
// datasets, and it exercises a different region of the accuracy/novelty
// trade-off than the matrix-factorization models (neighbourhood models skew
// even harder toward popular items).
//
// The model precomputes, for every item, its top-K most similar items under
// adjusted-cosine similarity (ratings centred per user), and scores an unseen
// item for a user by the similarity-weighted average of the user's ratings on
// the neighbouring items.
package knn

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Config holds the hyper-parameters of the item-KNN model.
type Config struct {
	// Neighbors K is the number of similar items kept per item.
	Neighbors int
	// MinOverlap is the minimum number of co-rating users required before a
	// similarity is trusted; pairs below it are discarded.
	MinOverlap int
	// Shrinkage dampens similarities computed from few co-ratings:
	// sim ← sim · overlap / (overlap + Shrinkage). Zero disables it.
	Shrinkage float64
}

// DefaultConfig returns a standard configuration (K=50, overlap ≥ 2,
// shrinkage 10).
func DefaultConfig() Config {
	return Config{Neighbors: 50, MinOverlap: 2, Shrinkage: 10}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Neighbors <= 0:
		return fmt.Errorf("knn: Neighbors must be positive, got %d", c.Neighbors)
	case c.MinOverlap < 1:
		return fmt.Errorf("knn: MinOverlap must be ≥ 1, got %d", c.MinOverlap)
	case c.Shrinkage < 0:
		return fmt.Errorf("knn: Shrinkage must be non-negative, got %v", c.Shrinkage)
	}
	return nil
}

// neighbor is one entry of an item's similarity list (used only while
// building; the trained model stores the lists in CSR columns).
type neighbor struct {
	item types.ItemID
	sim  float64
}

// ItemKNN is a trained item-based nearest-neighbour model.
type ItemKNN struct {
	cfg   Config
	train *dataset.Dataset
	// The similarity matrix lives in CSR block layout: the neighbours of
	// item i are nbItems[nbOff[i]:nbOff[i+1]] with similarities in the
	// parallel nbSims, each list sorted by descending similarity. Three flat
	// slices walk contiguously in the scoring loop instead of chasing one
	// slice header per item.
	nbOff    []int32 // len numItems+1
	nbItems  []types.ItemID
	nbSims   []float64
	userMean []float64
	global   float64
	// arenas pools the dense per-call rating arenas ScoreUser fills (one
	// value + epoch-mark pair per trained item). A pointer so Rebind's
	// struct copy shares the pool instead of copying a sync.Pool by value.
	arenas *sync.Pool
}

// numItems returns the trained catalog size (neighbour lists never
// reference an item at or beyond it).
func (m *ItemKNN) numItems() int { return len(m.nbOff) - 1 }

// scoreArena is the dense rating-lookup scratch of one ScoreUser call:
// val[i] holds the user's rating of item i when mark[i] equals the current
// epoch. Bumping the epoch invalidates the whole arena in O(1); marks are
// zeroed only when the epoch counter wraps.
type scoreArena struct {
	val   []float64
	mark  []uint32
	epoch uint32
}

func newArenaPool() *sync.Pool {
	return &sync.Pool{New: func() interface{} { return new(scoreArena) }}
}

func (a *scoreArena) reset(n int) {
	if len(a.val) < n {
		a.val = make([]float64, n)
		a.mark = make([]uint32, n)
		a.epoch = 0
	}
	a.epoch++
	if a.epoch == 0 { // wrapped: stale marks could collide, clear them
		for i := range a.mark {
			a.mark[i] = 0
		}
		a.epoch = 1
	}
}

// Train builds the item-item similarity lists from the train set.
func Train(train *dataset.Dataset, cfg Config) (*ItemKNN, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.NumRatings() == 0 {
		return nil, fmt.Errorf("knn: cannot train on an empty dataset")
	}
	m := &ItemKNN{
		cfg:      cfg,
		train:    train,
		userMean: make([]float64, train.NumUsers()),
		global:   train.MeanRating(),
		arenas:   newArenaPool(),
	}
	for u := 0; u < train.NumUsers(); u++ {
		idxs := train.UserRatings(types.UserID(u))
		if len(idxs) == 0 {
			m.userMean[u] = m.global
			continue
		}
		s := 0.0
		for _, idx := range idxs {
			s += train.Rating(idx).Value
		}
		m.userMean[u] = s / float64(len(idxs))
	}
	m.buildSimilarities()
	return m, nil
}

// buildSimilarities computes adjusted-cosine similarities between all item
// pairs that share at least MinOverlap users, keeping the top-K per item.
// The accumulation walks users (not item pairs), so the cost is
// O(Σ_u |I_u|²), which is what makes item-KNN practical on CF data.
func (m *ItemKNN) buildSimilarities() {
	numItems := m.train.NumItems()
	type acc struct {
		dot     float64
		normA   float64
		normB   float64
		overlap int
	}
	// Pair accumulators keyed by (smaller item, larger item).
	pairs := make(map[[2]int32]*acc)
	for u := 0; u < m.train.NumUsers(); u++ {
		uid := types.UserID(u)
		idxs := m.train.UserRatings(uid)
		mean := m.userMean[u]
		for a := 0; a < len(idxs); a++ {
			ra := m.train.Rating(idxs[a])
			da := ra.Value - mean
			for b := a + 1; b < len(idxs); b++ {
				rb := m.train.Rating(idxs[b])
				db := rb.Value - mean
				i, j := int32(ra.Item), int32(rb.Item)
				di, dj := da, db
				if i > j {
					i, j = j, i
					di, dj = dj, di
				}
				key := [2]int32{i, j}
				p, ok := pairs[key]
				if !ok {
					p = &acc{}
					pairs[key] = p
				}
				p.dot += di * dj
				p.normA += di * di
				p.normB += dj * dj
				p.overlap++
			}
		}
	}
	lists := make([][]neighbor, numItems)
	for key, p := range pairs {
		if p.overlap < m.cfg.MinOverlap {
			continue
		}
		denom := math.Sqrt(p.normA) * math.Sqrt(p.normB)
		if denom == 0 {
			continue
		}
		sim := p.dot / denom
		if m.cfg.Shrinkage > 0 {
			sim *= float64(p.overlap) / (float64(p.overlap) + m.cfg.Shrinkage)
		}
		if sim <= 0 {
			continue // negative/zero similarities carry little signal for top-N
		}
		i, j := types.ItemID(key[0]), types.ItemID(key[1])
		lists[i] = append(lists[i], neighbor{item: j, sim: sim})
		lists[j] = append(lists[j], neighbor{item: i, sim: sim})
	}
	for i := range lists {
		sort.Slice(lists[i], func(a, b int) bool {
			if lists[i][a].sim != lists[i][b].sim {
				return lists[i][a].sim > lists[i][b].sim
			}
			return lists[i][a].item < lists[i][b].item
		})
		if len(lists[i]) > m.cfg.Neighbors {
			lists[i] = lists[i][:m.cfg.Neighbors]
		}
	}
	m.setNeighborLists(lists)
}

// setNeighborLists packs per-item neighbour lists into the CSR columns.
func (m *ItemKNN) setNeighborLists(lists [][]neighbor) {
	total := 0
	for _, nbs := range lists {
		total += len(nbs)
	}
	m.nbOff = make([]int32, len(lists)+1)
	m.nbItems = make([]types.ItemID, 0, total)
	m.nbSims = make([]float64, 0, total)
	for i, nbs := range lists {
		m.nbOff[i] = int32(len(m.nbItems))
		for _, nb := range nbs {
			m.nbItems = append(m.nbItems, nb.item)
			m.nbSims = append(m.nbSims, nb.sim)
		}
	}
	m.nbOff[len(lists)] = int32(len(m.nbItems))
}

// Score implements recommender.Scorer: the similarity-weighted average of the
// user's ratings on item i's neighbours, centred on the user's mean. Items
// with no overlapping neighbours fall back to the user's mean rating.
func (m *ItemKNN) Score(u types.UserID, i types.ItemID) float64 {
	// Bound by the trained per-user means, not the attached dataset: a
	// rebound model may score a dataset that has grown new users since
	// training, and those fall back to the global mean.
	if int(u) < 0 || int(u) >= len(m.userMean) || int(i) < 0 || int(i) >= m.numItems() {
		return m.global
	}
	mean := m.userMean[u]
	num, den := 0.0, 0.0
	lo, hi := m.nbOff[i], m.nbOff[i+1]
	for t := lo; t < hi; t++ {
		if v, ok := m.train.UserRating(u, m.nbItems[t]); ok {
			num += m.nbSims[t] * (v - mean)
			den += m.nbSims[t]
		}
	}
	if den == 0 {
		return mean
	}
	return mean + num/den
}

// ScoreUser implements recommender.BulkScorer. The user's ratings are
// scattered once into a pooled dense arena (value + epoch mark per trained
// item), so each neighbour lookup is one array read instead of the map
// probe the previous layout paid — and the neighbour walk itself streams
// the contiguous CSR columns. The accumulation visits neighbours in the
// same order with the same arithmetic as the map version did, so scores
// stay bit-identical to pointwise Score.
func (m *ItemKNN) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	if int(u) < 0 || int(u) >= len(m.userMean) {
		for k := range items {
			out[k] = m.global
		}
		return
	}
	mean := m.userMean[u]
	numItems := m.numItems()
	ar := m.arenas.Get().(*scoreArena)
	ar.reset(numItems)
	epoch := ar.epoch
	for _, idx := range m.train.UserRatings(u) {
		r := m.train.Rating(idx)
		// Neighbour lists never reference items beyond the trained catalog,
		// so later profile items (a rebound, extended dataset) are skipped.
		// Keep the first value per item, matching Dataset.UserRating's scan.
		if int(r.Item) < numItems && ar.mark[r.Item] != epoch {
			ar.mark[r.Item] = epoch
			ar.val[r.Item] = r.Value
		}
	}
	for k, i := range items {
		if int(i) < 0 || int(i) >= numItems {
			out[k] = m.global
			continue
		}
		num, den := 0.0, 0.0
		lo, hi := m.nbOff[i], m.nbOff[i+1]
		nbs := m.nbItems[lo:hi]
		sims := m.nbSims[lo:hi]
		for t, nb := range nbs {
			if ar.mark[nb] == epoch {
				num += sims[t] * (ar.val[nb] - mean)
				den += sims[t]
			}
		}
		if den == 0 {
			out[k] = mean
			continue
		}
		out[k] = mean + num/den
	}
	m.arenas.Put(ar)
}

// Name implements recommender.Scorer.
func (m *ItemKNN) Name() string { return fmt.Sprintf("ItemKNN%d", m.cfg.Neighbors) }

// Neighbors returns the similarity list of item i (item, similarity pairs in
// descending similarity). Intended for inspection and tests.
func (m *ItemKNN) Neighbors(i types.ItemID) []types.ScoredItem {
	if int(i) < 0 || int(i) >= m.numItems() {
		return nil
	}
	lo, hi := m.nbOff[i], m.nbOff[i+1]
	out := make([]types.ScoredItem, hi-lo)
	for t := lo; t < hi; t++ {
		out[t-lo] = types.ScoredItem{Item: m.nbItems[t], Score: m.nbSims[t]}
	}
	return out
}
