package knn

import (
	"encoding/gob"
	"fmt"
	"io"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Model persistence: the expensive part of an ItemKNN model is the item-item
// similarity search, so snapshots store the pruned neighbour lists (plus the
// per-user means) and reattach the train set at load time — the dataset is
// persisted once, at the snapshot container level, not per model.

// knnSnapshotVersion guards the gob payload layout.
const knnSnapshotVersion = 1

// knnSnapshot is the gob-encoded form of an ItemKNN model. Neighbour lists
// are flattened into parallel columns with per-item offsets so the payload is
// three flat slices instead of a million tiny ones.
type knnSnapshot struct {
	Version  int
	Config   Config
	Offsets  []int // len NumItems+1; neighbours of item i live in [Offsets[i], Offsets[i+1])
	NbItems  []types.ItemID
	NbSims   []float64
	UserMean []float64
	Global   float64
}

// Save writes the model to w in its versioned gob form. The in-memory CSR
// columns already match the snapshot layout, so encoding is a straight copy
// (only the offset table widens from int32 to the format's int).
func (m *ItemKNN) Save(w io.Writer) error {
	snap := knnSnapshot{
		Version:  knnSnapshotVersion,
		Config:   m.cfg,
		Offsets:  make([]int, len(m.nbOff)),
		NbItems:  m.nbItems,
		NbSims:   m.nbSims,
		UserMean: m.userMean,
		Global:   m.global,
	}
	for i, off := range m.nbOff {
		snap.Offsets[i] = int(off)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("knn: save ItemKNN: %w", err)
	}
	return nil
}

// Rebind returns a copy of the model scoring against a different train set
// (typically an incrementally extended one): the frozen similarity lists are
// shared, while the user profiles consulted at scoring time come from the new
// dataset. The per-user means are carried over for users the model was
// trained on and fall back to the global mean for users beyond that range
// (Score and ScoreUser already treat missing means that way via bounds
// checks).
func (m *ItemKNN) Rebind(train *dataset.Dataset) *ItemKNN {
	out := *m
	out.train = train
	return &out
}

// Load reads a model previously written by Save and reattaches it to train
// (the dataset the model scores against; scoring needs the user profiles, not
// just the similarity lists).
func Load(r io.Reader, train *dataset.Dataset) (*ItemKNN, error) {
	if train == nil {
		return nil, fmt.Errorf("knn: load ItemKNN: a train dataset is required")
	}
	var snap knnSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("knn: load ItemKNN: %w", err)
	}
	if snap.Version != knnSnapshotVersion {
		return nil, fmt.Errorf("knn: load ItemKNN: unsupported snapshot version %d (this build reads version %d)",
			snap.Version, knnSnapshotVersion)
	}
	if len(snap.Offsets) == 0 || len(snap.NbItems) != len(snap.NbSims) {
		return nil, fmt.Errorf("knn: load ItemKNN: corrupt neighbour columns")
	}
	numItems := len(snap.Offsets) - 1
	nbOff := make([]int32, len(snap.Offsets))
	for i, off := range snap.Offsets {
		lo := off
		var hi int
		if i < numItems {
			hi = snap.Offsets[i+1]
		} else {
			hi = off
		}
		if lo < 0 || hi < lo || hi > len(snap.NbItems) {
			return nil, fmt.Errorf("knn: load ItemKNN: corrupt offset table at item %d", i)
		}
		nbOff[i] = int32(off)
	}
	if snap.Offsets[numItems] != len(snap.NbItems) {
		return nil, fmt.Errorf("knn: load ItemKNN: offset table does not cover the neighbour columns")
	}
	return &ItemKNN{
		cfg:      snap.Config,
		train:    train,
		nbOff:    nbOff,
		nbItems:  snap.NbItems,
		nbSims:   snap.NbSims,
		userMean: snap.UserMean,
		global:   snap.Global,
		arenas:   newArenaPool(),
	}, nil
}
