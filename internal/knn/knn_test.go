package knn

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// blockDataset builds two disjoint taste communities: users 0-4 rate items
// 0-4 highly, users 5-9 rate items 5-9 highly. A small amount of cross-block
// noise keeps the similarity lists non-trivial.
func blockDataset() *dataset.Dataset {
	b := dataset.NewBuilder("block", 128)
	for u := 0; u < 10; u++ {
		lo, hi := 0, 5
		if u >= 5 {
			lo, hi = 5, 10
		}
		for i := lo; i < hi; i++ {
			if (u+i)%4 == 0 {
				continue // leave some pairs unrated so there are unseen items
			}
			b.AddIDs(types.UserID(u), types.ItemID(i), 4+float64((u+i)%2))
		}
		// One low cross-block rating per user.
		cross := (hi + u) % 10
		b.AddIDs(types.UserID(u), types.ItemID(cross), 1)
	}
	return b.Build()
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Neighbors: 0, MinOverlap: 1},
		{Neighbors: 5, MinOverlap: 0},
		{Neighbors: 5, MinOverlap: 1, Shrinkage: -1},
	}
	for k, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail validation", k)
		}
	}
}

func TestTrainRejectsEmptyDataset(t *testing.T) {
	b := dataset.NewBuilder("x", 1)
	b.AddIDs(0, 0, 3)
	d := b.Build()
	empty := d.SubsetUsers(nil)
	if _, err := Train(empty, DefaultConfig()); err == nil {
		t.Fatal("empty dataset did not error")
	}
}

func TestNeighborsStayWithinTasteBlocks(t *testing.T) {
	d := blockDataset()
	m, err := Train(d, Config{Neighbors: 3, MinOverlap: 2, Shrinkage: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Item 0's strongest neighbours should be other first-block items.
	nbs := m.Neighbors(0)
	if len(nbs) == 0 {
		t.Fatal("item 0 has no neighbours")
	}
	for _, nb := range nbs {
		if nb.Item >= 5 {
			t.Fatalf("item 0's neighbour %d crosses the taste block (sim %.3f)", nb.Item, nb.Score)
		}
		if nb.Score <= 0 || nb.Score > 1.0001 {
			t.Fatalf("similarity %v out of range", nb.Score)
		}
	}
}

func TestNeighborListsSortedAndCapped(t *testing.T) {
	d := blockDataset()
	m, err := Train(d, Config{Neighbors: 2, MinOverlap: 1, Shrinkage: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumItems(); i++ {
		nbs := m.Neighbors(types.ItemID(i))
		if len(nbs) > 2 {
			t.Fatalf("item %d keeps %d neighbours, cap is 2", i, len(nbs))
		}
		for k := 1; k < len(nbs); k++ {
			if nbs[k].Score > nbs[k-1].Score+1e-12 {
				t.Fatalf("item %d neighbour list not sorted", i)
			}
		}
	}
	if m.Neighbors(types.ItemID(999)) != nil {
		t.Fatal("out-of-range item should have nil neighbours")
	}
}

func TestScorePrefersWithinBlockItems(t *testing.T) {
	d := blockDataset()
	m, err := Train(d, Config{Neighbors: 5, MinOverlap: 2, Shrinkage: 0})
	if err != nil {
		t.Fatal(err)
	}
	// User 0 (first block): an unseen first-block item should score above an
	// unseen second-block item.
	var inBlock, outBlock types.ItemID = -1, -1
	seen := d.UserItemSet(0)
	for i := 0; i < 5; i++ {
		if _, ok := seen[types.ItemID(i)]; !ok {
			inBlock = types.ItemID(i)
		}
	}
	for i := 5; i < 10; i++ {
		if _, ok := seen[types.ItemID(i)]; !ok {
			outBlock = types.ItemID(i)
		}
	}
	if inBlock < 0 || outBlock < 0 {
		t.Skip("fixture left no unseen items for user 0")
	}
	if m.Score(0, inBlock) <= m.Score(0, outBlock) {
		t.Fatalf("within-block item %d (%.3f) should outscore cross-block item %d (%.3f)",
			inBlock, m.Score(0, inBlock), outBlock, m.Score(0, outBlock))
	}
}

func TestScoreFallbacks(t *testing.T) {
	d := blockDataset()
	m, err := Train(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(types.UserID(999), 0); got != d.MeanRating() {
		t.Fatalf("unknown user should fall back to the global mean, got %v", got)
	}
	if got := m.Score(0, types.ItemID(999)); got != d.MeanRating() {
		t.Fatalf("unknown item should fall back to the global mean, got %v", got)
	}
	if m.Name() != "ItemKNN50" {
		t.Fatalf("name = %s", m.Name())
	}
}

func TestShrinkageReducesLowOverlapSimilarities(t *testing.T) {
	d := blockDataset()
	raw, err := Train(d, Config{Neighbors: 10, MinOverlap: 1, Shrinkage: 0})
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := Train(d, Config{Neighbors: 10, MinOverlap: 1, Shrinkage: 20})
	if err != nil {
		t.Fatal(err)
	}
	rawN, shrunkN := raw.Neighbors(0), shrunk.Neighbors(0)
	if len(rawN) == 0 || len(shrunkN) == 0 {
		t.Skip("no neighbours to compare")
	}
	if shrunkN[0].Score >= rawN[0].Score {
		t.Fatalf("shrinkage should reduce the top similarity: %.3f vs %.3f", shrunkN[0].Score, rawN[0].Score)
	}
}

func TestItemKNNBeatsGlobalMeanOnSyntheticData(t *testing.T) {
	cfg := synth.ML100K(0.15)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := d.SplitByUser(0.8, rand.New(rand.NewSource(3)))
	m, err := Train(sp.Train, Config{Neighbors: 30, MinOverlap: 2, Shrinkage: 5})
	if err != nil {
		t.Fatal(err)
	}
	mean := sp.Train.MeanRating()
	var seModel, seMean float64
	for _, r := range sp.Test.Ratings() {
		em := r.Value - m.Score(r.User, r.Item)
		eb := r.Value - mean
		seModel += em * em
		seMean += eb * eb
	}
	if seModel >= seMean {
		t.Fatalf("item-KNN squared error %.1f not better than global-mean %.1f", seModel, seMean)
	}
}
