package knn

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

func TestItemKNNScoreUserMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ratings := []types.Rating{{User: 19, Item: 29, Value: 3}}
	for k := 0; k < 500; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(20)),
			Item:  types.ItemID(rng.Intn(30)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	d := dataset.FromRatings("knn-bulk", ratings)
	m, err := Train(d, Config{Neighbors: 10, MinOverlap: 2, Shrinkage: 5})
	if err != nil {
		t.Fatal(err)
	}
	items := make([]types.ItemID, d.NumItems()+2)
	for k := range items {
		items[k] = types.ItemID(k)
	}
	out := make([]float64, len(items))
	for u := -1; u <= d.NumUsers(); u++ {
		uid := types.UserID(u)
		m.ScoreUser(uid, items, out)
		for k, i := range items {
			if want := m.Score(uid, i); out[k] != want {
				t.Fatalf("user %d item %d: bulk %v != score %v", u, i, out[k], want)
			}
		}
	}
}
