// Package mf implements the matrix-factorization base recommenders used by
// the paper: RSVD (regularized SVD trained with stochastic gradient descent,
// the paper's LIBMF configuration) and PSVD (PureSVD over the zero-imputed
// rating matrix, Cremonesi et al. 2010).
//
// Both models implement recommender.Scorer, so they can serve as the accuracy
// recommender inside GANC or be ranked directly through
// recommender.ScorerTopN.
package mf

import (
	"fmt"
	"math"
	"math/rand"

	"ganc/internal/dataset"
	"ganc/internal/linalg"
	"ganc/internal/types"
)

// RSVDConfig holds the hyper-parameters of the SGD matrix factorization,
// mirroring the knobs the paper cross-validates in Table V.
type RSVDConfig struct {
	// Factors is the latent dimensionality g.
	Factors int
	// LearningRate is the SGD step size η.
	LearningRate float64
	// Regularization is the L2 coefficient λ applied to factors and biases.
	Regularization float64
	// Epochs is the number of full passes over the train ratings.
	Epochs int
	// UseBiases enables the per-user and per-item bias terms. The paper's
	// LIBMF setup factorizes the raw matrix; biases are kept optional and on
	// by default because they improve RMSE on every dataset.
	UseBiases bool
	// NonNegative clamps factors at zero after each update (the paper's
	// RSVDN variant).
	NonNegative bool
	// InitStd is the standard deviation of the factor initialization.
	InitStd float64
	// Seed makes training deterministic.
	Seed int64
}

// DefaultRSVDConfig returns the configuration used for the dense MovieLens
// datasets in the paper (g=100, η=0.03, λ=0.05).
func DefaultRSVDConfig() RSVDConfig {
	return RSVDConfig{
		Factors:        100,
		LearningRate:   0.03,
		Regularization: 0.05,
		Epochs:         20,
		UseBiases:      true,
		InitStd:        0.1,
		Seed:           1,
	}
}

// Validate checks the configuration.
func (c *RSVDConfig) Validate() error {
	switch {
	case c.Factors <= 0:
		return fmt.Errorf("mf: Factors must be positive, got %d", c.Factors)
	case c.LearningRate <= 0:
		return fmt.Errorf("mf: LearningRate must be positive, got %v", c.LearningRate)
	case c.Regularization < 0:
		return fmt.Errorf("mf: Regularization must be non-negative, got %v", c.Regularization)
	case c.Epochs <= 0:
		return fmt.Errorf("mf: Epochs must be positive, got %d", c.Epochs)
	case c.InitStd <= 0:
		return fmt.Errorf("mf: InitStd must be positive, got %v", c.InitStd)
	}
	return nil
}

// RSVD is a regularized-SVD rating predictor: r̂_ui = μ + b_u + b_i + p_uᵀq_i.
type RSVD struct {
	cfg        RSVDConfig
	globalMean float64
	userBias   []float64
	itemBias   []float64
	userF      [][]float64
	itemF      [][]float64
	name       string

	// precision is the tier the bulk path serves at; fp holds the contiguous
	// reduced-precision factor blocks when precision is not float64.
	precision types.ScoringPrecision
	fp        linalg.FactorPair
}

// TrainRSVD fits an RSVD model on the train set.
func TrainRSVD(train *dataset.Dataset, cfg RSVDConfig) (*RSVD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train.NumRatings() == 0 {
		return nil, fmt.Errorf("mf: cannot train RSVD on an empty dataset")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &RSVD{
		cfg:        cfg,
		globalMean: train.MeanRating(),
		userBias:   make([]float64, train.NumUsers()),
		itemBias:   make([]float64, train.NumItems()),
		userF:      initFactors(rng, train.NumUsers(), cfg.Factors, cfg.InitStd),
		itemF:      initFactors(rng, train.NumItems(), cfg.Factors, cfg.InitStd),
		name:       "RSVD",
	}
	if cfg.NonNegative {
		m.name = "RSVDN"
		clampNonNegative(m.userF)
		clampNonNegative(m.itemF)
	}

	ratings := train.Ratings()
	order := rng.Perm(len(ratings))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Reshuffle the visiting order each epoch.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			r := ratings[idx]
			m.sgdStep(r)
		}
	}
	return m, nil
}

func (m *RSVD) sgdStep(r types.Rating) {
	u, i := r.User, r.Item
	pred := m.predict(u, i)
	err := r.Value - pred
	lr, reg := m.cfg.LearningRate, m.cfg.Regularization

	if m.cfg.UseBiases {
		m.userBias[u] += lr * (err - reg*m.userBias[u])
		m.itemBias[i] += lr * (err - reg*m.itemBias[i])
	}
	pu, qi := m.userF[u], m.itemF[i]
	for f := range pu {
		puf, qif := pu[f], qi[f]
		pu[f] += lr * (err*qif - reg*puf)
		qi[f] += lr * (err*puf - reg*qif)
		if m.cfg.NonNegative {
			if pu[f] < 0 {
				pu[f] = 0
			}
			if qi[f] < 0 {
				qi[f] = 0
			}
		}
	}
}

func (m *RSVD) predict(u types.UserID, i types.ItemID) float64 {
	s := m.globalMean
	if m.cfg.UseBiases {
		s += m.userBias[u] + m.itemBias[i]
	}
	pu, qi := m.userF[u], m.itemF[i]
	for f := range pu {
		s += pu[f] * qi[f]
	}
	return s
}

// Score implements recommender.Scorer: the predicted rating r̂_ui. Unknown
// users or items fall back to the global mean (plus the known side's bias).
func (m *RSVD) Score(u types.UserID, i types.ItemID) float64 {
	if int(u) < 0 || int(u) >= len(m.userF) || int(i) < 0 || int(i) >= len(m.itemF) {
		return m.globalMean
	}
	return m.predict(u, i)
}

// SetPrecision switches the bulk scoring path to the given tier, building
// the contiguous reduced-precision factor blocks on first use. Pointwise
// Score always stays float64. Not safe for concurrent use with scoring —
// call it at assembly/load time, before the model serves.
func (m *RSVD) SetPrecision(p types.ScoringPrecision) {
	switch p {
	case types.PrecisionF32:
		m.fp.EnsureF32(m.userF, m.itemF)
	case types.PrecisionInt8:
		m.fp.EnsureInt8(m.userF, m.itemF)
	}
	m.precision = p
}

// ScoringPrecision implements recommender.PrecisionScorer.
func (m *RSVD) ScoringPrecision() types.ScoringPrecision { return m.precision }

// ScoreUser implements recommender.BulkScorer: the user's factor row and
// bias are hoisted out of the item loop, so a candidate sweep is len(items)
// dense dot products. At the default float64 tier it mirrors predict's
// exact summation order, so bulk and pointwise scores are bit-identical; at
// the float32/int8 tiers (SetPrecision) the dots run unrolled kernels over
// the contiguous factor blocks and match Score only to the tier's
// documented tolerance (DESIGN.md §12).
func (m *RSVD) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	if m.precision != types.PrecisionF64 {
		buf := make([]float32, len(items))
		m.ScoreUser32(u, items, buf)
		for k, v := range buf {
			out[k] = float64(v)
		}
		return
	}
	if int(u) < 0 || int(u) >= len(m.userF) {
		for k := range items {
			out[k] = m.globalMean
		}
		return
	}
	pu := m.userF[u]
	for k, i := range items {
		if int(i) < 0 || int(i) >= len(m.itemF) {
			out[k] = m.globalMean
			continue
		}
		s := m.globalMean
		if m.cfg.UseBiases {
			s += m.userBias[u] + m.itemBias[i]
		}
		qi := m.itemF[i]
		for f := range pu {
			s += pu[f] * qi[f]
		}
		out[k] = s
	}
}

// ScoreUser32 implements recommender.BulkScorer32: the float32 score arena
// path. At the int8 tier the dot runs the quantized kernel and rescales by
// the two row scales; at the float32 tier it runs the unrolled kernel over
// the contiguous blocks. Called before SetPrecision built any block, it
// truncates the float64 reference scores (read-only, so always race-safe).
func (m *RSVD) ScoreUser32(u types.UserID, items []types.ItemID, out []float32) {
	if int(u) < 0 || int(u) >= len(m.userF) {
		g := float32(m.globalMean)
		for k := range items {
			out[k] = g
		}
		return
	}
	base := m.globalMean
	if m.cfg.UseBiases {
		base += m.userBias[u]
	}
	switch {
	case m.precision == types.PrecisionInt8 && m.fp.UserQ.Rows() > 0:
		pu := m.fp.UserQ.Row(int(u))
		su := float64(m.fp.UserQ.Scale(int(u)))
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = float32(m.globalMean)
				continue
			}
			s := base + float64(linalg.DotQ8(pu, m.fp.ItemQ.Row(int(i))))*su*float64(m.fp.ItemQ.Scale(int(i)))
			if m.cfg.UseBiases {
				s += m.itemBias[i]
			}
			out[k] = float32(s)
		}
	case m.precision == types.PrecisionF32 && m.fp.UserB.Rows() > 0:
		pu := m.fp.UserB.Row(int(u))
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = float32(m.globalMean)
				continue
			}
			s := base + float64(linalg.Dot32x8(pu, m.fp.ItemB.Row(int(i))))
			if m.cfg.UseBiases {
				s += m.itemBias[i]
			}
			out[k] = float32(s)
		}
	default:
		pu := m.userF[u]
		for k, i := range items {
			if int(i) < 0 || int(i) >= len(m.itemF) {
				out[k] = float32(m.globalMean)
				continue
			}
			s := base
			qi := m.itemF[i]
			for f := range pu {
				s += pu[f] * qi[f]
			}
			if m.cfg.UseBiases {
				s += m.itemBias[i]
			}
			out[k] = float32(s)
		}
	}
}

// Name implements recommender.Scorer.
func (m *RSVD) Name() string { return m.name }

// Factors returns the latent dimensionality of the trained model.
func (m *RSVD) Factors() int { return m.cfg.Factors }

// RMSE computes the root-mean-square error of the model on a dataset
// (typically the held-out test set), the metric the paper's Table V reports.
func (m *RSVD) RMSE(d *dataset.Dataset) float64 {
	if d.NumRatings() == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range d.Ratings() {
		e := r.Value - m.Score(r.User, r.Item)
		sum += e * e
	}
	return math.Sqrt(sum / float64(d.NumRatings()))
}

// MAE computes the mean absolute error on a dataset.
func (m *RSVD) MAE(d *dataset.Dataset) float64 {
	if d.NumRatings() == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range d.Ratings() {
		sum += math.Abs(r.Value - m.Score(r.User, r.Item))
	}
	return sum / float64(d.NumRatings())
}

func initFactors(rng *rand.Rand, n, k int, std float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, k)
		for f := range row {
			row[f] = rng.NormFloat64() * std
		}
		out[i] = row
	}
	return out
}

func clampNonNegative(factors [][]float64) {
	for _, row := range factors {
		for f := range row {
			if row[f] < 0 {
				row[f] = -row[f]
			}
		}
	}
}
