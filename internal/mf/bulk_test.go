package mf

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// bulkSplitDataset builds a small random dataset for the bulk-contract tests.
func bulkSplitDataset(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ratings := []types.Rating{{User: 24, Item: 49, Value: 3}}
	for k := 0; k < 600; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(25)),
			Item:  types.ItemID(rng.Intn(50)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	return dataset.FromRatings("mf-bulk", ratings)
}

// assertBulkContract verifies ScoreUser against the pointwise Score,
// including out-of-range users and items.
func assertBulkContract(t *testing.T, name string, score func(types.UserID, types.ItemID) float64,
	scoreUser func(types.UserID, []types.ItemID, []float64), numUsers, numItems int) {
	t.Helper()
	items := make([]types.ItemID, numItems+3)
	for k := range items {
		items[k] = types.ItemID(k)
	}
	out := make([]float64, len(items))
	for u := -1; u <= numUsers; u++ {
		uid := types.UserID(u)
		scoreUser(uid, items, out)
		for k, i := range items {
			if want := score(uid, i); out[k] != want {
				t.Fatalf("%s: user %d item %d: bulk %v != score %v", name, u, i, out[k], want)
			}
		}
	}
}

func TestRSVDScoreUserMatchesScore(t *testing.T) {
	d := bulkSplitDataset(1)
	for _, useBiases := range []bool{true, false} {
		cfg := DefaultRSVDConfig()
		cfg.Factors, cfg.Epochs, cfg.Seed = 6, 4, 1
		cfg.UseBiases = useBiases
		m, err := TrainRSVD(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertBulkContract(t, m.Name(), m.Score, m.ScoreUser, d.NumUsers(), d.NumItems())
	}
}

func TestPSVDScoreUserMatchesScore(t *testing.T) {
	d := bulkSplitDataset(2)
	m, err := TrainPSVD(d, PSVDConfig{Factors: 8, PowerIterations: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertBulkContract(t, m.Name(), m.Score, m.ScoreUser, d.NumUsers(), d.NumItems())
}
