package mf

import (
	"fmt"

	"ganc/internal/dataset"
	"ganc/internal/linalg"
	"ganc/internal/types"
)

// PSVD is the PureSVD recommender of Cremonesi et al. (RecSys 2010): missing
// ratings are imputed with zeros and a rank-k truncated SVD of the resulting
// |U|×|I| matrix is taken. The score of item i for user u is the (u, i) entry
// of the rank-k reconstruction, which measures the association between the
// user and the item rather than a predicted rating.
//
// The paper evaluates PSVD10 (10 factors) and PSVD100 (100 factors); both are
// just PSVD with a different Factors value.
type PSVD struct {
	factors    int
	userF      [][]float64 // |U| × k, already scaled by the singular values
	itemF      [][]float64 // |I| × k
	name       string
	numItems   int
	numUsers   int
	singulars  []float64
	powerIters int

	// precision is the tier the bulk path serves at; fp holds the contiguous
	// reduced-precision factor blocks when precision is not float64.
	precision types.ScoringPrecision
	fp        linalg.FactorPair
}

// PSVDConfig configures PureSVD training.
type PSVDConfig struct {
	// Factors is the truncation rank k.
	Factors int
	// PowerIterations refines the randomized range sketch; 2 is enough for
	// rating matrices (see internal/linalg).
	PowerIterations int
	// Seed drives the randomized SVD sketch.
	Seed int64
}

// DefaultPSVDConfig returns a PSVD100-style configuration.
func DefaultPSVDConfig() PSVDConfig {
	return PSVDConfig{Factors: 100, PowerIterations: 2, Seed: 1}
}

// TrainPSVD factorizes the zero-imputed train matrix at rank cfg.Factors.
func TrainPSVD(train *dataset.Dataset, cfg PSVDConfig) (*PSVD, error) {
	if cfg.Factors <= 0 {
		return nil, fmt.Errorf("mf: PSVD Factors must be positive, got %d", cfg.Factors)
	}
	if train.NumRatings() == 0 {
		return nil, fmt.Errorf("mf: cannot train PSVD on an empty dataset")
	}
	k := cfg.Factors
	maxRank := train.NumUsers()
	if train.NumItems() < maxRank {
		maxRank = train.NumItems()
	}
	if k > maxRank {
		k = maxRank
	}
	if cfg.PowerIterations < 0 {
		cfg.PowerIterations = 0
	}

	entries := make([]linalg.Entry, 0, train.NumRatings())
	for _, r := range train.Ratings() {
		entries = append(entries, linalg.Entry{Row: int(r.User), Col: int(r.Item), Value: r.Value})
	}
	sp := linalg.NewSparse(train.NumUsers(), train.NumItems(), entries)
	res, err := linalg.TruncatedSVD(sp, k, cfg.PowerIterations, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("mf: PSVD factorization: %w", err)
	}

	// Pre-multiply U by the singular values so scoring is a plain dot product.
	userF := make([][]float64, train.NumUsers())
	for u := 0; u < train.NumUsers(); u++ {
		row := make([]float64, k)
		for f := 0; f < k; f++ {
			row[f] = res.U.At(u, f) * res.S[f]
		}
		userF[u] = row
	}
	itemF := make([][]float64, train.NumItems())
	for i := 0; i < train.NumItems(); i++ {
		row := make([]float64, k)
		for f := 0; f < k; f++ {
			row[f] = res.V.At(i, f)
		}
		itemF[i] = row
	}
	return &PSVD{
		factors:    k,
		userF:      userF,
		itemF:      itemF,
		name:       fmt.Sprintf("PSVD%d", cfg.Factors),
		numItems:   train.NumItems(),
		numUsers:   train.NumUsers(),
		singulars:  res.S,
		powerIters: cfg.PowerIterations,
	}, nil
}

// Score implements recommender.Scorer: the rank-k association between user u
// and item i. Out-of-range identifiers score zero.
func (m *PSVD) Score(u types.UserID, i types.ItemID) float64 {
	if int(u) < 0 || int(u) >= m.numUsers || int(i) < 0 || int(i) >= m.numItems {
		return 0
	}
	pu, qi := m.userF[u], m.itemF[i]
	s := 0.0
	for f := range pu {
		s += pu[f] * qi[f]
	}
	return s
}

// SetPrecision switches the bulk scoring path to the given tier, building
// the contiguous reduced-precision factor blocks on first use. Pointwise
// Score always stays float64. Not safe for concurrent use with scoring —
// call it at assembly/load time, before the model serves.
func (m *PSVD) SetPrecision(p types.ScoringPrecision) {
	switch p {
	case types.PrecisionF32:
		m.fp.EnsureF32(m.userF, m.itemF)
	case types.PrecisionInt8:
		m.fp.EnsureInt8(m.userF, m.itemF)
	}
	m.precision = p
}

// ScoringPrecision implements recommender.PrecisionScorer.
func (m *PSVD) ScoringPrecision() types.ScoringPrecision { return m.precision }

// ScoreUser implements recommender.BulkScorer: one factor-row lookup, then
// a dense dot product per candidate. At the default float64 tier the dot
// uses the same left-to-right summation as Score, so bulk and pointwise
// scores are bit-identical; at the float32/int8 tiers (SetPrecision) the
// dots run unrolled kernels over the contiguous factor blocks and match
// Score only to the tier's documented tolerance (DESIGN.md §12).
func (m *PSVD) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	if m.precision != types.PrecisionF64 {
		buf := make([]float32, len(items))
		m.ScoreUser32(u, items, buf)
		for k, v := range buf {
			out[k] = float64(v)
		}
		return
	}
	if int(u) < 0 || int(u) >= m.numUsers {
		for k := range items {
			out[k] = 0
		}
		return
	}
	pu := m.userF[u]
	for k, i := range items {
		if int(i) < 0 || int(i) >= m.numItems {
			out[k] = 0
			continue
		}
		qi := m.itemF[i]
		s := 0.0
		for f := range pu {
			s += pu[f] * qi[f]
		}
		out[k] = s
	}
}

// ScoreUser32 implements recommender.BulkScorer32; see RSVD.ScoreUser32 for
// the tier dispatch rules (PSVD has no bias terms, so a score is just the
// kernel dot, and out-of-range identifiers score zero).
func (m *PSVD) ScoreUser32(u types.UserID, items []types.ItemID, out []float32) {
	if int(u) < 0 || int(u) >= m.numUsers {
		for k := range items {
			out[k] = 0
		}
		return
	}
	switch {
	case m.precision == types.PrecisionInt8 && m.fp.UserQ.Rows() > 0:
		pu := m.fp.UserQ.Row(int(u))
		su := m.fp.UserQ.Scale(int(u))
		for k, i := range items {
			if int(i) < 0 || int(i) >= m.numItems {
				out[k] = 0
				continue
			}
			out[k] = float32(linalg.DotQ8(pu, m.fp.ItemQ.Row(int(i)))) * su * m.fp.ItemQ.Scale(int(i))
		}
	case m.precision == types.PrecisionF32 && m.fp.UserB.Rows() > 0:
		pu := m.fp.UserB.Row(int(u))
		for k, i := range items {
			if int(i) < 0 || int(i) >= m.numItems {
				out[k] = 0
				continue
			}
			out[k] = linalg.Dot32x8(pu, m.fp.ItemB.Row(int(i)))
		}
	default:
		pu := m.userF[u]
		for k, i := range items {
			if int(i) < 0 || int(i) >= m.numItems {
				out[k] = 0
				continue
			}
			qi := m.itemF[i]
			s := 0.0
			for f := range pu {
				s += pu[f] * qi[f]
			}
			out[k] = float32(s)
		}
	}
}

// Name implements recommender.Scorer ("PSVD10", "PSVD100", ...).
func (m *PSVD) Name() string { return m.name }

// Factors returns the effective truncation rank (it may be smaller than the
// configured rank when the matrix is smaller than the request).
func (m *PSVD) Factors() int { return m.factors }

// SingularValues returns the singular values of the factorization in
// descending order.
func (m *PSVD) SingularValues() []float64 {
	out := make([]float64, len(m.singulars))
	copy(out, m.singulars)
	return out
}
