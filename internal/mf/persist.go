package mf

import (
	"encoding/gob"
	"fmt"
	"io"

	"ganc/internal/linalg"
	"ganc/internal/types"
)

// Model persistence: trained factor models can be serialized with encoding/gob
// and reloaded later, so a production deployment can train offline (cmd/ganc)
// and serve from a snapshot without retraining. The snapshot formats are
// versioned so that incompatible future changes fail loudly instead of
// silently mis-decoding.
//
// Version 2 adds the serving-precision tier and, for models serving a
// reduced tier, the flat float32 factor section (linalg.FactorSection), so a
// warm-started process reattaches the contiguous blocks without rebuilding
// them from the float64 rows. Version-1 snapshots still load (they carry no
// tier, so they come up at the exact float64 default).

const (
	rsvdSnapshotVersion = 2
	psvdSnapshotVersion = 2
)

// rsvdSnapshot is the gob-encoded form of an RSVD model. Precision and F32
// are the version-2 additions; both decode as zero values from version-1
// payloads.
type rsvdSnapshot struct {
	Version    int
	Config     RSVDConfig
	GlobalMean float64
	UserBias   []float64
	ItemBias   []float64
	UserF      [][]float64
	ItemF      [][]float64
	Name       string
	Precision  string
	F32        linalg.FactorSection
}

// Save writes the model to w in gob format.
func (m *RSVD) Save(w io.Writer) error {
	snap := rsvdSnapshot{
		Version:    rsvdSnapshotVersion,
		Config:     m.cfg,
		GlobalMean: m.globalMean,
		UserBias:   m.userBias,
		ItemBias:   m.itemBias,
		UserF:      m.userF,
		ItemF:      m.itemF,
		Name:       m.name,
		Precision:  m.precision.String(),
	}
	if m.precision != types.PrecisionF64 {
		if sec := m.fp.F32Section(); sec != nil {
			snap.F32 = *sec
		}
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mf: save RSVD: %w", err)
	}
	return nil
}

// LoadRSVD reads a model previously written by (*RSVD).Save.
func LoadRSVD(r io.Reader) (*RSVD, error) {
	var snap rsvdSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mf: load RSVD: %w", err)
	}
	if snap.Version < 1 || snap.Version > rsvdSnapshotVersion {
		return nil, fmt.Errorf("mf: load RSVD: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.UserF) == 0 || len(snap.ItemF) == 0 {
		return nil, fmt.Errorf("mf: load RSVD: snapshot has no factors")
	}
	m := &RSVD{
		cfg:        snap.Config,
		globalMean: snap.GlobalMean,
		userBias:   snap.UserBias,
		itemBias:   snap.ItemBias,
		userF:      snap.UserF,
		itemF:      snap.ItemF,
		name:       snap.Name,
	}
	if err := restorePrecision(&m.fp, snap.Precision, &snap.F32, len(snap.UserF), len(snap.ItemF), m.SetPrecision); err != nil {
		return nil, fmt.Errorf("mf: load RSVD: %w", err)
	}
	return m, nil
}

// psvdSnapshot is the gob-encoded form of a PSVD model. Precision and F32
// are the version-2 additions; both decode as zero values from version-1
// payloads.
type psvdSnapshot struct {
	Version   int
	Factors   int
	UserF     [][]float64
	ItemF     [][]float64
	Name      string
	NumItems  int
	NumUsers  int
	Singulars []float64
	Precision string
	F32       linalg.FactorSection
}

// Save writes the model to w in gob format.
func (m *PSVD) Save(w io.Writer) error {
	snap := psvdSnapshot{
		Version:   psvdSnapshotVersion,
		Factors:   m.factors,
		UserF:     m.userF,
		ItemF:     m.itemF,
		Name:      m.name,
		NumItems:  m.numItems,
		NumUsers:  m.numUsers,
		Singulars: m.singulars,
		Precision: m.precision.String(),
	}
	if m.precision != types.PrecisionF64 {
		if sec := m.fp.F32Section(); sec != nil {
			snap.F32 = *sec
		}
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mf: save PSVD: %w", err)
	}
	return nil
}

// LoadPSVD reads a model previously written by (*PSVD).Save.
func LoadPSVD(r io.Reader) (*PSVD, error) {
	var snap psvdSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mf: load PSVD: %w", err)
	}
	if snap.Version < 1 || snap.Version > psvdSnapshotVersion {
		return nil, fmt.Errorf("mf: load PSVD: unsupported snapshot version %d", snap.Version)
	}
	if snap.Factors <= 0 || len(snap.UserF) == 0 {
		return nil, fmt.Errorf("mf: load PSVD: snapshot has no factors")
	}
	m := &PSVD{
		factors:   snap.Factors,
		userF:     snap.UserF,
		itemF:     snap.ItemF,
		name:      snap.Name,
		numItems:  snap.NumItems,
		numUsers:  snap.NumUsers,
		singulars: snap.Singulars,
	}
	if err := restorePrecision(&m.fp, snap.Precision, &snap.F32, len(snap.UserF), len(snap.ItemF), m.SetPrecision); err != nil {
		return nil, fmt.Errorf("mf: load PSVD: %w", err)
	}
	return m, nil
}

// restorePrecision reattaches a snapshot's serving tier: the persisted f32
// factor section (when present) is installed first, so setPrecision — the
// model's SetPrecision method — only quantizes for int8 or fills gaps
// instead of rebuilding blocks from float64.
func restorePrecision(fp *linalg.FactorPair, precision string, sec *linalg.FactorSection, userRows, itemRows int, setPrecision func(types.ScoringPrecision)) error {
	p, err := types.ParseScoringPrecision(precision)
	if err != nil {
		return err
	}
	if err := fp.RestoreF32Section(sec, userRows, itemRows); err != nil {
		return err
	}
	if p != types.PrecisionF64 {
		setPrecision(p)
	}
	return nil
}
