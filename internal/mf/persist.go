package mf

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Model persistence: trained factor models can be serialized with encoding/gob
// and reloaded later, so a production deployment can train offline (cmd/ganc)
// and serve from a snapshot without retraining. The snapshot formats are
// versioned so that incompatible future changes fail loudly instead of
// silently mis-decoding.

const (
	rsvdSnapshotVersion = 1
	psvdSnapshotVersion = 1
)

// rsvdSnapshot is the gob-encoded form of an RSVD model.
type rsvdSnapshot struct {
	Version    int
	Config     RSVDConfig
	GlobalMean float64
	UserBias   []float64
	ItemBias   []float64
	UserF      [][]float64
	ItemF      [][]float64
	Name       string
}

// Save writes the model to w in gob format.
func (m *RSVD) Save(w io.Writer) error {
	snap := rsvdSnapshot{
		Version:    rsvdSnapshotVersion,
		Config:     m.cfg,
		GlobalMean: m.globalMean,
		UserBias:   m.userBias,
		ItemBias:   m.itemBias,
		UserF:      m.userF,
		ItemF:      m.itemF,
		Name:       m.name,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mf: save RSVD: %w", err)
	}
	return nil
}

// LoadRSVD reads a model previously written by (*RSVD).Save.
func LoadRSVD(r io.Reader) (*RSVD, error) {
	var snap rsvdSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mf: load RSVD: %w", err)
	}
	if snap.Version != rsvdSnapshotVersion {
		return nil, fmt.Errorf("mf: load RSVD: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.UserF) == 0 || len(snap.ItemF) == 0 {
		return nil, fmt.Errorf("mf: load RSVD: snapshot has no factors")
	}
	return &RSVD{
		cfg:        snap.Config,
		globalMean: snap.GlobalMean,
		userBias:   snap.UserBias,
		itemBias:   snap.ItemBias,
		userF:      snap.UserF,
		itemF:      snap.ItemF,
		name:       snap.Name,
	}, nil
}

// psvdSnapshot is the gob-encoded form of a PSVD model.
type psvdSnapshot struct {
	Version   int
	Factors   int
	UserF     [][]float64
	ItemF     [][]float64
	Name      string
	NumItems  int
	NumUsers  int
	Singulars []float64
}

// Save writes the model to w in gob format.
func (m *PSVD) Save(w io.Writer) error {
	snap := psvdSnapshot{
		Version:   psvdSnapshotVersion,
		Factors:   m.factors,
		UserF:     m.userF,
		ItemF:     m.itemF,
		Name:      m.name,
		NumItems:  m.numItems,
		NumUsers:  m.numUsers,
		Singulars: m.singulars,
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mf: save PSVD: %w", err)
	}
	return nil
}

// LoadPSVD reads a model previously written by (*PSVD).Save.
func LoadPSVD(r io.Reader) (*PSVD, error) {
	var snap psvdSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("mf: load PSVD: %w", err)
	}
	if snap.Version != psvdSnapshotVersion {
		return nil, fmt.Errorf("mf: load PSVD: unsupported snapshot version %d", snap.Version)
	}
	if snap.Factors <= 0 || len(snap.UserF) == 0 {
		return nil, fmt.Errorf("mf: load PSVD: snapshot has no factors")
	}
	return &PSVD{
		factors:   snap.Factors,
		userF:     snap.UserF,
		itemF:     snap.ItemF,
		name:      snap.Name,
		numItems:  snap.NumItems,
		numUsers:  snap.NumUsers,
		singulars: snap.Singulars,
	}, nil
}
