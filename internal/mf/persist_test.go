package mf

import (
	"bytes"
	"strings"
	"testing"

	"ganc/internal/types"
)

func TestRSVDSaveLoadRoundTrip(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 8, LearningRate: 0.02, Regularization: 0.05, Epochs: 3, UseBiases: true, InitStd: 0.1, Seed: 19}
	orig, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRSVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != orig.Name() || loaded.Factors() != orig.Factors() {
		t.Fatal("metadata lost in round trip")
	}
	for u := 0; u < 10 && u < sp.Train.NumUsers(); u++ {
		for i := 0; i < 10 && i < sp.Train.NumItems(); i++ {
			a := orig.Score(types.UserID(u), types.ItemID(i))
			b := loaded.Score(types.UserID(u), types.ItemID(i))
			if a != b {
				t.Fatalf("score mismatch after reload at (%d,%d): %v vs %v", u, i, a, b)
			}
		}
	}
	if loaded.RMSE(sp.Test) != orig.RMSE(sp.Test) {
		t.Fatal("RMSE differs after reload")
	}
}

func TestPSVDSaveLoadRoundTrip(t *testing.T) {
	sp := learnableSplit(t)
	orig, err := TrainPSVD(sp.Train, PSVDConfig{Factors: 6, PowerIterations: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPSVD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != orig.Name() || loaded.Factors() != orig.Factors() {
		t.Fatal("metadata lost in round trip")
	}
	for u := 0; u < 10 && u < sp.Train.NumUsers(); u++ {
		for i := 0; i < 10 && i < sp.Train.NumItems(); i++ {
			if orig.Score(types.UserID(u), types.ItemID(i)) != loaded.Score(types.UserID(u), types.ItemID(i)) {
				t.Fatal("score mismatch after reload")
			}
		}
	}
	sv := loaded.SingularValues()
	if len(sv) != orig.Factors() {
		t.Fatal("singular values lost in round trip")
	}
}

func TestLoadRejectsGarbageAndWrongVersions(t *testing.T) {
	if _, err := LoadRSVD(strings.NewReader("not a gob stream")); err == nil {
		t.Fatal("garbage RSVD snapshot did not error")
	}
	if _, err := LoadPSVD(strings.NewReader("still not a gob stream")); err == nil {
		t.Fatal("garbage PSVD snapshot did not error")
	}
	// A structurally valid but empty snapshot must be rejected too.
	empty := &RSVD{cfg: RSVDConfig{Factors: 1}, name: "RSVD"}
	var buf bytes.Buffer
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRSVD(&buf); err == nil {
		t.Fatal("snapshot without factors did not error")
	}
}
