package mf

import (
	"testing"
)

func TestCrossValidateRSVDRejectsBadInputs(t *testing.T) {
	sp := learnableSplit(t)
	base := RSVDConfig{Factors: 4, LearningRate: 0.02, Regularization: 0.05, Epochs: 1, UseBiases: true, InitStd: 0.1, Seed: 1}
	if _, err := CrossValidateRSVD(sp.Train, base, Grid{}, 1, 1); err == nil {
		t.Fatal("folds=1 did not error")
	}
	tiny := sp.Train.SubsetUsers(nil)
	if _, err := CrossValidateRSVD(tiny, base, Grid{}, 3, 1); err == nil {
		t.Fatal("empty train set did not error")
	}
	badGrid := Grid{Factors: []int{0}, Regularization: []float64{0.01}, LearningRate: []float64{0.01}}
	if _, err := CrossValidateRSVD(sp.Train, base, badGrid, 2, 1); err == nil {
		t.Fatal("invalid grid entry did not error")
	}
}

func TestCrossValidateRSVDEvaluatesFullGrid(t *testing.T) {
	sp := learnableSplit(t)
	base := RSVDConfig{Factors: 4, LearningRate: 0.02, Regularization: 0.05, Epochs: 2, UseBiases: true, InitStd: 0.1, Seed: 1}
	grid := Grid{
		Factors:        []int{4, 8},
		Regularization: []float64{0.02, 0.1},
		LearningRate:   []float64{0.02},
	}
	results, err := CrossValidateRSVD(sp.Train, base, grid, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("evaluated %d configurations, want 4", len(results))
	}
	for _, r := range results {
		if r.MeanRMSE <= 0 || r.MeanRMSE > 3 {
			t.Fatalf("implausible mean RMSE %v for %+v", r.MeanRMSE, r.Config)
		}
		if r.Config.Epochs != base.Epochs || !r.Config.UseBiases {
			t.Fatal("base configuration fields not carried through")
		}
	}
	best, err := Best(results)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.MeanRMSE < best.MeanRMSE {
			t.Fatalf("Best did not return the minimum: %v vs %v", best.MeanRMSE, r.MeanRMSE)
		}
	}
}

func TestBestRejectsEmptyInput(t *testing.T) {
	if _, err := Best(nil); err == nil {
		t.Fatal("Best(nil) did not error")
	}
}

func TestCrossValidateRSVDDefaultGridFallback(t *testing.T) {
	// Passing an empty grid should fall back to the default grid rather than
	// evaluating nothing. Use a single fold pair count of 2 and a very small
	// custom grid via DefaultGrid trimming to keep the test fast: just verify
	// the fallback produces > 0 results with a tiny dataset and 2 folds.
	sp := learnableSplit(t)
	base := RSVDConfig{Factors: 4, LearningRate: 0.02, Regularization: 0.05, Epochs: 1, UseBiases: true, InitStd: 0.1, Seed: 1}
	grid := Grid{Factors: []int{4}, Regularization: []float64{0.05}} // LearningRate empty → default
	results, err := CrossValidateRSVD(sp.Train, base, grid, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(DefaultGrid().LearningRate) {
		t.Fatalf("expected one result per default learning rate, got %d", len(results))
	}
}
