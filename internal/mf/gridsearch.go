package mf

import (
	"fmt"
	"math"
	"math/rand"

	"ganc/internal/dataset"
)

// Hyper-parameter search for RSVD, mirroring the paper's Table V protocol:
// the candidate grids over the number of latent factors g, the
// L2-regularization coefficient λ and the learning rate η are evaluated by
// k-fold cross-validation on the train set, and the configuration with the
// lowest mean validation RMSE wins.

// Grid describes the candidate values for the RSVD hyper-parameter search.
// Empty slices fall back to the paper's grids.
type Grid struct {
	Factors        []int
	Regularization []float64
	LearningRate   []float64
}

// DefaultGrid returns the paper's cross-validation grid (Appendix A), reduced
// to the values that matter at library scale.
func DefaultGrid() Grid {
	return Grid{
		Factors:        []int{8, 20, 40, 100},
		Regularization: []float64{0.005, 0.01, 0.05, 0.1},
		LearningRate:   []float64{0.003, 0.01, 0.03},
	}
}

// GridResult is the outcome of one evaluated configuration.
type GridResult struct {
	Config RSVDConfig
	// MeanRMSE is the mean validation RMSE across folds.
	MeanRMSE float64
}

// CrossValidateRSVD evaluates every configuration in the grid with k-fold
// cross-validation over the train set and returns all results sorted is not
// guaranteed; use Best to select the winner. The base configuration supplies
// everything the grid does not vary (epochs, biases, seed).
func CrossValidateRSVD(train *dataset.Dataset, base RSVDConfig, grid Grid, folds int, seed int64) ([]GridResult, error) {
	if train.NumRatings() < folds || folds < 2 {
		return nil, fmt.Errorf("mf: need at least %d ratings and 2 folds, got %d ratings / %d folds",
			folds, train.NumRatings(), folds)
	}
	if len(grid.Factors) == 0 {
		grid.Factors = DefaultGrid().Factors
	}
	if len(grid.Regularization) == 0 {
		grid.Regularization = DefaultGrid().Regularization
	}
	if len(grid.LearningRate) == 0 {
		grid.LearningRate = DefaultGrid().LearningRate
	}

	// Build the fold splits once so every configuration sees the same folds.
	type foldPair struct{ fit, val *dataset.Dataset }
	pairs := make([]foldPair, 0, folds)
	rng := rand.New(rand.NewSource(seed))
	for f := 0; f < folds; f++ {
		// Per-user holdout with a fold-specific RNG keeps every fold's
		// validation set disjoint in expectation and every user represented
		// in the fit set.
		sp := train.SplitByUser(1-1/float64(folds), rand.New(rand.NewSource(rng.Int63())))
		pairs = append(pairs, foldPair{fit: sp.Train, val: sp.Test})
	}

	var results []GridResult
	for _, g := range grid.Factors {
		for _, reg := range grid.Regularization {
			for _, lr := range grid.LearningRate {
				cfg := base
				cfg.Factors, cfg.Regularization, cfg.LearningRate = g, reg, lr
				if err := cfg.Validate(); err != nil {
					return nil, err
				}
				sum, used := 0.0, 0
				for _, p := range pairs {
					if p.val.NumRatings() == 0 {
						continue
					}
					m, err := TrainRSVD(p.fit, cfg)
					if err != nil {
						return nil, err
					}
					sum += m.RMSE(p.val)
					used++
				}
				if used == 0 {
					continue
				}
				results = append(results, GridResult{Config: cfg, MeanRMSE: sum / float64(used)})
			}
		}
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("mf: cross-validation produced no results (empty validation folds)")
	}
	return results, nil
}

// Best returns the configuration with the lowest mean validation RMSE.
func Best(results []GridResult) (GridResult, error) {
	if len(results) == 0 {
		return GridResult{}, fmt.Errorf("mf: Best called with no results")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.MeanRMSE < best.MeanRMSE || (r.MeanRMSE == best.MeanRMSE && r.Config.Factors < best.Config.Factors) {
			best = r
		}
	}
	if math.IsNaN(best.MeanRMSE) {
		return GridResult{}, fmt.Errorf("mf: best configuration has NaN RMSE")
	}
	return best, nil
}
