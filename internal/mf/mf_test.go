package mf

import (
	"math"
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// learnableSplit generates a small but learnable synthetic dataset and splits
// it, shared by the RSVD and PSVD tests.
func learnableSplit(t *testing.T) *dataset.Split {
	t.Helper()
	cfg := synth.ML100K(0.25)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitByUser(0.8, rand.New(rand.NewSource(5)))
}

func TestRSVDConfigValidate(t *testing.T) {
	good := DefaultRSVDConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*RSVDConfig){
		func(c *RSVDConfig) { c.Factors = 0 },
		func(c *RSVDConfig) { c.LearningRate = 0 },
		func(c *RSVDConfig) { c.Regularization = -1 },
		func(c *RSVDConfig) { c.Epochs = 0 },
		func(c *RSVDConfig) { c.InitStd = 0 },
	}
	for k, mutate := range bad {
		cfg := DefaultRSVDConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", k)
		}
	}
}

func TestTrainRSVDRejectsEmptyData(t *testing.T) {
	b := dataset.NewBuilder("empty-ish", 1)
	b.AddIDs(0, 0, 3)
	d := b.Build()
	empty := d.SubsetUsers(nil)
	if _, err := TrainRSVD(empty, DefaultRSVDConfig()); err == nil {
		t.Fatal("training on empty data did not error")
	}
}

func TestRSVDLearnsBetterThanGlobalMean(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{
		Factors: 16, LearningRate: 0.01, Regularization: 0.05,
		Epochs: 25, UseBiases: true, InitStd: 0.1, Seed: 3,
	}
	m, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: predicting the global train mean for every test rating.
	mean := sp.Train.MeanRating()
	baseSum := 0.0
	for _, r := range sp.Test.Ratings() {
		e := r.Value - mean
		baseSum += e * e
	}
	baseRMSE := math.Sqrt(baseSum / float64(sp.Test.NumRatings()))
	modelRMSE := m.RMSE(sp.Test)
	if modelRMSE >= baseRMSE {
		t.Fatalf("RSVD test RMSE %.4f not better than global-mean RMSE %.4f", modelRMSE, baseRMSE)
	}
	trainRMSE := m.RMSE(sp.Train)
	if trainRMSE >= baseRMSE {
		t.Fatalf("RSVD train RMSE %.4f not better than global-mean baseline %.4f", trainRMSE, baseRMSE)
	}
}

func TestRSVDDeterministicWithSeed(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 8, LearningRate: 0.02, Regularization: 0.05, Epochs: 3, UseBiases: true, InitStd: 0.1, Seed: 11}
	a, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		for i := 0; i < 5; i++ {
			if a.Score(types.UserID(u), types.ItemID(i)) != b.Score(types.UserID(u), types.ItemID(i)) {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

func TestRSVDScoreOutOfRangeFallsBackToMean(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 4, LearningRate: 0.02, Regularization: 0.05, Epochs: 2, UseBiases: true, InitStd: 0.1, Seed: 1}
	m, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Score(types.UserID(1_000_000), 0); got != sp.Train.MeanRating() {
		t.Fatalf("unknown user score = %v, want global mean %v", got, sp.Train.MeanRating())
	}
}

func TestRSVDNonNegativeVariantClampsFactors(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 8, LearningRate: 0.02, Regularization: 0.05, Epochs: 3, UseBiases: false, NonNegative: true, InitStd: 0.1, Seed: 2}
	m, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "RSVDN" {
		t.Fatalf("name = %s, want RSVDN", m.Name())
	}
	for _, row := range m.userF {
		for _, v := range row {
			if v < 0 {
				t.Fatal("non-negative variant produced negative user factor")
			}
		}
	}
	for _, row := range m.itemF {
		for _, v := range row {
			if v < 0 {
				t.Fatal("non-negative variant produced negative item factor")
			}
		}
	}
}

func TestRSVDPredictionsWithinSaneRange(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 8, LearningRate: 0.02, Regularization: 0.1, Epochs: 10, UseBiases: true, InitStd: 0.05, Seed: 4}
	m, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20 && u < sp.Train.NumUsers(); u++ {
		for i := 0; i < 20 && i < sp.Train.NumItems(); i++ {
			s := m.Score(types.UserID(u), types.ItemID(i))
			if s < -5 || s > 12 || math.IsNaN(s) {
				t.Fatalf("prediction %v far outside the rating scale", s)
			}
		}
	}
}

func TestRSVDMAEAndRMSEEmptyDataset(t *testing.T) {
	sp := learnableSplit(t)
	cfg := RSVDConfig{Factors: 4, LearningRate: 0.02, Regularization: 0.05, Epochs: 1, UseBiases: true, InitStd: 0.1, Seed: 1}
	m, err := TrainRSVD(sp.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	empty := sp.Train.SubsetUsers(nil)
	if m.RMSE(empty) != 0 || m.MAE(empty) != 0 {
		t.Fatal("error metrics on an empty dataset should be 0")
	}
	if m.MAE(sp.Test) <= 0 {
		t.Fatal("MAE on test data should be positive")
	}
	if m.Factors() != 4 {
		t.Fatalf("Factors = %d", m.Factors())
	}
}

func TestTrainPSVDValidation(t *testing.T) {
	sp := learnableSplit(t)
	if _, err := TrainPSVD(sp.Train, PSVDConfig{Factors: 0}); err == nil {
		t.Fatal("Factors=0 did not error")
	}
	empty := sp.Train.SubsetUsers(nil)
	if _, err := TrainPSVD(empty, DefaultPSVDConfig()); err == nil {
		t.Fatal("empty dataset did not error")
	}
}

func TestPSVDRankIsCappedByMatrixSize(t *testing.T) {
	b := dataset.NewBuilder("tiny", 8)
	b.AddIDs(0, 0, 5)
	b.AddIDs(0, 1, 3)
	b.AddIDs(1, 0, 4)
	b.AddIDs(1, 2, 2)
	b.AddIDs(2, 1, 1)
	d := b.Build()
	m, err := TrainPSVD(d, PSVDConfig{Factors: 100, PowerIterations: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Factors() > 3 {
		t.Fatalf("rank %d exceeds min(|U|,|I|)=3", m.Factors())
	}
	if m.Name() != "PSVD100" {
		t.Fatalf("name should reflect the requested rank, got %s", m.Name())
	}
}

func TestPSVDScoresReconstructObservedPreferences(t *testing.T) {
	// Construct a block-structured dataset: users 0-4 love items 0-4, users
	// 5-9 love items 5-9 (and rate nothing else). PureSVD at rank 2 must
	// score within-block items higher than cross-block ones.
	b := dataset.NewBuilder("block", 64)
	for u := 0; u < 10; u++ {
		for i := 0; i < 10; i++ {
			sameBlock := (u < 5) == (i < 5)
			if sameBlock && (u+i)%2 == 0 {
				b.AddIDs(types.UserID(u), types.ItemID(i), 5)
			}
		}
	}
	d := b.Build()
	m, err := TrainPSVD(d, PSVDConfig{Factors: 2, PowerIterations: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// User 0 is in the first block: unseen item 3 (same block) should beat
	// unseen item 7 (other block).
	same := m.Score(0, 3)
	cross := m.Score(0, 7)
	if same <= cross {
		t.Fatalf("PSVD did not recover block structure: same-block %.4f <= cross-block %.4f", same, cross)
	}
}

func TestPSVDScoreOutOfRange(t *testing.T) {
	sp := learnableSplit(t)
	m, err := TrainPSVD(sp.Train, PSVDConfig{Factors: 5, PowerIterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score(types.UserID(9_999_999), 0) != 0 || m.Score(0, types.ItemID(9_999_999)) != 0 {
		t.Fatal("out-of-range identifiers should score 0")
	}
}

func TestPSVDSingularValuesDescending(t *testing.T) {
	sp := learnableSplit(t)
	m, err := TrainPSVD(sp.Train, PSVDConfig{Factors: 8, PowerIterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sv := m.SingularValues()
	if len(sv) != m.Factors() {
		t.Fatalf("singular value count %d != rank %d", len(sv), m.Factors())
	}
	for k := 1; k < len(sv); k++ {
		if sv[k] > sv[k-1]+1e-9 {
			t.Fatalf("singular values not descending: %v", sv)
		}
	}
	// Mutating the returned slice must not affect the model.
	sv[0] = -1
	if m.SingularValues()[0] == -1 {
		t.Fatal("SingularValues exposed internal storage")
	}
}

func TestPSVDRankingBeatsRandomOnHeldOutItems(t *testing.T) {
	// A coarse end-to-end sanity check: averaged over every relevant held-out
	// (user, item) pair, PSVD should place the relevant item in a better
	// percentile of the catalog than the 50% a random ranker would achieve.
	// The low-rank configuration (10 factors) is used because, as the paper
	// notes, fewer factors align PureSVD more strongly with the popularity
	// signal and give it its accuracy advantage.
	sp := learnableSplit(t)
	m, err := TrainPSVD(sp.Train, PSVDConfig{Factors: 10, PowerIterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	relevant := dataset.RelevantTestItems(sp.Test, 4.0)
	sumPercentile, total := 0.0, 0
	for u := 0; u < sp.Train.NumUsers(); u++ {
		uid := types.UserID(u)
		items := relevant[uid]
		if len(items) == 0 {
			continue
		}
		for _, target := range items {
			better, checked := 0, 0
			targetScore := m.Score(uid, target)
			for i := 0; i < sp.Train.NumItems(); i += 3 { // deterministic catalog subsample
				checked++
				if m.Score(uid, types.ItemID(i)) > targetScore {
					better++
				}
			}
			sumPercentile += float64(better) / float64(checked)
			total++
		}
	}
	if total == 0 {
		t.Skip("no relevant test items at this scale")
	}
	meanPercentile := sumPercentile / float64(total)
	if meanPercentile >= 0.45 {
		t.Fatalf("PSVD places relevant held-out items at mean catalog percentile %.3f; want < 0.45 (0.5 = random)", meanPercentile)
	}
}
