package recommender

import (
	"context"
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// bulkTestDataset builds a small random dataset shared by the bulk tests.
func bulkTestDataset(seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	ratings := []types.Rating{{User: 19, Item: 39, Value: 3}}
	for k := 0; k < 400; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(20)),
			Item:  types.ItemID(rng.Intn(40)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	return dataset.FromRatings("bulk", ratings)
}

// assertBulkMatchesScore checks the BulkScorer contract: ScoreUser fills
// exactly the values the pointwise Score returns.
func assertBulkMatchesScore(t *testing.T, s Scorer, numUsers, numItems int) {
	t.Helper()
	bs, ok := s.(BulkScorer)
	if !ok {
		t.Fatalf("%s does not implement BulkScorer", s.Name())
	}
	items := make([]types.ItemID, numItems+2)
	for k := range items {
		items[k] = types.ItemID(k) // includes out-of-range items
	}
	out := make([]float64, len(items))
	for u := 0; u < numUsers; u++ {
		uid := types.UserID(u)
		bs.ScoreUser(uid, items, out)
		for k, i := range items {
			if want := s.Score(uid, i); out[k] != want {
				t.Fatalf("%s: user %d item %d: bulk %v != score %v", s.Name(), u, i, out[k], want)
			}
		}
	}
}

func TestPopBulkMatchesScore(t *testing.T) {
	d := bulkTestDataset(1)
	assertBulkMatchesScore(t, NewPop(d), d.NumUsers(), d.NumItems())
}

func TestItemAvgBulkMatchesScore(t *testing.T) {
	d := bulkTestDataset(2)
	assertBulkMatchesScore(t, NewItemAvg(d, 5), d.NumUsers(), d.NumItems())
}

func TestNormalizedScorerBulkMatchesScore(t *testing.T) {
	d := bulkTestDataset(3)
	// Wrap a deterministic inner scorer (item average) in the normalizer.
	assertBulkMatchesScore(t, NewNormalizedScorer(NewItemAvg(d, 0), d.NumItems()), d.NumUsers(), d.NumItems())
}

// plainScorer deliberately does NOT implement BulkScorer, to exercise the
// fallback adapter.
type plainScorer struct{}

func (plainScorer) Score(u types.UserID, i types.ItemID) float64 {
	return float64(int(u)*31+int(i)*7) / 97.0
}
func (plainScorer) Name() string { return "plain" }

func TestBulkScoresFallbackAdapter(t *testing.T) {
	items := []types.ItemID{3, 1, 4, 1, 5}
	out := make([]float64, len(items))
	BulkScores(plainScorer{}, 2, items, out)
	for k, i := range items {
		if want := (plainScorer{}).Score(2, i); out[k] != want {
			t.Fatalf("fallback mismatch at %d: %v != %v", k, out[k], want)
		}
	}
}

func TestBulkScoresPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	BulkScores(plainScorer{}, 0, []types.ItemID{1, 2}, make([]float64, 1))
}

func TestScorerTopNRecommendFromMatchesRecommend(t *testing.T) {
	d := bulkTestDataset(4)
	model := &ScorerTopN{Scorer: NewItemAvg(d, 2), NumItems: d.NumItems()}
	var cand []types.ItemID
	for u := 0; u < d.NumUsers(); u++ {
		uid := types.UserID(u)
		cand = d.AppendCandidates(uid, cand[:0])
		got := model.RecommendFrom(uid, 7, cand)
		want := model.Recommend(uid, 7, d.UserItemSet(uid))
		if len(got) != len(want) {
			t.Fatalf("user %d: lengths differ: %v vs %v", u, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("user %d: RecommendFrom %v != Recommend %v", u, got, want)
			}
		}
	}
}

func TestPopRecommendFromMatchesRecommend(t *testing.T) {
	d := bulkTestDataset(5)
	pop := NewPop(d)
	var cand []types.ItemID
	for u := 0; u < d.NumUsers(); u++ {
		uid := types.UserID(u)
		cand = d.AppendCandidates(uid, cand[:0])
		got := pop.RecommendFrom(uid, 5, cand)
		want := pop.Recommend(uid, 5, d.UserItemSet(uid))
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("user %d: RecommendFrom %v != Recommend %v", u, got, want)
			}
		}
	}
}

func TestRandRecommendFromIsValid(t *testing.T) {
	d := bulkTestDataset(6)
	r := NewRand(d.NumItems(), 9)
	var cand []types.ItemID
	for u := 0; u < d.NumUsers(); u++ {
		uid := types.UserID(u)
		cand = d.AppendCandidates(uid, cand[:0])
		set := r.RecommendFrom(uid, 5, cand)
		if len(set) != 5 && len(set) != len(cand) {
			t.Fatalf("user %d: got %d items", u, len(set))
		}
		seen := map[types.ItemID]bool{}
		rated := d.UserItemSet(uid)
		for _, i := range set {
			if seen[i] {
				t.Fatalf("user %d: duplicate item %d", u, i)
			}
			seen[i] = true
			if _, bad := rated[i]; bad {
				t.Fatalf("user %d: rated item %d recommended", u, i)
			}
		}
	}
}

func TestSelectTopNScoredMatchesSelectTopN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		numItems := 30 + rng.Intn(40)
		scores := make([]float64, numItems)
		for i := range scores {
			scores[i] = float64(rng.Intn(7)) // coarse values force ties
		}
		cands := make([]types.ItemID, numItems)
		for i := range cands {
			cands[i] = types.ItemID(i)
		}
		n := 1 + rng.Intn(10)
		got := SelectTopNScored(cands, scores, n)
		want := SelectTopN(numItems, n, nil, func(i types.ItemID) float64 { return scores[i] })
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("trial %d: %v != %v", trial, got, want)
			}
		}
	}
}

func TestShardRangesCoverExactly(t *testing.T) {
	for count := 0; count <= 40; count++ {
		for workers := 1; workers <= 9; workers++ {
			ranges := ShardRanges(count, workers)
			next := 0
			for _, r := range ranges {
				if r.Lo != next || r.Hi <= r.Lo {
					t.Fatalf("count=%d workers=%d: bad range %+v (next=%d)", count, workers, r, next)
				}
				next = r.Hi
			}
			if next != count {
				t.Fatalf("count=%d workers=%d: ranges cover [0,%d), want [0,%d)", count, workers, next, count)
			}
		}
	}
}

func TestTopNEngineParallelMatchesSequential(t *testing.T) {
	d := bulkTestDataset(7)
	build := func(workers int) *TopNEngine {
		return &TopNEngine{
			Model:   &ScorerTopN{Scorer: NewItemAvg(d, 1), NumItems: d.NumItems()},
			Train:   d,
			N:       6,
			Workers: workers,
		}
	}
	seq, err := build(0).RecommendAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par, err := build(8).RecommendAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("user counts differ: %d vs %d", len(seq), len(par))
	}
	for u := range seq {
		for k := range seq[u] {
			if seq[u][k] != par[u][k] {
				t.Fatalf("user %d: %v != %v", u, seq[u], par[u])
			}
		}
	}
}

func TestTopNEngineRecommendUserUsesCandidatePipeline(t *testing.T) {
	d := bulkTestDataset(8)
	e := &TopNEngine{Model: &ScorerTopN{Scorer: NewPop(d), NumItems: d.NumItems()}, Train: d, N: 4}
	set, err := e.RecommendUser(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 4 {
		t.Fatalf("got %d items", len(set))
	}
	rated := d.UserItemSet(0)
	for _, i := range set {
		if _, bad := rated[i]; bad {
			t.Fatalf("rated item %d recommended", i)
		}
	}
}
