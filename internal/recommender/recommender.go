// Package recommender defines the interfaces every base recommendation model
// in this library implements, plus the non-personalized baselines the paper
// uses (most-popular, random, item-average) and the shared top-N selection
// machinery.
//
// Two interfaces matter downstream:
//
//   - Scorer produces a relevance score for any (user, item) pair. Latent
//     factor models (RSVD, PSVD, CofiRank) and the non-personalized models
//     all implement it. Scores are model-specific; callers that need [0,1]
//     scores use NormalizedScorer.
//   - TopN produces a ranked top-N list per user, excluding the user's train
//     items. A generic implementation over any Scorer is provided.
package recommender

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Scorer scores a single (user, item) pair. Higher is better. Scores may be
// on any scale; see NormalizedScores for a [0,1] mapping.
type Scorer interface {
	// Score returns the model's relevance score of item i for user u.
	Score(u types.UserID, i types.ItemID) float64
	// Name identifies the model in experiment output ("Pop", "RSVD", ...).
	Name() string
}

// BulkScorer is the batch companion of Scorer: one call fills a preallocated
// dense buffer with a user's scores for an explicit item slice. It is the
// contract the index-contiguous candidate pipeline is built on — a user's
// whole candidate set is scored in one call instead of one virtual dispatch
// per (user, item) pair, letting implementations hoist per-user work (factor
// rows, rating lookups, normalization ranges) out of the item loop.
//
// Contract: out must have len(out) == len(items); out[k] receives the score
// of items[k] and every value must equal what Score(u, items[k]) returns at
// the same model state. Implementations must be safe for concurrent use when
// the underlying Scorer is.
type BulkScorer interface {
	Scorer
	// ScoreUser fills out[k] with the score of items[k] for user u.
	ScoreUser(u types.UserID, items []types.ItemID, out []float64)
}

// BulkScores fills out with s's scores for items, using the BulkScorer fast
// path when s implements it and falling back to one Score call per item
// otherwise. It panics if len(out) != len(items), mirroring copy-style APIs.
func BulkScores(s Scorer, u types.UserID, items []types.ItemID, out []float64) {
	if len(out) != len(items) {
		panic(fmt.Sprintf("recommender: BulkScores buffer length %d != item count %d", len(out), len(items)))
	}
	if bs, ok := s.(BulkScorer); ok {
		bs.ScoreUser(u, items, out)
		return
	}
	for k, i := range items {
		out[k] = s.Score(u, i)
	}
}

// BulkScorer32 is the reduced-precision companion of BulkScorer: the same
// batch contract, but scores land in a float32 buffer so the hot path can
// run the float32/int8 kernel tiers end to end without a float64 conversion
// pass. Only models whose ScoringPrecision is not PrecisionF64 serve real
// reduced-precision scores through it; Bulk32For gates on that.
//
// Contract: out must have len(out) == len(items); out[k] receives the score
// of items[k]. Unlike BulkScorer's float64 tier, values are NOT required to
// be bit-identical to Score — they must agree with it to the active tier's
// documented tolerance (DESIGN.md §7, §12).
type BulkScorer32 interface {
	Scorer
	// ScoreUser32 fills out[k] with the score of items[k] for user u.
	ScoreUser32(u types.UserID, items []types.ItemID, out []float32)
}

// PrecisionScorer is implemented by models whose bulk path can run at a
// reduced numeric precision (float32 blocks or int8 quantized blocks).
type PrecisionScorer interface {
	// ScoringPrecision reports the tier the model's bulk path currently
	// serves at. Pointwise Score always stays float64.
	ScoringPrecision() types.ScoringPrecision
}

// Bulk32For resolves the float32 bulk path of s: non-nil only when s
// implements BulkScorer32 AND declares a non-f64 scoring precision. At
// PrecisionF64 the float64 path is authoritative (bit-identical to Score),
// so the 32-bit path is never selected for it.
func Bulk32For(s Scorer) (BulkScorer32, bool) {
	bs, ok := s.(BulkScorer32)
	if !ok {
		return nil, false
	}
	ps, ok := s.(PrecisionScorer)
	if !ok || ps.ScoringPrecision() == types.PrecisionF64 {
		return nil, false
	}
	return bs, true
}

// TopN generates ranked recommendation lists.
type TopN interface {
	// Recommend returns the top-N unseen items for user u, ranked best first.
	// Items in exclude (typically the user's train items) are never returned.
	Recommend(u types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet
	Name() string
}

// TopNFrom is the candidate-pipeline extension of TopN: models that can rank
// an explicit pre-filtered candidate slice (typically
// dataset.AppendCandidates, the catalog minus the user's train items) without
// consulting an exclusion map. Engines prefer this path because the candidate
// slice is reusable across users while the map is a per-call allocation.
type TopNFrom interface {
	// RecommendFrom returns the top-n items among candidates, ranked best
	// first. candidates must be sorted in ascending ItemID order and free of
	// duplicates; the model never returns an item outside it.
	RecommendFrom(u types.UserID, n int, candidates []types.ItemID) types.TopNSet
}

// scoredHeap is a min-heap over ScoredItem used for top-N selection.
type scoredHeap []types.ScoredItem

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(a, b int) bool {
	if h[a].Score != h[b].Score {
		return h[a].Score < h[b].Score
	}
	return h[a].Item > h[b].Item
}
func (h scoredHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(types.ScoredItem)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SelectTopN returns the n highest-scoring items among candidates according
// to score, excluding any item in exclude. Ties break toward the smaller item
// identifier so results are deterministic. The candidates callback is invoked
// once per item identifier in [0, numItems).
func SelectTopN(numItems, n int, exclude map[types.ItemID]struct{}, score func(types.ItemID) float64) types.TopNSet {
	if n <= 0 {
		return nil
	}
	h := make(scoredHeap, 0, n+1)
	for idx := 0; idx < numItems; idx++ {
		item := types.ItemID(idx)
		if _, skip := exclude[item]; skip {
			continue
		}
		s := score(item)
		if len(h) < n {
			heap.Push(&h, types.ScoredItem{Item: item, Score: s})
			continue
		}
		// Replace the current minimum when strictly better, or equal score
		// with smaller identifier (to match SortScoredDesc tie-breaking).
		min := h[0]
		if s > min.Score || (s == min.Score && item < min.Item) {
			h[0] = types.ScoredItem{Item: item, Score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]types.ScoredItem, len(h))
	copy(out, h)
	types.SortScoredDesc(out)
	set := make(types.TopNSet, len(out))
	for k, si := range out {
		set[k] = si.Item
	}
	return set
}

// SelectTopNFrom returns the n best items of an explicit candidate slice
// according to score(k, item), where k is the candidate's position. Ties
// break toward the smaller item identifier, matching SelectTopN.
func SelectTopNFrom(candidates []types.ItemID, n int, score func(k int, i types.ItemID) float64) types.TopNSet {
	if n <= 0 {
		return nil
	}
	h := make(scoredHeap, 0, n+1)
	for k, item := range candidates {
		s := score(k, item)
		if len(h) < n {
			heap.Push(&h, types.ScoredItem{Item: item, Score: s})
			continue
		}
		min := h[0]
		if s > min.Score || (s == min.Score && item < min.Item) {
			h[0] = types.ScoredItem{Item: item, Score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]types.ScoredItem, len(h))
	copy(out, h)
	types.SortScoredDesc(out)
	set := make(types.TopNSet, len(out))
	for k, si := range out {
		set[k] = si.Item
	}
	return set
}

// SelectTopNScored returns the n best items of candidates given their
// pre-computed scores (scores[k] belongs to candidates[k]).
func SelectTopNScored(candidates []types.ItemID, scores []float64, n int) types.TopNSet {
	return SelectTopNFrom(candidates, n, func(k int, _ types.ItemID) float64 { return scores[k] })
}

// scored32 is the float32 counterpart of types.ScoredItem, used by the
// reduced-precision selection path so scores never round-trip through
// float64.
type scored32 struct {
	item  types.ItemID
	score float32
}

// less32 orders a min-heap of scored32: smaller score first, and on equal
// scores the LARGER item first (so the heap minimum is the entry top-N
// selection should evict, matching scoredHeap.Less).
func less32(a, b scored32) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.item > b.item
}

func siftUp32(h []scored32, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less32(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown32(h []scored32, i int) {
	for {
		left := 2*i + 1
		if left >= len(h) {
			return
		}
		least := left
		if right := left + 1; right < len(h) && less32(h[right], h[left]) {
			least = right
		}
		if !less32(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// SelectTopNScored32 is SelectTopNScored over float32 scores: same
// replacement rule and the same final ordering (score descending, ties
// toward the smaller item identifier), on a hand-rolled heap so the float32
// hot path has no interface boxing. The final ordering uses an insertion
// sort — n is small, and a sort.Slice closure would be the path's only
// allocation besides the result.
func SelectTopNScored32(candidates []types.ItemID, scores []float32, n int) types.TopNSet {
	if n <= 0 {
		return nil
	}
	h := make([]scored32, 0, n)
	for k, item := range candidates {
		s := scores[k]
		if len(h) < n {
			h = append(h, scored32{item: item, score: s})
			siftUp32(h, len(h)-1)
			continue
		}
		min := h[0]
		if s > min.score || (s == min.score && item < min.item) {
			h[0] = scored32{item: item, score: s}
			siftDown32(h, 0)
		}
	}
	sortScored32Desc(h)
	set := make(types.TopNSet, len(h))
	for k, si := range h {
		set[k] = si.item
	}
	return set
}

// sortScored32Desc insertion-sorts by score descending, ties toward the
// smaller item identifier (the SortScoredDesc order on scored32).
func sortScored32Desc(h []scored32) {
	for i := 1; i < len(h); i++ {
		e := h[i]
		j := i - 1
		for j >= 0 && (h[j].score < e.score || (h[j].score == e.score && h[j].item > e.item)) {
			h[j+1] = h[j]
			j--
		}
		h[j+1] = e
	}
}

// TopK32 is a streaming top-k selector over (item, float32 score) pairs with
// SelectTopNScored32's replacement rule, for hot paths that rank while
// enumerating instead of materializing a candidate slice first. The zero
// value is ready after Reset; the heap storage is retained across Resets so
// a pooled TopK32 never allocates in steady state.
type TopK32 struct {
	k int
	h []scored32
}

// Reset empties the selector and sets its capacity to k.
func (t *TopK32) Reset(k int) {
	t.k = k
	t.h = t.h[:0]
}

// Push offers one (item, score) pair.
func (t *TopK32) Push(item types.ItemID, s float32) {
	if len(t.h) < t.k {
		t.h = append(t.h, scored32{item: item, score: s})
		siftUp32(t.h, len(t.h)-1)
		return
	}
	if t.k <= 0 {
		return
	}
	min := t.h[0]
	if s > min.score || (s == min.score && item < min.item) {
		t.h[0] = scored32{item: item, score: s}
		siftDown32(t.h, 0)
	}
}

// AppendTo appends the selected pairs (in unspecified order) to items and
// scores and returns the extended slices.
func (t *TopK32) AppendTo(items []types.ItemID, scores []float32) ([]types.ItemID, []float32) {
	for _, e := range t.h {
		items = append(items, e.item)
		scores = append(scores, e.score)
	}
	return items, scores
}

// Threshold returns the current admission threshold: the minimum entry while
// the selector is full, or a −Inf score while it is not. A candidate
// (item, s) changes the selection iff s > score, or s == score and
// item < minItem — the replacement rule — so hot enumeration loops cache the
// threshold in locals, reject most candidates with two inlined comparisons,
// and only pay the Push call (refreshing the cached threshold afterwards)
// for candidates that pass.
func (t *TopK32) Threshold() (minItem types.ItemID, score float32) {
	if len(t.h) < t.k {
		return 0, float32(math.Inf(-1))
	}
	return t.h[0].item, t.h[0].score
}

// less64 orders the TopK64 min-heap: smaller score first, ties with the
// larger item first (the entry top-N selection should evict), matching
// scoredHeap.Less.
func less64(a, b types.ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Item > b.Item
}

func siftUp64(h []types.ScoredItem, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less64(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown64(h []types.ScoredItem, i int) {
	for {
		left := 2*i + 1
		if left >= len(h) {
			return
		}
		least := left
		if right := left + 1; right < len(h) && less64(h[right], h[left]) {
			least = right
		}
		if !less64(h[least], h[i]) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// TopK64 is the float64 counterpart of TopK32, with SelectTopNScored's
// replacement rule.
type TopK64 struct {
	k int
	h []types.ScoredItem
}

// Reset empties the selector and sets its capacity to k.
func (t *TopK64) Reset(k int) {
	t.k = k
	t.h = t.h[:0]
}

// Push offers one (item, score) pair.
func (t *TopK64) Push(item types.ItemID, s float64) {
	if len(t.h) < t.k {
		t.h = append(t.h, types.ScoredItem{Item: item, Score: s})
		siftUp64(t.h, len(t.h)-1)
		return
	}
	if t.k <= 0 {
		return
	}
	min := t.h[0]
	if s > min.Score || (s == min.Score && item < min.Item) {
		t.h[0] = types.ScoredItem{Item: item, Score: s}
		siftDown64(t.h, 0)
	}
}

// AppendTo appends the selected pairs (in unspecified order) to items and
// scores and returns the extended slices.
func (t *TopK64) AppendTo(items []types.ItemID, scores []float64) ([]types.ItemID, []float64) {
	for _, e := range t.h {
		items = append(items, e.Item)
		scores = append(scores, e.Score)
	}
	return items, scores
}

// Threshold is TopK32.Threshold for the float64 selector.
func (t *TopK64) Threshold() (minItem types.ItemID, score float64) {
	if len(t.h) < t.k {
		return 0, math.Inf(-1)
	}
	return t.h[0].Item, t.h[0].Score
}

// scoreBufPool recycles the per-call score buffers of the candidate ranking
// path, so concurrent RecommendFrom calls (the serving layer) do not allocate
// one catalog-sized slice per request.
var scoreBufPool = sync.Pool{New: func() interface{} { return new([]float64) }}

func getScoreBuf(n int) *[]float64 {
	bp := scoreBufPool.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// scoreBuf32Pool is the float32 score arena pool of the reduced-precision
// path. Like scoreBufPool it amortizes catalog-sized buffers across
// concurrent requests; each TopNEngine worker's sequential Get/Put cycle
// keeps one arena hot per worker without any per-worker bookkeeping.
var scoreBuf32Pool = sync.Pool{New: func() interface{} { return new([]float32) }}

func getScoreBuf32(n int) *[]float32 {
	bp := scoreBuf32Pool.Get().(*[]float32)
	if cap(*bp) < n {
		*bp = make([]float32, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// ScorerTopN adapts any Scorer into a TopN by exhaustively scoring the item
// space (the paper's "all unrated items" ranking protocol).
type ScorerTopN struct {
	Scorer   Scorer
	NumItems int
}

// Recommend implements TopN.
func (s *ScorerTopN) Recommend(u types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	return SelectTopN(s.NumItems, n, exclude, func(i types.ItemID) float64 {
		return s.Scorer.Score(u, i)
	})
}

// RecommendFrom implements TopNFrom: the candidates are scored in one bulk
// call into a pooled arena and the top n selected from it. Models serving a
// reduced precision tier (Bulk32For) run the float32 arena end to end —
// scoring kernel through heap selection — with no float64 conversion.
func (s *ScorerTopN) RecommendFrom(u types.UserID, n int, candidates []types.ItemID) types.TopNSet {
	if bs32, ok := Bulk32For(s.Scorer); ok {
		bp := getScoreBuf32(len(candidates))
		defer scoreBuf32Pool.Put(bp)
		bs32.ScoreUser32(u, candidates, *bp)
		return SelectTopNScored32(candidates, *bp, n)
	}
	bp := getScoreBuf(len(candidates))
	defer scoreBufPool.Put(bp)
	BulkScores(s.Scorer, u, candidates, *bp)
	return SelectTopNScored(candidates, *bp, n)
}

// Name implements TopN.
func (s *ScorerTopN) Name() string { return s.Scorer.Name() }

// --- Non-personalized baselines ---------------------------------------------

// Pop recommends items by train-set popularity (the paper's "Most popular"
// accuracy recommender). Its score for an item is the item's rating count.
type Pop struct {
	pop  []int
	name string
}

// NewPop builds the popularity model from the train set.
func NewPop(train *dataset.Dataset) *Pop {
	return &Pop{pop: train.PopularityVector(), name: "Pop"}
}

// NewPopFromCounts builds the popularity model from an explicit per-item
// rating-count vector (indexed by ItemID). The streaming-ingestion layer
// maintains such counts incrementally and rebuilds the model from them
// instead of recounting the whole dataset; the persistence layer restores
// them from a snapshot. The slice is copied.
func NewPopFromCounts(counts []int) *Pop {
	pop := make([]int, len(counts))
	copy(pop, counts)
	return &Pop{pop: pop, name: "Pop"}
}

// Counts returns a copy of the per-item rating counts backing the model (the
// quantity persisted in engine snapshots).
func (p *Pop) Counts() []int {
	out := make([]int, len(p.pop))
	copy(out, p.pop)
	return out
}

// Score implements Scorer; the score is the raw popularity count.
func (p *Pop) Score(_ types.UserID, i types.ItemID) float64 {
	if int(i) < 0 || int(i) >= len(p.pop) {
		return 0
	}
	return float64(p.pop[i])
}

// ScoreUser implements BulkScorer: a vectorized popularity lookup.
func (p *Pop) ScoreUser(_ types.UserID, items []types.ItemID, out []float64) {
	for k, i := range items {
		if int(i) < 0 || int(i) >= len(p.pop) {
			out[k] = 0
			continue
		}
		out[k] = float64(p.pop[i])
	}
}

// Name implements Scorer.
func (p *Pop) Name() string { return p.name }

// Recommend implements TopN directly (slightly faster than going through
// ScorerTopN since the scores do not depend on the user).
func (p *Pop) Recommend(_ types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	return SelectTopN(len(p.pop), n, exclude, func(i types.ItemID) float64 { return float64(p.pop[i]) })
}

// RecommendFrom implements TopNFrom over an explicit candidate slice.
func (p *Pop) RecommendFrom(_ types.UserID, n int, candidates []types.ItemID) types.TopNSet {
	return SelectTopNFrom(candidates, n, func(_ int, i types.ItemID) float64 {
		if int(i) < 0 || int(i) >= len(p.pop) {
			return 0
		}
		return float64(p.pop[i])
	})
}

// Rand recommends unseen items uniformly at random. It has maximal coverage
// and minimal accuracy, and anchors the coverage end of every trade-off plot
// in the paper.
type Rand struct {
	numItems int
	rng      *rand.Rand
	name     string
}

// NewRand builds the random recommender over a catalog of numItems items.
func NewRand(numItems int, seed int64) *Rand {
	return &Rand{numItems: numItems, rng: rand.New(rand.NewSource(seed)), name: "Rand"}
}

// Score implements Scorer with a uniform random score. Successive calls for
// the same pair return different values; Rand exists for ranking, not for
// reproducible pointwise scoring.
func (r *Rand) Score(_ types.UserID, _ types.ItemID) float64 { return r.rng.Float64() }

// Name implements Scorer.
func (r *Rand) Name() string { return r.name }

// Recommend implements TopN by sampling n distinct unseen items.
func (r *Rand) Recommend(_ types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	if n <= 0 {
		return nil
	}
	// Reservoir-sample n items from the eligible set.
	out := make(types.TopNSet, 0, n)
	seen := 0
	for idx := 0; idx < r.numItems; idx++ {
		item := types.ItemID(idx)
		if _, skip := exclude[item]; skip {
			continue
		}
		seen++
		if len(out) < n {
			out = append(out, item)
			continue
		}
		j := r.rng.Intn(seen)
		if j < n {
			out[j] = item
		}
	}
	// Shuffle so position carries no popularity information.
	r.rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// RecommendFrom implements TopNFrom by reservoir-sampling n candidates.
func (r *Rand) RecommendFrom(_ types.UserID, n int, candidates []types.ItemID) types.TopNSet {
	if n <= 0 {
		return nil
	}
	out := make(types.TopNSet, 0, n)
	for seen, item := range candidates {
		if len(out) < n {
			out = append(out, item)
			continue
		}
		if j := r.rng.Intn(seen + 1); j < n {
			out[j] = item
		}
	}
	r.rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// ItemAvg scores items by their mean train rating, shrunk toward the global
// mean for rarely rated items (a damped mean with pseudo-count lambda). The
// RBT re-ranker's "Avg" criterion uses it.
type ItemAvg struct {
	avg    []float64
	lambda float64
	name   string
}

// NewItemAvg computes damped item means from the train set. lambda is the
// shrinkage pseudo-count; 0 gives raw means.
func NewItemAvg(train *dataset.Dataset, lambda float64) *ItemAvg {
	global := train.MeanRating()
	sums := make([]float64, train.NumItems())
	counts := make([]int, train.NumItems())
	for i := 0; i < train.NumItems(); i++ {
		idxs := train.ItemRatings(types.ItemID(i))
		for _, idx := range idxs {
			sums[i] += train.Rating(idx).Value
		}
		counts[i] = len(idxs)
	}
	return NewItemAvgFromStats(sums, counts, lambda, global)
}

// NewItemAvgFromStats builds the damped-mean model from explicit per-item
// rating sums and counts plus the global mean. The streaming-ingestion layer
// maintains these statistics incrementally (one add per event) and rebuilds
// the model from them without rescanning the dataset. sums and counts must
// have equal length; both are consumed read-only.
func NewItemAvgFromStats(sums []float64, counts []int, lambda, global float64) *ItemAvg {
	avg := make([]float64, len(sums))
	for i := range sums {
		avg[i] = (sums[i] + lambda*global) / (float64(counts[i]) + lambdaOrOne(lambda, counts[i]))
	}
	return &ItemAvg{avg: avg, lambda: lambda, name: "ItemAvg"}
}

// NewItemAvgFromAverages restores the model directly from its damped means
// (the quantity persisted in engine snapshots). The slice is copied.
func NewItemAvgFromAverages(avg []float64, lambda float64) *ItemAvg {
	out := make([]float64, len(avg))
	copy(out, avg)
	return &ItemAvg{avg: out, lambda: lambda, name: "ItemAvg"}
}

// Averages returns a copy of the per-item damped means.
func (a *ItemAvg) Averages() []float64 {
	out := make([]float64, len(a.avg))
	copy(out, a.avg)
	return out
}

// Lambda returns the shrinkage pseudo-count the model was built with.
func (a *ItemAvg) Lambda() float64 { return a.lambda }

func lambdaOrOne(lambda float64, n int) float64 {
	if lambda == 0 && n == 0 {
		return 1 // avoid 0/0 for never-rated items; their mean is 0
	}
	return lambda
}

// Score implements Scorer.
func (a *ItemAvg) Score(_ types.UserID, i types.ItemID) float64 {
	if int(i) < 0 || int(i) >= len(a.avg) {
		return 0
	}
	return a.avg[i]
}

// ScoreUser implements BulkScorer: a vectorized damped-mean lookup.
func (a *ItemAvg) ScoreUser(_ types.UserID, items []types.ItemID, out []float64) {
	for k, i := range items {
		if int(i) < 0 || int(i) >= len(a.avg) {
			out[k] = 0
			continue
		}
		out[k] = a.avg[i]
	}
}

// Name implements Scorer.
func (a *ItemAvg) Name() string { return a.name }

// Avg returns the damped mean of item i (same value Score returns).
func (a *ItemAvg) Avg(i types.ItemID) float64 { return a.Score(0, i) }

// --- Score normalization -----------------------------------------------------

// NormalizedScorer wraps a Scorer and rescales each user's scores over the
// whole catalog to [0,1] by min–max normalization, as the paper does before
// plugging predicted ratings into the GANC value function. Normalization
// vectors are computed lazily per user and cached. It is safe for concurrent
// use provided the wrapped Scorer is (the latent-factor models are read-only
// after training).
type NormalizedScorer struct {
	inner    Scorer
	numItems int
	mu       sync.Mutex
	cacheMin map[types.UserID]float64
	cacheSpn map[types.UserID]float64

	// catalog is the [0..numItems) identity slice the bulk range computation
	// scores against, built once on first use and shared read-only.
	catalogOnce sync.Once
	catalog     []types.ItemID
}

// NewNormalizedScorer wraps inner for a catalog of numItems items.
func NewNormalizedScorer(inner Scorer, numItems int) *NormalizedScorer {
	return &NormalizedScorer{
		inner:    inner,
		numItems: numItems,
		cacheMin: make(map[types.UserID]float64),
		cacheSpn: make(map[types.UserID]float64),
	}
}

// Score implements Scorer, returning the inner score min–max normalized over
// the user's full catalog scores.
func (n *NormalizedScorer) Score(u types.UserID, i types.ItemID) float64 {
	min, span := n.userRange(u)
	if span == 0 {
		return 0
	}
	v := (n.inner.Score(u, i) - min) / span
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ScoreUser implements BulkScorer: the normalization range is resolved once
// and the inner scorer's bulk path fills the buffer before the min–max map.
func (n *NormalizedScorer) ScoreUser(u types.UserID, items []types.ItemID, out []float64) {
	min, span := n.userRange(u)
	BulkScores(n.inner, u, items, out)
	if span == 0 {
		for k := range out {
			out[k] = 0
		}
		return
	}
	for k := range out {
		v := (out[k] - min) / span
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[k] = v
	}
}

// ScoreUser32 implements BulkScorer32 by normalizing the inner model's
// float32 bulk scores in float32 arithmetic. Only meaningful when the inner
// model serves a reduced precision tier (see ScoringPrecision); the
// normalization range itself is the cached float64 pair, truncated.
func (n *NormalizedScorer) ScoreUser32(u types.UserID, items []types.ItemID, out []float32) {
	min, span := n.userRange(u)
	if bs32, ok := Bulk32For(n.inner); ok {
		bs32.ScoreUser32(u, items, out)
	} else {
		bp := getScoreBuf(len(items))
		BulkScores(n.inner, u, items, *bp)
		for k, v := range *bp {
			out[k] = float32(v)
		}
		scoreBufPool.Put(bp)
	}
	if span == 0 {
		for k := range out {
			out[k] = 0
		}
		return
	}
	min32, inv32 := float32(min), 1/float32(span)
	for k := range out {
		v := (out[k] - min32) * inv32
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		out[k] = v
	}
}

// ScoringPrecision implements PrecisionScorer by delegating to the wrapped
// model; wrappers never change the tier, only the scale of the scores.
func (n *NormalizedScorer) ScoringPrecision() types.ScoringPrecision {
	if ps, ok := n.inner.(PrecisionScorer); ok {
		return ps.ScoringPrecision()
	}
	return types.PrecisionF64
}

func (n *NormalizedScorer) userRange(u types.UserID) (min, span float64) {
	n.mu.Lock()
	if m, ok := n.cacheMin[u]; ok {
		spn := n.cacheSpn[u]
		n.mu.Unlock()
		return m, spn
	}
	n.mu.Unlock()
	min, max := 0.0, 0.0
	if bs, ok := n.inner.(BulkScorer); ok && n.numItems > 0 {
		// Bulk path: score the whole catalog in one call into a pooled buffer.
		n.catalogOnce.Do(func() {
			n.catalog = make([]types.ItemID, n.numItems)
			for idx := range n.catalog {
				n.catalog[idx] = types.ItemID(idx)
			}
		})
		bp := getScoreBuf(n.numItems)
		bs.ScoreUser(u, n.catalog, *bp)
		for idx, s := range *bp {
			if idx == 0 || s < min {
				min = s
			}
			if idx == 0 || s > max {
				max = s
			}
		}
		scoreBufPool.Put(bp)
	} else {
		for idx := 0; idx < n.numItems; idx++ {
			s := n.inner.Score(u, types.ItemID(idx))
			if idx == 0 || s < min {
				min = s
			}
			if idx == 0 || s > max {
				max = s
			}
		}
	}
	n.mu.Lock()
	n.cacheMin[u] = min
	n.cacheSpn[u] = max - min
	n.mu.Unlock()
	return min, max - min
}

// Name implements Scorer.
func (n *NormalizedScorer) Name() string { return n.inner.Name() }

// --- Batch recommendation helpers --------------------------------------------

// recommendOne resolves one user's list through the candidate pipeline when
// the model supports it (TopNFrom + a reusable candidate buffer) and the
// legacy exclusion-map path otherwise. It returns the possibly-grown buffer.
func recommendOne(model TopN, train *dataset.Dataset, u types.UserID, n int, candBuf []types.ItemID) (types.TopNSet, []types.ItemID) {
	if cm, ok := model.(TopNFrom); ok {
		candBuf = train.AppendCandidates(u, candBuf[:0])
		return cm.RecommendFrom(u, n, candBuf), candBuf
	}
	return model.Recommend(u, n, train.UserItemSet(u)), candBuf
}

// RecommendAll produces the top-N collection for every user in the train set
// using model, excluding each user's train items (the all-unrated-items
// protocol).
func RecommendAll(model TopN, train *dataset.Dataset, n int) types.Recommendations {
	recs := make(types.Recommendations, train.NumUsers())
	var candBuf []types.ItemID
	for u := 0; u < train.NumUsers(); u++ {
		uid := types.UserID(u)
		recs[uid], candBuf = recommendOne(model, train, uid, n, candBuf)
	}
	return recs
}

// TopNEngine adapts any TopN model into the Engine shape shared by the facade
// and the serving layer: per-user on-demand recommendation plus batch
// generation, both excluding each user's train items. The zero value is not
// usable; Model, Train and N are required.
type TopNEngine struct {
	// Model produces the ranked lists. Models implementing TopNFrom are
	// served through the index-contiguous candidate pipeline.
	Model TopN
	// Train supplies the user universe and per-user exclusion sets.
	Train *dataset.Dataset
	// N is the default list size when a request passes n ≤ 0.
	N int
	// Workers shards RecommendAll over user ranges; values ≤ 1 run
	// sequentially. Leave at 0 for models whose scoring is not safe for
	// concurrent use (e.g. Rand's shared rng).
	Workers int
}

// Name identifies the underlying model.
func (e *TopNEngine) Name() string { return e.Model.Name() }

// TopN returns the engine's default list size.
func (e *TopNEngine) TopN() int { return e.N }

// RecommendUser computes one user's list on demand.
func (e *TopNEngine) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= e.Train.NumUsers() {
		return nil, fmt.Errorf("recommender: user %d out of range [0,%d)", u, e.Train.NumUsers())
	}
	if n <= 0 {
		n = e.N
	}
	bp := candBufPool.Get().(*[]types.ItemID)
	set, buf := recommendOne(e.Model, e.Train, u, n, *bp)
	*bp = buf
	candBufPool.Put(bp)
	return set, nil
}

// candBufPool recycles candidate buffers across concurrent RecommendUser
// calls, so the online serving hot path does not allocate one catalog-sized
// slice per request.
var candBufPool = sync.Pool{New: func() interface{} { return new([]types.ItemID) }}

// RecommendAll generates the full collection. With Workers > 1 the user space
// is split into contiguous ranges, one goroutine per range, each reusing its
// own candidate buffer; per-user results land in a shared slice so no mutex
// is needed. Cancellation is checked between users.
func (e *TopNEngine) RecommendAll(ctx context.Context) (types.Recommendations, error) {
	numUsers := e.Train.NumUsers()
	sets := make([]types.TopNSet, numUsers)
	workers := e.Workers
	if workers > numUsers {
		workers = numUsers
	}
	if workers <= 1 {
		var candBuf []types.ItemID
		for u := 0; u < numUsers; u++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sets[u], candBuf = recommendOne(e.Model, e.Train, types.UserID(u), e.N, candBuf)
		}
	} else {
		var wg sync.WaitGroup
		for _, r := range ShardRanges(numUsers, workers) {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				var candBuf []types.ItemID
				for u := lo; u < hi; u++ {
					if ctx.Err() != nil {
						return
					}
					sets[u], candBuf = recommendOne(e.Model, e.Train, types.UserID(u), e.N, candBuf)
				}
			}(r.Lo, r.Hi)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	recs := make(types.Recommendations, numUsers)
	for u, set := range sets {
		recs[types.UserID(u)] = set
	}
	return recs, nil
}

// Range is one contiguous [Lo, Hi) user shard of a parallel sweep.
type Range struct{ Lo, Hi int }

// ShardRanges splits [0, count) into at most workers near-equal contiguous
// ranges. Every shard is non-empty.
func ShardRanges(count, workers int) []Range {
	if workers < 1 {
		workers = 1
	}
	if workers > count {
		workers = count
	}
	out := make([]Range, 0, workers)
	for w := 0; w < workers; w++ {
		lo := count * w / workers
		hi := count * (w + 1) / workers
		if lo < hi {
			out = append(out, Range{Lo: lo, Hi: hi})
		}
	}
	return out
}

// Describe returns a one-line description of a recommendation collection,
// useful for logs and CLI output.
func Describe(recs types.Recommendations, numItems int) string {
	distinct := len(recs.DistinctItems())
	return fmt.Sprintf("%d users, %d distinct items recommended (%.1f%% of catalog)",
		recs.NumUsers(), distinct, 100*float64(distinct)/float64(maxInt(numItems, 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SortItemsByScoreDesc is a convenience wrapper used by re-rankers that need
// a full ranking rather than just the top N.
func SortItemsByScoreDesc(items []types.ItemID, score func(types.ItemID) float64) {
	sort.Slice(items, func(a, b int) bool {
		sa, sb := score(items[a]), score(items[b])
		if sa != sb {
			return sa > sb
		}
		return items[a] < items[b]
	})
}
