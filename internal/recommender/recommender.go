// Package recommender defines the interfaces every base recommendation model
// in this library implements, plus the non-personalized baselines the paper
// uses (most-popular, random, item-average) and the shared top-N selection
// machinery.
//
// Two interfaces matter downstream:
//
//   - Scorer produces a relevance score for any (user, item) pair. Latent
//     factor models (RSVD, PSVD, CofiRank) and the non-personalized models
//     all implement it. Scores are model-specific; callers that need [0,1]
//     scores use NormalizedScorer.
//   - TopN produces a ranked top-N list per user, excluding the user's train
//     items. A generic implementation over any Scorer is provided.
package recommender

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// Scorer scores a single (user, item) pair. Higher is better. Scores may be
// on any scale; see NormalizedScores for a [0,1] mapping.
type Scorer interface {
	// Score returns the model's relevance score of item i for user u.
	Score(u types.UserID, i types.ItemID) float64
	// Name identifies the model in experiment output ("Pop", "RSVD", ...).
	Name() string
}

// TopN generates ranked recommendation lists.
type TopN interface {
	// Recommend returns the top-N unseen items for user u, ranked best first.
	// Items in exclude (typically the user's train items) are never returned.
	Recommend(u types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet
	Name() string
}

// scoredHeap is a min-heap over ScoredItem used for top-N selection.
type scoredHeap []types.ScoredItem

func (h scoredHeap) Len() int { return len(h) }
func (h scoredHeap) Less(a, b int) bool {
	if h[a].Score != h[b].Score {
		return h[a].Score < h[b].Score
	}
	return h[a].Item > h[b].Item
}
func (h scoredHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(types.ScoredItem)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SelectTopN returns the n highest-scoring items among candidates according
// to score, excluding any item in exclude. Ties break toward the smaller item
// identifier so results are deterministic. The candidates callback is invoked
// once per item identifier in [0, numItems).
func SelectTopN(numItems, n int, exclude map[types.ItemID]struct{}, score func(types.ItemID) float64) types.TopNSet {
	if n <= 0 {
		return nil
	}
	h := make(scoredHeap, 0, n+1)
	for idx := 0; idx < numItems; idx++ {
		item := types.ItemID(idx)
		if _, skip := exclude[item]; skip {
			continue
		}
		s := score(item)
		if len(h) < n {
			heap.Push(&h, types.ScoredItem{Item: item, Score: s})
			continue
		}
		// Replace the current minimum when strictly better, or equal score
		// with smaller identifier (to match SortScoredDesc tie-breaking).
		min := h[0]
		if s > min.Score || (s == min.Score && item < min.Item) {
			h[0] = types.ScoredItem{Item: item, Score: s}
			heap.Fix(&h, 0)
		}
	}
	out := make([]types.ScoredItem, len(h))
	copy(out, h)
	types.SortScoredDesc(out)
	set := make(types.TopNSet, len(out))
	for k, si := range out {
		set[k] = si.Item
	}
	return set
}

// ScorerTopN adapts any Scorer into a TopN by exhaustively scoring the item
// space (the paper's "all unrated items" ranking protocol).
type ScorerTopN struct {
	Scorer   Scorer
	NumItems int
}

// Recommend implements TopN.
func (s *ScorerTopN) Recommend(u types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	return SelectTopN(s.NumItems, n, exclude, func(i types.ItemID) float64 {
		return s.Scorer.Score(u, i)
	})
}

// Name implements TopN.
func (s *ScorerTopN) Name() string { return s.Scorer.Name() }

// --- Non-personalized baselines ---------------------------------------------

// Pop recommends items by train-set popularity (the paper's "Most popular"
// accuracy recommender). Its score for an item is the item's rating count.
type Pop struct {
	pop  []int
	name string
}

// NewPop builds the popularity model from the train set.
func NewPop(train *dataset.Dataset) *Pop {
	return &Pop{pop: train.PopularityVector(), name: "Pop"}
}

// Score implements Scorer; the score is the raw popularity count.
func (p *Pop) Score(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(p.pop) {
		return 0
	}
	return float64(p.pop[i])
}

// Name implements Scorer.
func (p *Pop) Name() string { return p.name }

// Recommend implements TopN directly (slightly faster than going through
// ScorerTopN since the scores do not depend on the user).
func (p *Pop) Recommend(_ types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	return SelectTopN(len(p.pop), n, exclude, func(i types.ItemID) float64 { return float64(p.pop[i]) })
}

// Rand recommends unseen items uniformly at random. It has maximal coverage
// and minimal accuracy, and anchors the coverage end of every trade-off plot
// in the paper.
type Rand struct {
	numItems int
	rng      *rand.Rand
	name     string
}

// NewRand builds the random recommender over a catalog of numItems items.
func NewRand(numItems int, seed int64) *Rand {
	return &Rand{numItems: numItems, rng: rand.New(rand.NewSource(seed)), name: "Rand"}
}

// Score implements Scorer with a uniform random score. Successive calls for
// the same pair return different values; Rand exists for ranking, not for
// reproducible pointwise scoring.
func (r *Rand) Score(_ types.UserID, _ types.ItemID) float64 { return r.rng.Float64() }

// Name implements Scorer.
func (r *Rand) Name() string { return r.name }

// Recommend implements TopN by sampling n distinct unseen items.
func (r *Rand) Recommend(_ types.UserID, n int, exclude map[types.ItemID]struct{}) types.TopNSet {
	if n <= 0 {
		return nil
	}
	// Reservoir-sample n items from the eligible set.
	out := make(types.TopNSet, 0, n)
	seen := 0
	for idx := 0; idx < r.numItems; idx++ {
		item := types.ItemID(idx)
		if _, skip := exclude[item]; skip {
			continue
		}
		seen++
		if len(out) < n {
			out = append(out, item)
			continue
		}
		j := r.rng.Intn(seen)
		if j < n {
			out[j] = item
		}
	}
	// Shuffle so position carries no popularity information.
	r.rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// ItemAvg scores items by their mean train rating, shrunk toward the global
// mean for rarely rated items (a damped mean with pseudo-count lambda). The
// RBT re-ranker's "Avg" criterion uses it.
type ItemAvg struct {
	avg  []float64
	name string
}

// NewItemAvg computes damped item means from the train set. lambda is the
// shrinkage pseudo-count; 0 gives raw means.
func NewItemAvg(train *dataset.Dataset, lambda float64) *ItemAvg {
	global := train.MeanRating()
	avg := make([]float64, train.NumItems())
	for i := 0; i < train.NumItems(); i++ {
		idxs := train.ItemRatings(types.ItemID(i))
		sum := 0.0
		for _, idx := range idxs {
			sum += train.Rating(idx).Value
		}
		avg[i] = (sum + lambda*global) / (float64(len(idxs)) + lambdaOrOne(lambda, len(idxs)))
	}
	return &ItemAvg{avg: avg, name: "ItemAvg"}
}

func lambdaOrOne(lambda float64, n int) float64 {
	if lambda == 0 && n == 0 {
		return 1 // avoid 0/0 for never-rated items; their mean is 0
	}
	return lambda
}

// Score implements Scorer.
func (a *ItemAvg) Score(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(a.avg) {
		return 0
	}
	return a.avg[i]
}

// Name implements Scorer.
func (a *ItemAvg) Name() string { return a.name }

// Avg returns the damped mean of item i (same value Score returns).
func (a *ItemAvg) Avg(i types.ItemID) float64 { return a.Score(0, i) }

// --- Score normalization -----------------------------------------------------

// NormalizedScorer wraps a Scorer and rescales each user's scores over the
// whole catalog to [0,1] by min–max normalization, as the paper does before
// plugging predicted ratings into the GANC value function. Normalization
// vectors are computed lazily per user and cached. It is safe for concurrent
// use provided the wrapped Scorer is (the latent-factor models are read-only
// after training).
type NormalizedScorer struct {
	inner    Scorer
	numItems int
	mu       sync.Mutex
	cacheMin map[types.UserID]float64
	cacheSpn map[types.UserID]float64
}

// NewNormalizedScorer wraps inner for a catalog of numItems items.
func NewNormalizedScorer(inner Scorer, numItems int) *NormalizedScorer {
	return &NormalizedScorer{
		inner:    inner,
		numItems: numItems,
		cacheMin: make(map[types.UserID]float64),
		cacheSpn: make(map[types.UserID]float64),
	}
}

// Score implements Scorer, returning the inner score min–max normalized over
// the user's full catalog scores.
func (n *NormalizedScorer) Score(u types.UserID, i types.ItemID) float64 {
	min, span := n.userRange(u)
	if span == 0 {
		return 0
	}
	v := (n.inner.Score(u, i) - min) / span
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func (n *NormalizedScorer) userRange(u types.UserID) (min, span float64) {
	n.mu.Lock()
	if m, ok := n.cacheMin[u]; ok {
		spn := n.cacheSpn[u]
		n.mu.Unlock()
		return m, spn
	}
	n.mu.Unlock()
	min, max := 0.0, 0.0
	for idx := 0; idx < n.numItems; idx++ {
		s := n.inner.Score(u, types.ItemID(idx))
		if idx == 0 || s < min {
			min = s
		}
		if idx == 0 || s > max {
			max = s
		}
	}
	n.mu.Lock()
	n.cacheMin[u] = min
	n.cacheSpn[u] = max - min
	n.mu.Unlock()
	return min, max - min
}

// Name implements Scorer.
func (n *NormalizedScorer) Name() string { return n.inner.Name() }

// --- Batch recommendation helpers --------------------------------------------

// RecommendAll produces the top-N collection for every user in the train set
// using model, excluding each user's train items (the all-unrated-items
// protocol).
func RecommendAll(model TopN, train *dataset.Dataset, n int) types.Recommendations {
	recs := make(types.Recommendations, train.NumUsers())
	for u := 0; u < train.NumUsers(); u++ {
		uid := types.UserID(u)
		recs[uid] = model.Recommend(uid, n, train.UserItemSet(uid))
	}
	return recs
}

// TopNEngine adapts any TopN model into the Engine shape shared by the facade
// and the serving layer: per-user on-demand recommendation plus batch
// generation, both excluding each user's train items. The zero value is not
// usable; all three fields are required.
type TopNEngine struct {
	// Model produces the ranked lists.
	Model TopN
	// Train supplies the user universe and per-user exclusion sets.
	Train *dataset.Dataset
	// N is the default list size when a request passes n ≤ 0.
	N int
}

// Name identifies the underlying model.
func (e *TopNEngine) Name() string { return e.Model.Name() }

// TopN returns the engine's default list size.
func (e *TopNEngine) TopN() int { return e.N }

// RecommendUser computes one user's list on demand.
func (e *TopNEngine) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= e.Train.NumUsers() {
		return nil, fmt.Errorf("recommender: user %d out of range [0,%d)", u, e.Train.NumUsers())
	}
	if n <= 0 {
		n = e.N
	}
	return e.Model.Recommend(u, n, e.Train.UserItemSet(u)), nil
}

// RecommendAll generates the full collection, checking for cancellation
// between users.
func (e *TopNEngine) RecommendAll(ctx context.Context) (types.Recommendations, error) {
	recs := make(types.Recommendations, e.Train.NumUsers())
	for u := 0; u < e.Train.NumUsers(); u++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		uid := types.UserID(u)
		recs[uid] = e.Model.Recommend(uid, e.N, e.Train.UserItemSet(uid))
	}
	return recs, nil
}

// Describe returns a one-line description of a recommendation collection,
// useful for logs and CLI output.
func Describe(recs types.Recommendations, numItems int) string {
	distinct := len(recs.DistinctItems())
	return fmt.Sprintf("%d users, %d distinct items recommended (%.1f%% of catalog)",
		recs.NumUsers(), distinct, 100*float64(distinct)/float64(maxInt(numItems, 1)))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SortItemsByScoreDesc is a convenience wrapper used by re-rankers that need
// a full ranking rather than just the top N.
func SortItemsByScoreDesc(items []types.ItemID, score func(types.ItemID) float64) {
	sort.Slice(items, func(a, b int) bool {
		sa, sb := score(items[a]), score(items[b])
		if sa != sb {
			return sa > sb
		}
		return items[a] < items[b]
	})
}
