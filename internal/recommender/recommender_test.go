package recommender

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ganc/internal/dataset"
	"ganc/internal/types"
)

// trainFixture builds a small train set where item popularity is strictly
// item0 > item1 > item2 > item3 > item4 (5, 4, 3, 2, 1 ratings).
func trainFixture() *dataset.Dataset {
	b := dataset.NewBuilder("train", 32)
	pop := []int{5, 4, 3, 2, 1}
	user := 0
	for item, count := range pop {
		for k := 0; k < count; k++ {
			b.AddIDs(types.UserID(user%6), types.ItemID(item), float64(1+item%5))
			user++
		}
	}
	return b.Build()
}

func TestSelectTopNOrdersAndExcludes(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.7, 0.3}
	exclude := map[types.ItemID]struct{}{1: {}}
	got := SelectTopN(5, 3, exclude, func(i types.ItemID) float64 { return scores[i] })
	want := types.TopNSet{3, 2, 4}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("SelectTopN = %v, want %v", got, want)
		}
	}
}

func TestSelectTopNHandlesSmallCandidateSets(t *testing.T) {
	got := SelectTopN(2, 5, nil, func(i types.ItemID) float64 { return float64(i) })
	if len(got) != 2 {
		t.Fatalf("expected all candidates when n > catalog, got %v", got)
	}
	if got := SelectTopN(5, 0, nil, func(types.ItemID) float64 { return 1 }); got != nil {
		t.Fatalf("n=0 should return nil, got %v", got)
	}
}

func TestSelectTopNTieBreaksByItemID(t *testing.T) {
	got := SelectTopN(10, 4, nil, func(types.ItemID) float64 { return 1.0 })
	want := types.TopNSet{0, 1, 2, 3}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("tie-break order wrong: %v", got)
		}
	}
}

func TestSelectTopNMatchesFullSortProperty(t *testing.T) {
	// Property: heap-based selection returns exactly the same list as a full
	// sort of all candidate scores.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numItems := 50
		scores := make([]float64, numItems)
		for i := range scores {
			scores[i] = rng.Float64()
		}
		n := 1 + rng.Intn(10)
		got := SelectTopN(numItems, n, nil, func(i types.ItemID) float64 { return scores[i] })

		all := make([]types.ScoredItem, numItems)
		for i := range scores {
			all[i] = types.ScoredItem{Item: types.ItemID(i), Score: scores[i]}
		}
		types.SortScoredDesc(all)
		for k := 0; k < n; k++ {
			if got[k] != all[k].Item {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPopRecommendsMostPopularUnseen(t *testing.T) {
	train := trainFixture()
	pop := NewPop(train)
	got := pop.Recommend(0, 3, nil)
	want := types.TopNSet{0, 1, 2}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Pop.Recommend = %v, want %v", got, want)
		}
	}
	// Excluding the head item promotes the next most popular.
	got = pop.Recommend(0, 3, map[types.ItemID]struct{}{0: {}})
	if got[0] != 1 {
		t.Fatalf("Pop with exclusion = %v", got)
	}
	if pop.Name() != "Pop" {
		t.Fatal("name")
	}
	if pop.Score(0, 0) != 5 || pop.Score(0, 99) != 0 {
		t.Fatalf("Pop.Score wrong: %v, %v", pop.Score(0, 0), pop.Score(0, 99))
	}
}

func TestRandRecommendDistinctAndExcluded(t *testing.T) {
	r := NewRand(50, 7)
	exclude := map[types.ItemID]struct{}{3: {}, 7: {}, 11: {}}
	got := r.Recommend(0, 10, exclude)
	if len(got) != 10 {
		t.Fatalf("Rand returned %d items, want 10", len(got))
	}
	seen := map[types.ItemID]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatalf("duplicate item %d in %v", i, got)
		}
		seen[i] = true
		if _, bad := exclude[i]; bad {
			t.Fatalf("excluded item %d recommended", i)
		}
	}
}

func TestRandCoversCatalogAcrossUsers(t *testing.T) {
	r := NewRand(30, 3)
	hit := map[types.ItemID]bool{}
	for u := 0; u < 200; u++ {
		for _, i := range r.Recommend(types.UserID(u), 5, nil) {
			hit[i] = true
		}
	}
	if len(hit) < 28 {
		t.Fatalf("random recommender only touched %d/30 items", len(hit))
	}
}

func TestItemAvgScoresByMeanRating(t *testing.T) {
	b := dataset.NewBuilder("avg", 8)
	b.AddIDs(0, 0, 5)
	b.AddIDs(1, 0, 5)
	b.AddIDs(0, 1, 2)
	b.AddIDs(1, 1, 2)
	b.AddIDs(2, 2, 4)
	d := b.Build()
	avg := NewItemAvg(d, 0)
	if avg.Avg(0) != 5 || avg.Avg(1) != 2 || avg.Avg(2) != 4 {
		t.Fatalf("raw means wrong: %v %v %v", avg.Avg(0), avg.Avg(1), avg.Avg(2))
	}
	// With shrinkage, a single 4-star rating is pulled toward the global mean.
	shrunk := NewItemAvg(d, 5)
	if shrunk.Avg(2) >= 4 || shrunk.Avg(2) <= d.MeanRating()-1 {
		t.Fatalf("shrinkage not applied sensibly: %v (global mean %v)", shrunk.Avg(2), d.MeanRating())
	}
	if avg.Name() != "ItemAvg" {
		t.Fatal("name")
	}
}

func TestItemAvgNeverRatedItemIsZeroWithoutShrinkage(t *testing.T) {
	b := dataset.NewBuilder("gap", 4)
	b.AddIDs(0, 0, 5)
	b.AddIDs(0, 2, 3)
	d := b.Build() // item 1 exists but unrated
	avg := NewItemAvg(d, 0)
	if avg.Avg(1) != 0 {
		t.Fatalf("unrated item mean = %v, want 0", avg.Avg(1))
	}
}

type fixedScorer struct{ scores map[types.ItemID]float64 }

func (f fixedScorer) Score(_ types.UserID, i types.ItemID) float64 { return f.scores[i] }
func (f fixedScorer) Name() string                                 { return "fixed" }

func TestScorerTopNAdapter(t *testing.T) {
	s := fixedScorer{scores: map[types.ItemID]float64{0: 0.2, 1: 0.8, 2: 0.5}}
	top := &ScorerTopN{Scorer: s, NumItems: 3}
	got := top.Recommend(0, 2, nil)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("ScorerTopN = %v", got)
	}
	if top.Name() != "fixed" {
		t.Fatal("name passthrough")
	}
}

func TestNormalizedScorerMapsToUnitInterval(t *testing.T) {
	s := fixedScorer{scores: map[types.ItemID]float64{0: -10, 1: 0, 2: 30}}
	ns := NewNormalizedScorer(s, 3)
	if got := ns.Score(0, 0); got != 0 {
		t.Fatalf("min score normalized to %v, want 0", got)
	}
	if got := ns.Score(0, 2); got != 1 {
		t.Fatalf("max score normalized to %v, want 1", got)
	}
	mid := ns.Score(0, 1)
	if mid <= 0 || mid >= 1 {
		t.Fatalf("mid score %v not strictly inside (0,1)", mid)
	}
	if ns.Name() != "fixed" {
		t.Fatal("name passthrough")
	}
}

func TestNormalizedScorerConstantScores(t *testing.T) {
	s := fixedScorer{scores: map[types.ItemID]float64{0: 3, 1: 3, 2: 3}}
	ns := NewNormalizedScorer(s, 3)
	if got := ns.Score(0, 1); got != 0 {
		t.Fatalf("constant scores should normalize to 0, got %v", got)
	}
}

func TestRecommendAllExcludesTrainItems(t *testing.T) {
	train := trainFixture()
	pop := NewPop(train)
	recs := RecommendAll(pop, train, 2)
	if len(recs) != train.NumUsers() {
		t.Fatalf("got recs for %d users, want %d", len(recs), train.NumUsers())
	}
	for u := 0; u < train.NumUsers(); u++ {
		uid := types.UserID(u)
		seen := train.UserItemSet(uid)
		for _, i := range recs[uid] {
			if _, bad := seen[i]; bad {
				t.Fatalf("user %d recommended already-rated item %d", u, i)
			}
		}
	}
}

func TestDescribe(t *testing.T) {
	recs := types.Recommendations{0: {0, 1}, 1: {1, 2}}
	got := Describe(recs, 10)
	if got == "" {
		t.Fatal("empty description")
	}
}

func TestSortItemsByScoreDesc(t *testing.T) {
	items := []types.ItemID{3, 1, 2}
	SortItemsByScoreDesc(items, func(i types.ItemID) float64 { return float64(i) })
	if items[0] != 3 || items[2] != 1 {
		t.Fatalf("sorted = %v", items)
	}
}
