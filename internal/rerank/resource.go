package rerank

import (
	"fmt"
	"math"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// FiveDConfig configures the resource-allocation (5D) re-ranker of Ho, Chiang
// & Hsu (WSDM 2014). The method has two phases: (1) users allocate resources
// to the items they rated, proportional to the rating value, so long-tail
// items with enthusiastic raters accumulate resource; (2) a per-user-item
// score combining five facets (accuracy, balance, coverage, quality, quantity
// of long-tail items) is computed, optionally passed through an accuracy
// filter (A) and a rank-by-rankings (RR) aggregation, and top-N sets are read
// off the combined score.
type FiveDConfig struct {
	// N is the final list length.
	N int
	// K is the size of the accuracy candidate head considered per user,
	// following the paper's k = 3·|I| scaled down to k = 3·N·TMax in this
	// implementation to stay tractable on the full catalog; a non-positive
	// value selects the default of 15·N.
	K int
	// Q is the resource-allocation exponent (the paper's q = 1).
	Q float64
	// AccuracyFilter enables the (A) variant: items whose accuracy score is
	// below the user's mean predicted score are dropped before re-scoring.
	AccuracyFilter bool
	// RankByRankings enables the (RR) variant: the final ordering aggregates
	// the rank positions under the accuracy score and the 5D score instead of
	// summing raw scores.
	RankByRankings bool
}

// DefaultFiveDConfig mirrors the paper's defaults (q = 1).
func DefaultFiveDConfig(n int) FiveDConfig {
	return FiveDConfig{N: n, K: 0, Q: 1, AccuracyFilter: false, RankByRankings: false}
}

// Validate checks the configuration.
func (c *FiveDConfig) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("rerank: 5D N must be positive, got %d", c.N)
	}
	if c.Q <= 0 {
		return fmt.Errorf("rerank: 5D Q must be positive, got %v", c.Q)
	}
	return nil
}

// FiveD is the resource-allocation re-ranker.
type FiveD struct {
	cfg      FiveDConfig
	scorer   recommender.Scorer
	train    *dataset.Dataset
	resource []float64 // per-item allocated resource, phase 1
	tail     map[types.ItemID]struct{}
	pop      []int
	name     string
}

// NewFiveD builds the re-ranker around a rating-prediction scorer.
func NewFiveD(train *dataset.Dataset, scorer recommender.Scorer, cfg FiveDConfig) (*FiveD, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.K <= 0 {
		cfg.K = 15 * cfg.N
	}
	f := &FiveD{
		cfg:    cfg,
		scorer: scorer,
		train:  train,
		tail:   train.LongTail(dataset.DefaultTailShare),
		pop:    train.PopularityVector(),
	}
	f.allocateResources()
	variant := "5D(" + scorer.Name()
	if cfg.AccuracyFilter {
		variant += ", A"
	}
	if cfg.RankByRankings {
		variant += ", RR"
	}
	f.name = variant + ")"
	return f, nil
}

// allocateResources implements phase 1: every user distributes one unit of
// resource across their rated items proportionally to (rating)^q, so items
// that attracted strong interest — especially from users with small profiles
// — end up with more resource per rating. The allocation is then normalized
// by item popularity so that a long-tail item loved by its few raters scores
// high.
func (f *FiveD) allocateResources() {
	res := make([]float64, f.train.NumItems())
	for u := 0; u < f.train.NumUsers(); u++ {
		uid := types.UserID(u)
		idxs := f.train.UserRatings(uid)
		if len(idxs) == 0 {
			continue
		}
		total := 0.0
		for _, idx := range idxs {
			total += math.Pow(f.train.Rating(idx).Value, f.cfg.Q)
		}
		if total == 0 {
			continue
		}
		for _, idx := range idxs {
			r := f.train.Rating(idx)
			res[r.Item] += math.Pow(r.Value, f.cfg.Q) / total
		}
	}
	// Per-item normalization: resource per rating, favouring items whose few
	// observations are enthusiastic.
	for i := range res {
		if f.pop[i] > 0 {
			res[i] /= float64(f.pop[i])
		}
	}
	f.resource = res
}

// Name identifies the re-ranker, following the paper's 5D(ARec, A, RR)
// template.
func (f *FiveD) Name() string { return f.name }

// fiveDScore is the phase-2 multi-facet score of item i for user u. The five
// facets are folded into two observable components here: the allocated
// resource (covering balance, coverage, quality and long-tail quantity, all
// of which the resource captures once normalized per rating) and the user's
// accuracy score.
func (f *FiveD) fiveDScore(u types.UserID, i types.ItemID) float64 {
	resource := f.resource[i]
	ltBonus := 0.0
	if _, isTail := f.tail[i]; isTail {
		ltBonus = resource
	}
	return resource + ltBonus
}

// Recommend produces user u's re-ranked top-N set.
func (f *FiveD) Recommend(u types.UserID, exclude map[types.ItemID]struct{}) types.TopNSet {
	n := f.cfg.N
	head := recommender.SelectTopN(f.train.NumItems(), f.cfg.K, exclude, func(i types.ItemID) float64 {
		return f.scorer.Score(u, i)
	})
	if len(head) == 0 {
		return nil
	}
	candidates := head
	if f.cfg.AccuracyFilter {
		// Keep only items whose accuracy score is at least the mean accuracy
		// score of the head.
		mean := 0.0
		for _, i := range head {
			mean += f.scorer.Score(u, i)
		}
		mean /= float64(len(head))
		var filtered []types.ItemID
		for _, i := range head {
			if f.scorer.Score(u, i) >= mean {
				filtered = append(filtered, i)
			}
		}
		if len(filtered) >= n {
			candidates = filtered
		}
	}

	if f.cfg.RankByRankings {
		// Aggregate the rank under the accuracy score and the rank under the
		// 5D score (lower summed rank is better).
		accRank := rankPositions(candidates, func(i types.ItemID) float64 { return f.scorer.Score(u, i) })
		fdRank := rankPositions(candidates, func(i types.ItemID) float64 { return f.fiveDScore(u, i) })
		out := append([]types.ItemID(nil), candidates...)
		sort.SliceStable(out, func(a, b int) bool {
			ra := accRank[out[a]] + fdRank[out[a]]
			rb := accRank[out[b]] + fdRank[out[b]]
			if ra != rb {
				return ra < rb
			}
			return out[a] < out[b]
		})
		if len(out) > n {
			out = out[:n]
		}
		return types.TopNSet(out)
	}

	out := append([]types.ItemID(nil), candidates...)
	recommender.SortItemsByScoreDesc(out, func(i types.ItemID) float64 { return f.fiveDScore(u, i) })
	if len(out) > n {
		out = out[:n]
	}
	return types.TopNSet(out)
}

// rankPositions maps each item to its 1-based rank under score (descending).
func rankPositions(items []types.ItemID, score func(types.ItemID) float64) map[types.ItemID]int {
	sorted := append([]types.ItemID(nil), items...)
	recommender.SortItemsByScoreDesc(sorted, score)
	out := make(map[types.ItemID]int, len(sorted))
	for pos, i := range sorted {
		out[i] = pos + 1
	}
	return out
}

// RecommendAll produces the full top-N collection.
func (f *FiveD) RecommendAll() types.Recommendations {
	recs := make(types.Recommendations, f.train.NumUsers())
	for u := 0; u < f.train.NumUsers(); u++ {
		uid := types.UserID(u)
		recs[uid] = f.Recommend(uid, f.train.UserItemSet(uid))
	}
	return recs
}
