// Package rerank implements the re-ranking baselines the paper compares GANC
// against (Section IV-A):
//
//   - RBT — Ranking-Based Techniques (Adomavicius & Kwon, TKDE 2012): items
//     whose predicted rating clears a threshold T_R are re-ranked by an
//     alternative criterion (item popularity, ascending, or average rating)
//     while the rest keep the accuracy order.
//   - 5D resource allocation (Ho, Chiang & Hsu, WSDM 2014): resources are
//     spread from users to items proportionally to ratings, then top-N sets
//     are scored by a multi-facet score; optional accuracy filtering (A) and
//     rank-by-rankings (RR) variants.
//   - PRA — Personalized Ranking Adaptation (Jugovac, Jannach & Lerche,
//     2017): per-user novelty tendencies estimated from item popularity
//     statistics, followed by iterative greedy swaps between the top-N head
//     and an exchangeable candidate set until the list's novelty matches the
//     user's tendency.
//
// Each re-ranker consumes an accuracy scorer (typically RSVD) and produces a
// full top-N collection, so they plug into the same evaluation harness as
// GANC.
package rerank

import (
	"fmt"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// RBTCriterion selects the secondary ranking criterion of the RBT re-ranker.
type RBTCriterion int

const (
	// RBTPop re-ranks qualifying head items by ascending popularity
	// (least-popular first), the paper's RBT(·, Pop) variant.
	RBTPop RBTCriterion = iota
	// RBTAvg re-ranks qualifying head items by descending item average
	// rating, the paper's RBT(·, Avg) variant.
	RBTAvg
)

// String names the criterion.
func (c RBTCriterion) String() string {
	switch c {
	case RBTPop:
		return "Pop"
	case RBTAvg:
		return "Avg"
	default:
		return "?"
	}
}

// RBTConfig configures the RBT re-ranker.
type RBTConfig struct {
	// N is the length of the final top-N set.
	N int
	// TR is the ranking threshold: only items whose predicted rating is at
	// least TR are eligible for re-ranking by the secondary criterion. The
	// paper tests TR ∈ {4, 4.2, 4.5} and settles on 4.5.
	TR float64
	// TMax is the size of the candidate head, expressed as a multiple of N
	// (the paper sets Tmax = 5, i.e. the top 5·N predictions are considered).
	TMax int
	// TH is the minimum number of qualifying items required before
	// re-ranking kicks in for a user (the paper uses 1, or 0 for the largest
	// datasets).
	TH int
	// Criterion selects Pop or Avg.
	Criterion RBTCriterion
}

// DefaultRBTConfig mirrors the paper's configuration.
func DefaultRBTConfig(n int, criterion RBTCriterion) RBTConfig {
	return RBTConfig{N: n, TR: 4.5, TMax: 5, TH: 1, Criterion: criterion}
}

// Validate checks the configuration.
func (c *RBTConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("rerank: RBT N must be positive, got %d", c.N)
	case c.TMax < 1:
		return fmt.Errorf("rerank: RBT TMax must be ≥ 1, got %d", c.TMax)
	case c.TH < 0:
		return fmt.Errorf("rerank: RBT TH must be ≥ 0, got %d", c.TH)
	}
	return nil
}

// RBT is the Ranking-Based Techniques re-ranker.
type RBT struct {
	cfg     RBTConfig
	scorer  recommender.Scorer
	train   *dataset.Dataset
	pop     []int
	itemAvg *recommender.ItemAvg
	name    string
}

// NewRBT builds an RBT re-ranker around a rating-prediction scorer (the
// paper uses RSVD).
func NewRBT(train *dataset.Dataset, scorer recommender.Scorer, cfg RBTConfig) (*RBT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &RBT{
		cfg:     cfg,
		scorer:  scorer,
		train:   train,
		pop:     train.PopularityVector(),
		itemAvg: recommender.NewItemAvg(train, 0),
		name:    fmt.Sprintf("RBT(%s, %s)", scorer.Name(), cfg.Criterion),
	}, nil
}

// Name identifies the re-ranker, following the paper's RBT(ARec, criterion)
// template.
func (r *RBT) Name() string { return r.name }

// Recommend produces user u's re-ranked top-N set.
func (r *RBT) Recommend(u types.UserID, exclude map[types.ItemID]struct{}) types.TopNSet {
	n := r.cfg.N
	head := recommender.SelectTopN(r.train.NumItems(), n*r.cfg.TMax, exclude, func(i types.ItemID) float64 {
		return r.scorer.Score(u, i)
	})
	if len(head) == 0 {
		return nil
	}
	// Partition the head into qualifying items (predicted rating ≥ TR) and
	// the rest (which keep the accuracy order).
	var qualified, rest []types.ItemID
	for _, i := range head {
		if r.scorer.Score(u, i) >= r.cfg.TR {
			qualified = append(qualified, i)
		} else {
			rest = append(rest, i)
		}
	}
	if len(qualified) < r.cfg.TH || len(qualified) == 0 {
		// Not enough confident items: fall back to the pure accuracy ranking.
		if len(head) > n {
			return head[:n].Clone()
		}
		return head.Clone()
	}
	switch r.cfg.Criterion {
	case RBTPop:
		// Ascending popularity: the least popular confident items first.
		sort.SliceStable(qualified, func(a, b int) bool {
			pa, pb := r.pop[qualified[a]], r.pop[qualified[b]]
			if pa != pb {
				return pa < pb
			}
			return qualified[a] < qualified[b]
		})
	case RBTAvg:
		// Descending item average rating.
		sort.SliceStable(qualified, func(a, b int) bool {
			aa, ab := r.itemAvg.Avg(qualified[a]), r.itemAvg.Avg(qualified[b])
			if aa != ab {
				return aa > ab
			}
			return qualified[a] < qualified[b]
		})
	}
	merged := append(append(make([]types.ItemID, 0, len(head)), qualified...), rest...)
	if len(merged) > n {
		merged = merged[:n]
	}
	return types.TopNSet(merged)
}

// RecommendAll produces the full top-N collection.
func (r *RBT) RecommendAll() types.Recommendations {
	recs := make(types.Recommendations, r.train.NumUsers())
	for u := 0; u < r.train.NumUsers(); u++ {
		uid := types.UserID(u)
		recs[uid] = r.Recommend(uid, r.train.UserItemSet(uid))
	}
	return recs
}
