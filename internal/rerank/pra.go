package rerank

import (
	"fmt"
	"math"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// PRAConfig configures the Personalized Ranking Adaptation re-ranker of
// Jugovac, Jannach & Lerche (2017), novelty variant. PRA estimates a per-user
// novelty tendency from item popularity statistics (the mean-and-deviation
// heuristic over the popularity of the user's rated items), then iteratively
// swaps items between the head of the accuracy ranking and an exchangeable
// candidate set until the top-N list's average novelty matches the user's
// tendency, or the swap budget is exhausted.
type PRAConfig struct {
	// N is the final list length.
	N int
	// ExchangeableSize |X_u| is the number of candidate items below the
	// top-N considered for swapping in (the paper evaluates 10 and 20).
	ExchangeableSize int
	// SampleSize S_u caps the number of rated items used to estimate the
	// user's tendency (the paper uses min(|I_u^R|, 10)).
	SampleSize int
	// MaxSteps bounds the number of greedy swaps (the paper uses 20).
	MaxSteps int
}

// DefaultPRAConfig mirrors the paper's configuration with |X_u| as given.
func DefaultPRAConfig(n, exchangeable int) PRAConfig {
	return PRAConfig{N: n, ExchangeableSize: exchangeable, SampleSize: 10, MaxSteps: 20}
}

// Validate checks the configuration.
func (c *PRAConfig) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("rerank: PRA N must be positive, got %d", c.N)
	case c.ExchangeableSize <= 0:
		return fmt.Errorf("rerank: PRA ExchangeableSize must be positive, got %d", c.ExchangeableSize)
	case c.SampleSize <= 0:
		return fmt.Errorf("rerank: PRA SampleSize must be positive, got %d", c.SampleSize)
	case c.MaxSteps < 0:
		return fmt.Errorf("rerank: PRA MaxSteps must be ≥ 0, got %d", c.MaxSteps)
	}
	return nil
}

// PRA is the Personalized Ranking Adaptation re-ranker.
type PRA struct {
	cfg    PRAConfig
	scorer recommender.Scorer
	train  *dataset.Dataset
	// novelty[i] is the item's novelty value in [0,1]: 1 − normalized log
	// popularity, so rarely rated items are novel.
	novelty []float64
	name    string
}

// NewPRA builds a PRA re-ranker around an accuracy scorer.
func NewPRA(train *dataset.Dataset, scorer recommender.Scorer, cfg PRAConfig) (*PRA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pop := train.PopularityVector()
	maxLog := 0.0
	novelty := make([]float64, len(pop))
	for _, p := range pop {
		if l := math.Log1p(float64(p)); l > maxLog {
			maxLog = l
		}
	}
	for i, p := range pop {
		if maxLog > 0 {
			novelty[i] = 1 - math.Log1p(float64(p))/maxLog
		} else {
			novelty[i] = 1
		}
	}
	return &PRA{
		cfg:     cfg,
		scorer:  scorer,
		train:   train,
		novelty: novelty,
		name:    fmt.Sprintf("PRA(%s, %d)", scorer.Name(), cfg.ExchangeableSize),
	}, nil
}

// Name identifies the re-ranker, following the paper's PRA(ARec, |X_u|)
// template.
func (p *PRA) Name() string { return p.name }

// userTendency estimates the user's novelty tendency with the paper's
// mean-and-deviation heuristic: the mean novelty of (a sample of) the items
// the user has rated, nudged upward by the sample's spread so users with
// eclectic histories are treated as more novelty-seeking.
func (p *PRA) userTendency(u types.UserID) float64 {
	items := p.train.UserItems(u)
	if len(items) == 0 {
		return 0
	}
	// Deterministic sample: the paper samples S_u items; we take the most
	// recent S_u (rating order) which is equivalent in expectation and keeps
	// the re-ranker reproducible.
	if len(items) > p.cfg.SampleSize {
		items = items[len(items)-p.cfg.SampleSize:]
	}
	vals := make([]float64, len(items))
	mean := 0.0
	for k, i := range items {
		vals[k] = p.novelty[i]
		mean += vals[k]
	}
	mean /= float64(len(vals))
	dev := 0.0
	for _, v := range vals {
		dev += (v - mean) * (v - mean)
	}
	dev = math.Sqrt(dev / float64(len(vals)))
	t := mean + 0.5*dev
	if t > 1 {
		t = 1
	}
	return t
}

// listNovelty is the average novelty of a list.
func (p *PRA) listNovelty(list []types.ItemID) float64 {
	if len(list) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range list {
		s += p.novelty[i]
	}
	return s / float64(len(list))
}

// Recommend produces user u's adapted top-N set using the "optimal swap"
// strategy: at each step, perform the single head/exchangeable swap that
// moves the list novelty closest to the user's tendency; stop when no swap
// improves the match or the step budget is exhausted.
func (p *PRA) Recommend(u types.UserID, exclude map[types.ItemID]struct{}) types.TopNSet {
	n := p.cfg.N
	headSize := n + p.cfg.ExchangeableSize
	ranked := recommender.SelectTopN(p.train.NumItems(), headSize, exclude, func(i types.ItemID) float64 {
		return p.scorer.Score(u, i)
	})
	if len(ranked) == 0 {
		return nil
	}
	if len(ranked) <= n {
		return ranked.Clone()
	}
	top := append([]types.ItemID(nil), ranked[:n]...)
	pool := append([]types.ItemID(nil), ranked[n:]...)

	target := p.userTendency(u)
	for step := 0; step < p.cfg.MaxSteps; step++ {
		currentGap := math.Abs(p.listNovelty(top) - target)
		bestGap := currentGap
		bestTop, bestPool := -1, -1
		for ti := range top {
			for pi := range pool {
				// Novelty of the list after swapping top[ti] with pool[pi].
				newNov := p.listNovelty(top) + (p.novelty[pool[pi]]-p.novelty[top[ti]])/float64(len(top))
				gap := math.Abs(newNov - target)
				if gap < bestGap-1e-12 {
					bestGap, bestTop, bestPool = gap, ti, pi
				}
			}
		}
		if bestTop < 0 {
			break
		}
		top[bestTop], pool[bestPool] = pool[bestPool], top[bestTop]
	}
	// Keep the adapted set ordered by accuracy score so position still
	// reflects predicted relevance.
	sort.SliceStable(top, func(a, b int) bool {
		sa, sb := p.scorer.Score(u, top[a]), p.scorer.Score(u, top[b])
		if sa != sb {
			return sa > sb
		}
		return top[a] < top[b]
	})
	return types.TopNSet(top)
}

// RecommendAll produces the full top-N collection.
func (p *PRA) RecommendAll() types.Recommendations {
	recs := make(types.Recommendations, p.train.NumUsers())
	for u := 0; u < p.train.NumUsers(); u++ {
		uid := types.UserID(u)
		recs[uid] = p.Recommend(uid, p.train.UserItemSet(uid))
	}
	return recs
}
