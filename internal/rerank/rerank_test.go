package rerank

import (
	"math/rand"
	"strings"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/mf"
	"ganc/internal/recommender"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// sharedSplit and sharedRSVD are built once; the re-rankers under test all
// post-process the same rating-prediction model, as in the paper's Table IV.
var (
	sharedSplit *dataset.Split
	sharedRSVD  *mf.RSVD
)

func setupShared(t *testing.T) (*dataset.Split, *mf.RSVD) {
	t.Helper()
	if sharedSplit != nil {
		return sharedSplit, sharedRSVD
	}
	cfg := synth.ML100K(0.15)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := d.SplitByUser(0.8, rand.New(rand.NewSource(31)))
	model, err := mf.TrainRSVD(sp.Train, mf.RSVDConfig{
		Factors: 12, LearningRate: 0.02, Regularization: 0.05,
		Epochs: 8, UseBiases: true, InitStd: 0.1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedSplit, sharedRSVD = sp, model
	return sp, model
}

func validateCollection(t *testing.T, name string, recs types.Recommendations, train *dataset.Dataset, n int) {
	t.Helper()
	if len(recs) == 0 {
		t.Fatalf("%s produced no recommendations", name)
	}
	for u, set := range recs {
		if len(set) == 0 {
			continue
		}
		if len(set) > n {
			t.Fatalf("%s: user %d list longer than N: %d", name, u, len(set))
		}
		seen := map[types.ItemID]bool{}
		trainItems := train.UserItemSet(u)
		for _, i := range set {
			if seen[i] {
				t.Fatalf("%s: user %d duplicate item %d", name, u, i)
			}
			seen[i] = true
			if _, bad := trainItems[i]; bad {
				t.Fatalf("%s: user %d recommended train item %d", name, u, i)
			}
		}
	}
}

func TestRBTConfigValidation(t *testing.T) {
	sp, model := setupShared(t)
	bad := []RBTConfig{
		{N: 0, TMax: 5},
		{N: 5, TMax: 0},
		{N: 5, TMax: 5, TH: -1},
	}
	for k, cfg := range bad {
		if _, err := NewRBT(sp.Train, model, cfg); err == nil {
			t.Errorf("case %d: expected error", k)
		}
	}
}

func TestRBTProducesValidCollections(t *testing.T) {
	sp, model := setupShared(t)
	for _, crit := range []RBTCriterion{RBTPop, RBTAvg} {
		r, err := NewRBT(sp.Train, model, DefaultRBTConfig(5, crit))
		if err != nil {
			t.Fatal(err)
		}
		recs := r.RecommendAll()
		validateCollection(t, r.Name(), recs, sp.Train, 5)
		if !strings.Contains(r.Name(), "RBT(RSVD") {
			t.Fatalf("name %q does not follow the template", r.Name())
		}
	}
}

func TestRBTPopIncreasesCoverageOverBaseRanking(t *testing.T) {
	sp, model := setupShared(t)
	n := 5
	base := recommender.RecommendAll(&recommender.ScorerTopN{Scorer: model, NumItems: sp.Train.NumItems()}, sp.Train, n)
	// A permissive threshold (TR below the score range top) ensures items
	// qualify for re-ranking, which is where coverage gains come from.
	r, err := NewRBT(sp.Train, model, RBTConfig{N: n, TR: 3.5, TMax: 5, TH: 1, Criterion: RBTPop})
	if err != nil {
		t.Fatal(err)
	}
	rbt := r.RecommendAll()
	if len(rbt.DistinctItems()) <= len(base.DistinctItems()) {
		t.Fatalf("RBT(Pop) coverage %d should exceed base RSVD coverage %d",
			len(rbt.DistinctItems()), len(base.DistinctItems()))
	}
}

func TestRBTFallsBackWhenNothingQualifies(t *testing.T) {
	sp, model := setupShared(t)
	n := 5
	// Threshold far above any predicted rating → re-ranking never fires and
	// the output equals the base accuracy ranking.
	r, err := NewRBT(sp.Train, model, RBTConfig{N: n, TR: 100, TMax: 5, TH: 1, Criterion: RBTPop})
	if err != nil {
		t.Fatal(err)
	}
	base := &recommender.ScorerTopN{Scorer: model, NumItems: sp.Train.NumItems()}
	for u := 0; u < 20; u++ {
		uid := types.UserID(u)
		want := base.Recommend(uid, n, sp.Train.UserItemSet(uid))
		got := r.Recommend(uid, sp.Train.UserItemSet(uid))
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("user %d: fallback list %v != base list %v", u, got, want)
			}
		}
	}
}

func TestFiveDConfigValidation(t *testing.T) {
	sp, model := setupShared(t)
	if _, err := NewFiveD(sp.Train, model, FiveDConfig{N: 0, Q: 1}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := NewFiveD(sp.Train, model, FiveDConfig{N: 5, Q: 0}); err == nil {
		t.Fatal("Q=0 accepted")
	}
}

func TestFiveDVariantsProduceValidCollections(t *testing.T) {
	sp, model := setupShared(t)
	variants := []FiveDConfig{
		DefaultFiveDConfig(5),
		{N: 5, Q: 1, AccuracyFilter: true},
		{N: 5, Q: 1, RankByRankings: true},
		{N: 5, Q: 1, AccuracyFilter: true, RankByRankings: true},
	}
	names := map[string]bool{}
	for _, cfg := range variants {
		f, err := NewFiveD(sp.Train, model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		recs := f.RecommendAll()
		validateCollection(t, f.Name(), recs, sp.Train, 5)
		names[f.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("variant names not distinct: %v", names)
	}
}

func TestFiveDPromotesLongTailAggressively(t *testing.T) {
	// The paper's Table IV: 5D attains the highest LTAccuracy of all
	// re-rankers, at a large cost in accuracy. Verify that the share of
	// long-tail items in the plain 5D output exceeds the base model's.
	sp, model := setupShared(t)
	n := 5
	tail := sp.Train.LongTail(dataset.DefaultTailShare)
	countTail := func(recs types.Recommendations) (tailCount, total int) {
		for _, set := range recs {
			for _, i := range set {
				total++
				if _, ok := tail[i]; ok {
					tailCount++
				}
			}
		}
		return
	}
	base := recommender.RecommendAll(&recommender.ScorerTopN{Scorer: model, NumItems: sp.Train.NumItems()}, sp.Train, n)
	f, err := NewFiveD(sp.Train, model, DefaultFiveDConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	fd := f.RecommendAll()
	baseTail, baseTotal := countTail(base)
	fdTail, fdTotal := countTail(fd)
	if float64(fdTail)/float64(fdTotal) <= float64(baseTail)/float64(baseTotal) {
		t.Fatalf("5D long-tail share %.3f should exceed base %.3f",
			float64(fdTail)/float64(fdTotal), float64(baseTail)/float64(baseTotal))
	}
}

func TestFiveDAccuracyFilterKeepsHigherScoredItems(t *testing.T) {
	sp, model := setupShared(t)
	n := 5
	plain, _ := NewFiveD(sp.Train, model, FiveDConfig{N: n, Q: 1})
	filtered, _ := NewFiveD(sp.Train, model, FiveDConfig{N: n, Q: 1, AccuracyFilter: true})
	// Average accuracy score of recommended items should not decrease when
	// the accuracy filter is on.
	avgScore := func(recs types.Recommendations) float64 {
		s, c := 0.0, 0
		for u, set := range recs {
			for _, i := range set {
				s += model.Score(u, i)
				c++
			}
		}
		return s / float64(c)
	}
	if avgScore(filtered.RecommendAll()) < avgScore(plain.RecommendAll())-1e-9 {
		t.Fatal("accuracy filter decreased the average predicted rating of recommendations")
	}
}

func TestPRAConfigValidation(t *testing.T) {
	sp, model := setupShared(t)
	bad := []PRAConfig{
		{N: 0, ExchangeableSize: 10, SampleSize: 10},
		{N: 5, ExchangeableSize: 0, SampleSize: 10},
		{N: 5, ExchangeableSize: 10, SampleSize: 0},
		{N: 5, ExchangeableSize: 10, SampleSize: 10, MaxSteps: -1},
	}
	for k, cfg := range bad {
		if _, err := NewPRA(sp.Train, model, cfg); err == nil {
			t.Errorf("case %d: expected error", k)
		}
	}
}

func TestPRAProducesValidCollections(t *testing.T) {
	sp, model := setupShared(t)
	for _, x := range []int{10, 20} {
		p, err := NewPRA(sp.Train, model, DefaultPRAConfig(5, x))
		if err != nil {
			t.Fatal(err)
		}
		recs := p.RecommendAll()
		validateCollection(t, p.Name(), recs, sp.Train, 5)
		if !strings.Contains(p.Name(), "PRA(RSVD,") {
			t.Fatalf("name %q does not follow the template", p.Name())
		}
	}
}

func TestPRAAdaptsListNoveltyTowardUserTendency(t *testing.T) {
	sp, model := setupShared(t)
	n := 5
	p, err := NewPRA(sp.Train, model, DefaultPRAConfig(n, 20))
	if err != nil {
		t.Fatal(err)
	}
	base := &recommender.ScorerTopN{Scorer: model, NumItems: sp.Train.NumItems()}
	improved, worsened := 0, 0
	for u := 0; u < sp.Train.NumUsers(); u++ {
		uid := types.UserID(u)
		exclude := sp.Train.UserItemSet(uid)
		baseList := base.Recommend(uid, n, exclude)
		praList := p.Recommend(uid, exclude)
		target := p.userTendency(uid)
		baseGap := absF(p.listNovelty(baseList) - target)
		praGap := absF(p.listNovelty(praList) - target)
		if praGap < baseGap-1e-12 {
			improved++
		} else if praGap > baseGap+1e-12 {
			worsened++
		}
	}
	if worsened > 0 {
		t.Fatalf("PRA moved %d users' lists away from their tendency", worsened)
	}
	if improved == 0 {
		t.Fatal("PRA never adapted any list; the swap loop seems inert")
	}
}

func TestPRAZeroStepsEqualsBaseRanking(t *testing.T) {
	sp, model := setupShared(t)
	n := 5
	p, err := NewPRA(sp.Train, model, PRAConfig{N: n, ExchangeableSize: 10, SampleSize: 10, MaxSteps: 0})
	if err != nil {
		t.Fatal(err)
	}
	base := &recommender.ScorerTopN{Scorer: model, NumItems: sp.Train.NumItems()}
	for u := 0; u < 15; u++ {
		uid := types.UserID(u)
		exclude := sp.Train.UserItemSet(uid)
		want := base.Recommend(uid, n, exclude)
		got := p.Recommend(uid, exclude)
		wantSet := map[types.ItemID]bool{}
		for _, i := range want {
			wantSet[i] = true
		}
		for _, i := range got {
			if !wantSet[i] {
				t.Fatalf("user %d: zero-step PRA changed the list: %v vs %v", u, got, want)
			}
		}
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
