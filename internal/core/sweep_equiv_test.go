package core

// Equivalence property tests for the buffered/CELF candidate pipeline: across
// randomized synthetic datasets, the new sweeps must reproduce the
// pre-refactor per-pick rescan optimizer (kept verbatim in reference.go) —
// identical recommendations for the modular coverage objectives (Stat, and a
// deterministic Rand-style stand-in) and an equal objective value for the
// submodular Dyn objective.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/longtail"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// equivSplit generates a randomized synthetic dataset for one property trial.
func equivSplit(t *testing.T, trial int64) *dataset.Split {
	t.Helper()
	cfg := synth.ML100K(synth.Scale(0.06 + 0.02*float64(trial%3)))
	cfg.Seed = 500 + trial
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitByUser(0.8, rand.New(rand.NewSource(trial)))
}

// equivPrefs estimates a θ vector, alternating models across trials so the
// equivalence holds for spread-out and concentrated preference shapes.
func equivPrefs(t *testing.T, train *dataset.Dataset, trial int64) *longtail.Preferences {
	t.Helper()
	models := []longtail.Model{longtail.ModelTFIDF, longtail.ModelGeneralized, longtail.ModelActivity}
	prefs, err := longtail.Estimate(models[trial%3], train, nil, 0.5, trial)
	if err != nil {
		t.Fatal(err)
	}
	return prefs
}

func assertSameCollections(t *testing.T, label string, got, want types.Recommendations) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: user counts differ: %d vs %d", label, len(got), len(want))
	}
	for u, wantSet := range want {
		gotSet := got[u]
		if len(gotSet) != len(wantSet) {
			t.Fatalf("%s: user %d set sizes differ: %v vs %v", label, u, gotSet, wantSet)
		}
		for k := range wantSet {
			if gotSet[k] != wantSet[k] {
				t.Fatalf("%s: user %d: new %v != reference %v", label, u, gotSet, wantSet)
			}
		}
	}
}

func TestSweepEquivalenceStatCoverage(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		sp := equivSplit(t, trial)
		train := sp.Train
		prefs := equivPrefs(t, train, trial)
		g, err := New(train, NewPopAccuracy(train, 5), prefs, NewStatCoverage(train), Config{N: 5, Seed: trial})
		if err != nil {
			t.Fatal(err)
		}
		newRecs := g.Recommend()
		refRecs := g.ReferenceRecommendAll()
		assertSameCollections(t, "Stat", newRecs, refRecs)
	}
}

// hashCoverage is a deterministic stand-in for the Rand coverage recommender:
// per-(user, item) pseudo-random scores that, unlike RandCoverage's shared
// rng, do not depend on evaluation order, so the pre-refactor per-pick rescan
// and the buffered sweep can be compared exactly. withBulk toggles the
// BulkCoverage fast path so both the buffered and the live-scoring oracle
// modes are exercised.
type hashCoverage struct {
	seed     uint64
	withBulk bool
}

func (h *hashCoverage) score(u types.UserID, i types.ItemID) float64 {
	x := h.seed ^ (uint64(uint32(u)) << 32) ^ uint64(uint32(i))
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x%1000) / 999.0
}

func (h *hashCoverage) CoverageScore(u types.UserID, i types.ItemID) float64 { return h.score(u, i) }
func (h *hashCoverage) Observe(types.ItemID)                                 {}
func (h *hashCoverage) Name() string                                         { return "Hash" }

// hashCoverageBulk adds the BulkCoverage contract on top of hashCoverage.
type hashCoverageBulk struct{ hashCoverage }

func (h *hashCoverageBulk) CoverageScores(u types.UserID, items []types.ItemID, out []float64) {
	for k, i := range items {
		out[k] = h.score(u, i)
	}
}

func TestSweepEquivalenceRandStyleCoverage(t *testing.T) {
	// RandCoverage itself redraws from a shared rng on every evaluation, so
	// the old and new paths consume it in different orders and cannot be
	// compared bit-for-bit; a deterministic per-(u,i) hash reproduces the
	// "independent uniform score" objective in an order-free way.
	for trial := int64(0); trial < 4; trial++ {
		sp := equivSplit(t, trial)
		train := sp.Train
		prefs := equivPrefs(t, train, trial)
		for _, crec := range []CoverageRecommender{
			&hashCoverageBulk{hashCoverage{seed: uint64(trial)*7919 + 13, withBulk: true}}, // buffered oracle mode
			&hashCoverage{seed: uint64(trial)*7919 + 13},                                   // live oracle mode
		} {
			g, err := New(train, NewPopAccuracy(train, 5), prefs, crec, Config{N: 5, Seed: trial})
			if err != nil {
				t.Fatal(err)
			}
			newRecs := g.Recommend()
			refRecs := g.ReferenceRecommendAll()
			assertSameCollections(t, "Rand-style/"+crec.Name(), newRecs, refRecs)
		}
	}
}

func TestSweepEquivalenceDynObjectiveValue(t *testing.T) {
	// For the submodular Dyn objective the acceptance bar is equality of the
	// objective value (preserving the 1/2-approximation guarantee); in
	// practice the per-user subproblems have identical optima and the sets
	// match exactly, which is asserted too.
	for trial := int64(0); trial < 4; trial++ {
		sp := equivSplit(t, trial)
		train := sp.Train
		prefs := equivPrefs(t, train, trial)
		for _, sampleSize := range []int{0, train.NumUsers() / 4} {
			build := func() *GANC {
				g, err := New(train, NewPopAccuracy(train, 5), prefs, NewDynCoverage(train.NumItems()),
					Config{N: 5, SampleSize: sampleSize, Seed: trial})
				if err != nil {
					t.Fatal(err)
				}
				return g
			}
			gNew, gRef := build(), build()
			newRecs := gNew.Recommend()
			refRecs := gRef.ReferenceRecommendAll()
			newVal := gNew.ValueOf(newRecs)
			refVal := gRef.ValueOf(refRecs)
			if math.Abs(newVal-refVal) > 1e-9 {
				t.Fatalf("trial %d S=%d: Dyn objective differs: new %.12f vs reference %.12f",
					trial, sampleSize, newVal, refVal)
			}
			assertSameCollections(t, "Dyn", newRecs, refRecs)
		}
	}
}

func TestSweepEquivalenceOnlineRecommendUser(t *testing.T) {
	sp := equivSplit(t, 1)
	train := sp.Train
	prefs := equivPrefs(t, train, 1)
	ctx := context.Background()
	for _, crec := range []CoverageRecommender{
		NewStatCoverage(train),
		NewDynCoverage(train.NumItems()),
	} {
		g, err := New(train, NewPopAccuracy(train, 5), prefs, crec, Config{N: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := crec.(*DynCoverage); ok {
			// Advance the Dyn state so the frozen snapshot is non-trivial.
			_ = g.Recommend()
		}
		for u := 0; u < 30 && u < train.NumUsers(); u++ {
			uid := types.UserID(u)
			got, err := g.RecommendUser(ctx, uid, 7)
			if err != nil {
				t.Fatal(err)
			}
			want, err := g.ReferenceRecommendUser(ctx, uid, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s user %d: %v vs %v", crec.Name(), u, got, want)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s user %d: new %v != reference %v", crec.Name(), u, got, want)
				}
			}
		}
	}
}

func TestSweepEquivalenceShardedMatchesSequential(t *testing.T) {
	// The sharded worker pool must not change outputs: same collection for
	// any worker count, for both the stateless sweep and OSLG out-of-sample.
	sp := equivSplit(t, 2)
	train := sp.Train
	prefs := equivPrefs(t, train, 2)
	for _, tc := range []struct {
		name   string
		build  func() CoverageRecommender
		sample int
	}{
		{"Stat", func() CoverageRecommender { return NewStatCoverage(train) }, 0},
		{"Dyn-OSLG", func() CoverageRecommender { return NewDynCoverage(train.NumItems()) }, train.NumUsers() / 5},
	} {
		run := func(workers int) types.Recommendations {
			g, err := New(train, NewPopAccuracy(train, 5), prefs, tc.build(),
				Config{N: 5, SampleSize: tc.sample, Seed: 3, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			return g.Recommend()
		}
		assertSameCollections(t, tc.name, run(8), run(1))
	}
}
