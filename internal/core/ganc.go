// Package core implements GANC, the paper's Generic re-ranking framework for
// trading off Accuracy, Novelty and Coverage, together with its OSLG
// (Ordered Sampling-based Locally Greedy) optimization algorithm.
//
// GANC combines three pluggable components (Section III):
//
//   - an accuracy recommender providing a per-item accuracy score a(i) ∈ [0,1],
//   - a coverage recommender providing a per-item coverage score c(i) ∈ [0,1],
//   - a per-user long-tail novelty preference θ_u ∈ [0,1].
//
// The user value function is v_u(P_u) = (1−θ_u)·a(P_u) + θ_u·c(P_u), and the
// framework selects a top-N collection maximizing Σ_u v_u(P_u). With the
// static coverage recommenders (Rand, Stat) the objective decomposes per user
// and a plain greedy sweep is exact; with the Dyn coverage recommender the
// objective is submodular across users and OSLG (Algorithm 1) is used.
package core

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/kde"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/submodular"
	"ganc/internal/types"
)

// AccuracyRecommender provides the accuracy score a(i) ∈ [0,1] for a user.
// Implementations wrap the base models (Pop, RSVD, PSVD, ...).
type AccuracyRecommender interface {
	// AccuracyScore returns a(i) for user u; must lie in [0,1].
	AccuracyScore(u types.UserID, i types.ItemID) float64
	// Name identifies the accuracy recommender in experiment output.
	Name() string
}

// CoverageRecommender provides the coverage score c(i) ∈ [0,1]. The Dyn
// recommender is stateful: its score depends on the recommendations made so
// far, which it learns about through Observe.
type CoverageRecommender interface {
	// CoverageScore returns c(i) for user u; must lie in [0,1].
	CoverageScore(u types.UserID, i types.ItemID) float64
	// Observe informs the recommender that item i was just recommended (to
	// any user). Stateless recommenders ignore it.
	Observe(i types.ItemID)
	// Name identifies the coverage recommender in experiment output.
	Name() string
}

// --- Accuracy recommender adapters -------------------------------------------

// BulkAccuracy is the batch companion of AccuracyRecommender: one call fills
// a preallocated buffer with a(items[k]) for user u. The candidate pipeline
// uses it to score a user's whole candidate set in one call; implementations
// must return exactly the values AccuracyScore would (accuracy scores are
// stateless by contract, so buffering them for the duration of a sweep is
// always sound).
type BulkAccuracy interface {
	// AccuracyScores fills out[k] with a(items[k]) for user u;
	// len(out) == len(items).
	AccuracyScores(u types.UserID, items []types.ItemID, out []float64)
}

// BulkAccuracy32 is the reduced-precision companion of BulkAccuracy: scores
// land in a float32 arena instead of a float64 buffer. Implementations must
// agree with AccuracyScore to the serving tier's documented tolerance
// (DESIGN.md §12); the optimizer only consults it when Config.Precision is
// not float64, so the default pipeline never leaves the exact path.
type BulkAccuracy32 interface {
	// AccuracyScores32 fills out[k] with a(items[k]) for user u;
	// len(out) == len(items).
	AccuracyScores32(u types.UserID, items []types.ItemID, out []float32)
}

// fillAccuracyScores fills out with arec's scores for items, using the bulk
// path when available.
func fillAccuracyScores(arec AccuracyRecommender, u types.UserID, items []types.ItemID, out []float64) {
	if ba, ok := arec.(BulkAccuracy); ok {
		ba.AccuracyScores(u, items, out)
		return
	}
	for k, i := range items {
		out[k] = arec.AccuracyScore(u, i)
	}
}

// ScorerAccuracy adapts any recommender.Scorer whose scores are already in
// [0,1] (e.g. a NormalizedScorer around RSVD or PSVD).
type ScorerAccuracy struct {
	Scorer recommender.Scorer
}

// AccuracyScore implements AccuracyRecommender.
func (s *ScorerAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	v := s.Scorer.Score(u, i)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AccuracyScores implements BulkAccuracy through the scorer's bulk path,
// clamping to [0,1] exactly as AccuracyScore does.
func (s *ScorerAccuracy) AccuracyScores(u types.UserID, items []types.ItemID, out []float64) {
	recommender.BulkScores(s.Scorer, u, items, out)
	for k, v := range out {
		if v < 0 {
			out[k] = 0
		} else if v > 1 {
			out[k] = 1
		}
	}
}

// AccuracyScores32 implements BulkAccuracy32. When the wrapped scorer serves
// a reduced-precision tier (recommender.Bulk32For), scores stay in float32
// end to end; otherwise the float64 scores are computed pointwise and
// truncated. Clamping mirrors AccuracyScore.
func (s *ScorerAccuracy) AccuracyScores32(u types.UserID, items []types.ItemID, out []float32) {
	if bs, ok := recommender.Bulk32For(s.Scorer); ok {
		bs.ScoreUser32(u, items, out)
	} else {
		for k, i := range items {
			out[k] = float32(s.Scorer.Score(u, i))
		}
	}
	for k, v := range out {
		if v < 0 {
			out[k] = 0
		} else if v > 1 {
			out[k] = 1
		}
	}
}

// Name implements AccuracyRecommender.
func (s *ScorerAccuracy) Name() string { return s.Scorer.Name() }

// PopAccuracy is the paper's Pop accuracy recommender: a(i) = 1 when i is in
// the user's popularity top-N (excluding their train items), 0 otherwise.
// It is safe for concurrent use: lookups take a read lock only, so the hot
// serving path never serializes on the cache, and the cache is bounded by
// cacheCap with arbitrary-entry eviction (map iteration order) once full.
type PopAccuracy struct {
	pop   *recommender.Pop
	train *dataset.Dataset
	topN  int
	mu    sync.RWMutex
	// cache maps a user to their top-N membership bitset: bit i set means
	// item i is in the user's popularity top-N. A bitset row costs |I|/8
	// bytes and answers a membership probe with one shift instead of a map
	// probe, which is what the candidate-sweep hot loop does per item.
	cache    map[types.UserID][]uint64
	cacheCap int
}

// NewPopAccuracy builds the indicator-style Pop accuracy recommender. topN is
// the N of the top-N sets being constructed.
func NewPopAccuracy(train *dataset.Dataset, topN int) *PopAccuracy {
	return &PopAccuracy{
		pop:      recommender.NewPop(train),
		train:    train,
		topN:     topN,
		cache:    make(map[types.UserID][]uint64),
		cacheCap: 200_000,
	}
}

// topBits returns user u's popularity top-N membership bitset, computing and
// caching it on first use. The fast path is a read-locked map lookup.
func (p *PopAccuracy) topBits(u types.UserID) []uint64 {
	p.mu.RLock()
	bits, ok := p.cache[u]
	p.mu.RUnlock()
	if ok {
		return bits
	}
	top := p.pop.RecommendFrom(u, p.topN, p.train.AppendCandidates(u, nil))
	bits = make([]uint64, (p.train.NumItems()+63)/64)
	for _, it := range top {
		bits[it>>6] |= 1 << (uint(it) & 63)
	}
	p.mu.Lock()
	if cached, ok := p.cache[u]; ok {
		// Another goroutine computed the set first; keep its copy so all
		// callers share one bitset.
		bits = cached
	} else {
		if len(p.cache) >= p.cacheCap {
			p.evictOneLocked()
		}
		p.cache[u] = bits
	}
	p.mu.Unlock()
	return bits
}

// inBits reports whether item i's bit is set (items beyond the bitset are
// absent by definition).
func inBits(bits []uint64, i types.ItemID) bool {
	w := int(i) >> 6
	return w < len(bits) && bits[w]>>(uint(i)&63)&1 == 1
}

// evictOneLocked removes one arbitrary cache entry (map iteration order is
// randomized, which approximates random replacement) so the cache stays
// bounded under serving load instead of refusing new users. Callers hold
// p.mu for writing.
func (p *PopAccuracy) evictOneLocked() {
	for victim := range p.cache {
		delete(p.cache, victim)
		break
	}
}

// AccuracyScore implements AccuracyRecommender: membership in the user's
// popularity top-N.
func (p *PopAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	if inBits(p.topBits(u), i) {
		return 1
	}
	return 0
}

// AccuracyScores implements BulkAccuracy: the membership bitset is resolved
// once for the whole candidate slice.
func (p *PopAccuracy) AccuracyScores(u types.UserID, items []types.ItemID, out []float64) {
	bits := p.topBits(u)
	for k, i := range items {
		if inBits(bits, i) {
			out[k] = 1
		} else {
			out[k] = 0
		}
	}
}

// AccuracyScores32 implements BulkAccuracy32: indicator scores are exact in
// float32, so the reduced-precision sweep path reads the same memberships.
func (p *PopAccuracy) AccuracyScores32(u types.UserID, items []types.ItemID, out []float32) {
	bits := p.topBits(u)
	for k, i := range items {
		if inBits(bits, i) {
			out[k] = 1
		} else {
			out[k] = 0
		}
	}
}

// SetCacheCap overrides the top-N membership cache bound (primarily for
// tests). Caps ≤ 0 are treated as 1.
func (p *PopAccuracy) SetCacheCap(cap int) {
	if cap <= 0 {
		cap = 1
	}
	p.mu.Lock()
	p.cacheCap = cap
	for len(p.cache) > cap {
		p.evictOneLocked()
	}
	p.mu.Unlock()
}

// CacheLen reports how many users' top-N sets are currently cached.
func (p *PopAccuracy) CacheLen() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache)
}

// Name implements AccuracyRecommender.
func (p *PopAccuracy) Name() string { return "Pop" }

// --- Coverage recommenders ----------------------------------------------------

// BulkCoverage is an optional CoverageRecommender extension for recommenders
// whose per-user scores can be materialized once per sweep: implementing it
// asserts that, within a single user's greedy sweep, an item's coverage score
// only changes through Observe calls on that same item (which the sweep never
// re-evaluates, because picked items leave the candidate pool). Stat and Rand
// qualify trivially; Dyn is handled natively by the optimizer. Stateful
// custom recommenders that do not implement it are scored live through
// CoverageScore on every (lazy) gain evaluation, which stays correct for any
// submodular objective.
type BulkCoverage interface {
	// CoverageScores fills out[k] with c(items[k]) for user u;
	// len(out) == len(items).
	CoverageScores(u types.UserID, items []types.ItemID, out []float64)
}

// invSqrtTab caches 1/√(f+1) for small frequencies f. Coverage scores are
// dominated by tiny integer frequencies (train popularities and
// recommendation counts), so the hot gain loops read a table entry instead
// of calling math.Sqrt. Entries are computed by the exact expression the
// live fallback uses, so tabled and computed scores are bit-identical.
var invSqrtTab = func() [1024]float64 {
	var t [1024]float64
	for f := range t {
		t[f] = 1 / math.Sqrt(float64(f)+1)
	}
	return t
}()

// invSqrtFreq returns 1/√(f+1), from the table when f is small.
func invSqrtFreq(f int) float64 {
	if f >= 0 && f < len(invSqrtTab) {
		return invSqrtTab[f]
	}
	return 1 / math.Sqrt(float64(f)+1)
}

// invSqrtTab32 is invSqrtTab rounded to float32 once at init. Each entry
// equals float32(invSqrtFreq(f)) bit-for-bit (one float64→float32 rounding of
// the same double), so the reduced-precision sweep can read the narrow table
// directly and stay bit-identical to the general float32 gain expression.
var invSqrtTab32 = func() [1024]float32 {
	var t [1024]float32
	for f := range t {
		t[f] = float32(invSqrtTab[f])
	}
	return t
}()

// invSqrtFreq32 returns float32(invSqrtFreq(f)), from the narrow table when f
// is small.
func invSqrtFreq32(f int) float32 {
	if f >= 0 && f < len(invSqrtTab32) {
		return invSqrtTab32[f]
	}
	return float32(1 / math.Sqrt(float64(f)+1))
}

// RandCoverage assigns each (user, item) pair an independent uniform score,
// the paper's Rand coverage recommender. It is safe for concurrent use.
type RandCoverage struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandCoverage builds a Rand coverage recommender.
func NewRandCoverage(seed int64) *RandCoverage {
	return &RandCoverage{rng: rand.New(rand.NewSource(seed))}
}

// CoverageScore implements CoverageRecommender.
func (r *RandCoverage) CoverageScore(types.UserID, types.ItemID) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// CoverageScores implements BulkCoverage: the mutex is taken once per sweep
// instead of once per (item, pick) evaluation.
func (r *RandCoverage) CoverageScores(_ types.UserID, items []types.ItemID, out []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range items {
		out[k] = r.rng.Float64()
	}
}

// Observe implements CoverageRecommender (no state).
func (r *RandCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (r *RandCoverage) Name() string { return "Rand" }

// StatCoverage scores items by a monotone decreasing function of their train
// popularity: c(i) = 1/√(f_i^R + 1). The gain of recommending an item is
// constant regardless of how often it has already been recommended.
type StatCoverage struct {
	scores []float64
}

// NewStatCoverage precomputes the static coverage scores from the train set.
func NewStatCoverage(train *dataset.Dataset) *StatCoverage {
	scores := make([]float64, train.NumItems())
	for i := range scores {
		scores[i] = 1 / math.Sqrt(float64(train.ItemPopularity(types.ItemID(i)))+1)
	}
	return &StatCoverage{scores: scores}
}

// CoverageScore implements CoverageRecommender.
func (s *StatCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(s.scores) {
		return 0
	}
	return s.scores[i]
}

// CoverageScores implements BulkCoverage: a vectorized lookup of the
// precomputed static scores.
func (s *StatCoverage) CoverageScores(_ types.UserID, items []types.ItemID, out []float64) {
	for k, i := range items {
		if int(i) >= len(s.scores) {
			out[k] = 0
			continue
		}
		out[k] = s.scores[i]
	}
}

// Observe implements CoverageRecommender (no state).
func (s *StatCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (s *StatCoverage) Name() string { return "Stat" }

// DynCoverage scores items by a monotone decreasing function of how often
// they have been recommended so far: c(i) = 1/√(f_i^A + 1), where f_i^A is
// the recommendation frequency in the partial top-N collection A. It has the
// diminishing-returns property that makes GANC's objective submodular.
type DynCoverage struct {
	freq []int

	// gen counts mutations of freq; FrozenFrequencies compares it against
	// snapGen to decide whether the cached read-only snapshot is still
	// current. Mutators (Observe, SetFrequencies — the batch path) must not
	// run concurrently with readers, per the engine contract; snapMu only
	// serializes concurrent online snapshot requests against each other.
	gen     uint64
	snapMu  sync.Mutex
	snap    []int
	snapGen uint64
	hasSnap bool
}

// NewDynCoverage builds a Dyn coverage recommender over a catalog of numItems
// items with all frequencies zero.
func NewDynCoverage(numItems int) *DynCoverage {
	return &DynCoverage{freq: make([]int, numItems)}
}

// CoverageScore implements CoverageRecommender.
func (d *DynCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(d.freq) {
		return 0
	}
	return invSqrtFreq(d.freq[i])
}

// Observe implements CoverageRecommender: bumps the item's frequency.
func (d *DynCoverage) Observe(i types.ItemID) {
	if int(i) < len(d.freq) {
		d.freq[i]++
		d.gen++
	}
}

// Name implements CoverageRecommender.
func (d *DynCoverage) Name() string { return "Dyn" }

// Frequencies returns a copy of the current recommendation-frequency state
// (OSLG snapshots it per sampled user).
func (d *DynCoverage) Frequencies() []int {
	out := make([]int, len(d.freq))
	copy(out, d.freq)
	return out
}

// FrozenFrequencies returns a read-only snapshot of the current frequency
// state for the online serving path. The snapshot is cached and shared across
// requests until the next mutation: when the generation counter has moved, a
// fresh slice is built (never the old one re-filled, since earlier callers
// may still be reading it), otherwise the call is a mutex-protected pointer
// read. Callers must not modify the returned slice.
func (d *DynCoverage) FrozenFrequencies() []int {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if !d.hasSnap || d.snapGen != d.gen {
		d.snap = append([]int(nil), d.freq...)
		d.snapGen = d.gen
		d.hasSnap = true
	}
	return d.snap
}

// SetFrequencies replaces the frequency state (OSLG restores snapshots for
// out-of-sample users).
func (d *DynCoverage) SetFrequencies(f []int) {
	if len(f) != len(d.freq) {
		panic(fmt.Sprintf("core: frequency vector length %d != catalog size %d", len(f), len(d.freq)))
	}
	copy(d.freq, f)
	d.gen++
}

// NumItems returns the catalog size the recommender was built for.
func (d *DynCoverage) NumItems() int { return len(d.freq) }

// --- GANC ---------------------------------------------------------------------

// Config configures a GANC instance.
type Config struct {
	// N is the size of each top-N set.
	N int
	// SampleSize S is the number of users processed sequentially by OSLG.
	// Values ≤ 0 or ≥ |U| disable sampling and run the fully sequential
	// locally greedy algorithm. Only used with the Dyn coverage recommender.
	SampleSize int
	// Seed drives the KDE sampling and any randomized component.
	Seed int64
	// Workers is the number of goroutines used for the out-of-sample phase of
	// OSLG (Algorithm 1, lines 11–15, which the paper notes can run in
	// parallel) and for the independent per-user sweeps of the stateless
	// coverage recommenders. Values ≤ 1 run sequentially; values above
	// runtime.NumCPU() are clamped to it.
	Workers int
	// Precision selects the arithmetic tier of the modular sweep fast path.
	// The zero value (PrecisionF64) keeps every sweep on exact float64
	// arithmetic; PrecisionF32/PrecisionInt8 let sweeps whose accuracy
	// recommender implements BulkAccuracy32 score and select in a pooled
	// float32 arena (DESIGN.md §12 documents the tolerance contract). It
	// should match the precision configured on the underlying base scorer.
	Precision types.ScoringPrecision
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", c.N)
	}
	return nil
}

// GANC is a configured instance of the framework. Construct with New.
type GANC struct {
	cfg      Config
	arec     AccuracyRecommender
	crec     CoverageRecommender
	prefs    *longtail.Preferences
	train    *dataset.Dataset
	numItems int

	// scratchPool recycles the per-sweep candidate and score buffers, so the
	// online RecommendUser path and the sharded batch workers allocate the
	// catalog-sized buffers once instead of per call.
	scratchPool sync.Pool

	// popRank caches the catalog ranked by Dyn coverage score for the
	// current frozen snapshot (identified by slice identity), so online
	// Pop+Dyn sweeps walk ~n ranked positions per request instead of
	// re-scoring the catalog. Rebuilt whenever the snapshot generation
	// moves; batch sweeps pass per-θ snapshots and never hit it.
	popRankMu sync.Mutex
	popRank   *popDynRank
}

// New assembles a GANC instance from its three components, following the
// paper's template GANC(ARec, θ, CRec).
func New(train *dataset.Dataset, arec AccuracyRecommender, prefs *longtail.Preferences, crec CoverageRecommender, cfg Config) (*GANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil || arec == nil || prefs == nil || crec == nil {
		return nil, fmt.Errorf("core: train, accuracy recommender, preferences and coverage recommender are all required")
	}
	if prefs.Len() != train.NumUsers() {
		return nil, fmt.Errorf("core: preference vector covers %d users but train set has %d", prefs.Len(), train.NumUsers())
	}
	g := &GANC{
		cfg:      cfg,
		arec:     arec,
		crec:     crec,
		prefs:    prefs,
		train:    train,
		numItems: train.NumItems(),
	}
	g.scratchPool.New = func() interface{} { return newSweepScratch(g.numItems) }
	return g, nil
}

// Name returns the paper-style template string GANC(ARec, θ, CRec).
func (g *GANC) Name() string {
	return fmt.Sprintf("GANC(%s, θ^%s, %s)", g.arec.Name(), shortModel(g.prefs.Model), g.crec.Name())
}

func shortModel(m longtail.Model) string {
	switch m {
	case longtail.ModelActivity:
		return "A"
	case longtail.ModelNormalizedLongTail:
		return "N"
	case longtail.ModelTFIDF:
		return "T"
	case longtail.ModelGeneralized:
		return "G"
	case longtail.ModelRandom:
		return "R"
	case longtail.ModelConstant:
		return "C"
	default:
		return string(m)
	}
}

// marginalGain is the gain of appending item i to user u's set:
// (1−θ_u)·a(i) + θ_u·c(i). Both component scores are in [0,1] so the gain is
// too.
func (g *GANC) marginalGain(u types.UserID, i types.ItemID) float64 {
	theta := g.prefs.Get(u)
	return (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
}

// --- Buffered CELF sweep machinery --------------------------------------------

// coverageMode selects how the sweep oracle resolves coverage scores. Only
// the live modes reach the oracle: sweeps whose gains are static for the
// whole sweep (frozen Dyn snapshots, buffered Stat/Rand coverage) take the
// modular fast path in sweepModular and never build an oracle.
type coverageMode int

const (
	// covDynLive reads the shared live Dyn frequency state (the OSLG
	// sequential in-sample phase).
	covDynLive coverageMode = iota
	// covLive calls CoverageScore on every gain evaluation (custom stateful
	// recommenders without a bulk contract; correct for any submodular gain).
	covLive
)

// sweepScratch holds one worker's reusable buffers: the candidate slice,
// packed staging buffers aligned with it (float64 gains, float64 coverage
// and the reduced-precision float32 arena), the dense (by-ItemID) accuracy
// buffer, the streaming top-k selectors of the sparse Pop+Dyn fast path and
// the CELF heap storage. One scratch serves one sweep at a time.
type sweepScratch struct {
	cand      []types.ItemID
	packed    []float64
	packedCov []float64
	packed32  []float32
	acc       []float64
	hist      []int32
	popCand   []types.ItemID
	popBase   []int32
	top32     recommender.TopK32
	top64     recommender.TopK64
	lazy      submodular.LazyScratch
	oracle    sweepOracle
}

func newSweepScratch(numItems int) *sweepScratch {
	return &sweepScratch{
		acc: make([]float64, numItems),
	}
}

func (g *GANC) getScratch() *sweepScratch   { return g.scratchPool.Get().(*sweepScratch) }
func (g *GANC) putScratch(sc *sweepScratch) { g.scratchPool.Put(sc) }

// sweepOracle adapts one user's buffered scores to the submodular.Oracle
// interface consumed by the CELF lazy-greedy selection.
type sweepOracle struct {
	crec    CoverageRecommender
	theta   float64
	cand    []types.ItemID
	acc     []float64 // dense by ItemID
	dyn     *DynCoverage
	mode    coverageMode
	observe bool
}

// Candidates implements submodular.Oracle.
func (o *sweepOracle) Candidates(types.UserID) []types.ItemID { return o.cand }

// Gain implements submodular.Oracle: (1−θ)·a(i) + θ·c(i) with a(i) read from
// the dense accuracy buffer and c(i) resolved per the coverage mode.
func (o *sweepOracle) Gain(u types.UserID, i types.ItemID) float64 {
	var cov float64
	switch o.mode {
	case covDynLive:
		cov = o.dyn.CoverageScore(u, i)
	case covLive:
		cov = o.crec.CoverageScore(u, i)
	}
	return (1-o.theta)*o.acc[i] + o.theta*cov
}

// Commit implements submodular.Oracle: batch sweeps report each pick to the
// coverage recommender; frozen/online sweeps never mutate shared state.
func (o *sweepOracle) Commit(_ types.UserID, i types.ItemID) {
	if o.observe {
		o.crec.Observe(i)
	}
}

// sweepUser builds one user's top-n set through the index-contiguous
// candidate pipeline: candidates are enumerated by a linear merge against the
// user's sorted train adjacency, accuracy scores land in a dense buffer via
// one bulk call, and items are selected with the CELF lazy-greedy heap. When
// freq is non-nil the sweep runs against that frozen Dyn snapshot; observe
// reports picks to the shared coverage recommender (the batch path).
//
// Frozen-snapshot and buffered-coverage sweeps never change a candidate's
// gain mid-sweep (the objective restricted to one user is modular: picked
// items leave the pool, and the BulkCoverage contract rules out other
// mutations), so those modes take sweepModular — a straight top-n selection
// over per-candidate gains that skips the dense scatter and the CELF heap.
// Live modes (the sequential Dyn phase, custom stateful recommenders) keep
// the lazy-greedy machinery, which stays correct for any submodular gain.
func (g *GANC) sweepUser(ctx context.Context, u types.UserID, n int, freq []int, observe bool, sc *sweepScratch) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if freq != nil {
		if pa, ok := g.arec.(*PopAccuracy); ok {
			return g.sweepPopDyn(u, n, freq, pa, observe, sc), nil
		}
	}
	sc.cand = g.train.AppendCandidates(u, sc.cand[:0])
	cand := sc.cand
	if cap(sc.packed) < len(cand) {
		sc.packed = make([]float64, len(cand))
	}
	packed := sc.packed[:len(cand)]

	if freq != nil {
		return g.sweepModular(ctx, u, n, cand, freq, nil, observe, sc)
	}
	if _, isDyn := g.crec.(*DynCoverage); !isDyn {
		if bc, isBulk := g.crec.(BulkCoverage); isBulk {
			return g.sweepModular(ctx, u, n, cand, nil, bc, observe, sc)
		}
	}

	fillAccuracyScores(g.arec, u, cand, packed)
	for k, i := range cand {
		sc.acc[i] = packed[k]
	}
	// Re-check cancellation between the scoring and selection stages: the old
	// per-pick rescan checked ctx once per pick, and on large catalogs the
	// bulk scoring above is the bulk of a sweep's cost.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	o := &sc.oracle
	*o = sweepOracle{
		crec:    g.crec,
		theta:   g.prefs.Get(u),
		cand:    cand,
		acc:     sc.acc,
		observe: observe,
	}
	if dyn, isDyn := g.crec.(*DynCoverage); isDyn {
		o.mode, o.dyn = covDynLive, dyn
	} else {
		o.mode = covLive
	}
	return submodular.LazyGreedyForUserScratch(u, n, o, &sc.lazy), nil
}

// sweepModular is the modular-objective fast path: every candidate's gain
// (1−θ)·a(i) + θ·c(i) is constant for the duration of the sweep, so the
// top-n set is selected directly from the packed gain buffer. The gain
// expression, tie-breaks (higher gain first, ties to the smaller ItemID) and
// resulting pick order are identical to the lazy-greedy sweep over the same
// static gains, so results are bit-identical to the CELF path at the float64
// tier. Exactly one of freq (frozen Dyn snapshot) and bc (buffered coverage)
// is non-nil. When Config.Precision requests a reduced tier and the accuracy
// recommender implements BulkAccuracy32, gains are computed and selected in
// the pooled float32 arena instead.
func (g *GANC) sweepModular(ctx context.Context, u types.UserID, n int, cand []types.ItemID, freq []int, bc BulkCoverage, observe bool, sc *sweepScratch) (types.TopNSet, error) {
	theta := g.prefs.Get(u)

	if g.cfg.Precision != types.PrecisionF64 {
		if ba, ok := g.arec.(BulkAccuracy32); ok {
			return g.sweepModular32(ctx, u, n, cand, freq, bc, observe, sc, ba, theta)
		}
	}

	packed := sc.packed[:len(cand)]
	fillAccuracyScores(g.arec, u, cand, packed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if freq != nil {
		for k, i := range cand {
			base := 0
			if int(i) < len(freq) {
				base = freq[i]
			}
			packed[k] = (1-theta)*packed[k] + theta*invSqrtFreq(base)
		}
	} else {
		if cap(sc.packedCov) < len(cand) {
			sc.packedCov = make([]float64, len(cand))
		}
		covs := sc.packedCov[:len(cand)]
		bc.CoverageScores(u, cand, covs)
		for k := range packed {
			packed[k] = (1-theta)*packed[k] + theta*covs[k]
		}
	}
	set := recommender.SelectTopNScored(cand, packed, n)
	if observe {
		for _, i := range set {
			g.crec.Observe(i)
		}
	}
	return set, nil
}

// sweepModular32 is sweepModular on the float32 arena: accuracy scores land
// in the pooled float32 buffer via BulkAccuracy32, gains are combined in
// float32 and the top-n set is selected without ever widening to float64.
// Scores at this tier match the exact path only to the serving tier's
// documented tolerance (DESIGN.md §12).
func (g *GANC) sweepModular32(ctx context.Context, u types.UserID, n int, cand []types.ItemID, freq []int, bc BulkCoverage, observe bool, sc *sweepScratch, ba BulkAccuracy32, theta float64) (types.TopNSet, error) {
	if cap(sc.packed32) < len(cand) {
		sc.packed32 = make([]float32, len(cand))
	}
	gains := sc.packed32[:len(cand)]
	ba.AccuracyScores32(u, cand, gains)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t32 := float32(theta)
	a32 := 1 - t32
	if freq != nil {
		for k, i := range cand {
			base := 0
			if int(i) < len(freq) {
				base = freq[i]
			}
			gains[k] = a32*gains[k] + t32*float32(invSqrtFreq(base))
		}
	} else {
		if cap(sc.packedCov) < len(cand) {
			sc.packedCov = make([]float64, len(cand))
		}
		covs := sc.packedCov[:len(cand)]
		bc.CoverageScores(u, cand, covs)
		for k := range gains {
			gains[k] = a32*gains[k] + t32*float32(covs[k])
		}
	}
	set := recommender.SelectTopNScored32(cand, gains, n)
	if observe {
		for _, i := range set {
			g.crec.Observe(i)
		}
	}
	return set, nil
}

const maxFreqCutoff = int(^uint(0) >> 1)

// popDynRank is a frozen snapshot's catalog ranking by Dyn coverage score:
// every item id sorted by (c32 desc, id asc) with the aligned float32
// coverage scores, where c32 = float32(invSqrtFreq(freq[i])) — the exact
// value the general float32 sweep computes. User-specific θ scaling, rated
// exclusions and B-ties are resolved per request by the walk in sweepPopDyn.
type popDynRank struct {
	freq []int // snapshot the ranking was built from (slice identity key)
	ids  []types.ItemID
	c32  []float32
}

// sameIntSlice reports whether two slices are the same array view (identity,
// not element equality).
func sameIntSlice(a, b []int) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// buildPopDynRank ranks the full catalog for one frozen snapshot.
func buildPopDynRank(freq []int, numItems int) *popDynRank {
	r := &popDynRank{
		freq: freq,
		ids:  make([]types.ItemID, numItems),
		c32:  make([]float32, numItems),
	}
	for i := 0; i < numItems; i++ {
		r.ids[i] = types.ItemID(i)
		base := 0
		if i < len(freq) {
			base = freq[i]
		}
		r.c32[i] = invSqrtFreq32(base)
	}
	sort.Sort(byCovDesc{r})
	return r
}

// byCovDesc sorts a popDynRank's aligned arrays by (c32 desc, id asc).
type byCovDesc struct{ r *popDynRank }

func (s byCovDesc) Len() int { return len(s.r.ids) }
func (s byCovDesc) Less(a, b int) bool {
	if s.r.c32[a] != s.r.c32[b] {
		return s.r.c32[a] > s.r.c32[b]
	}
	return s.r.ids[a] < s.r.ids[b]
}
func (s byCovDesc) Swap(a, b int) {
	s.r.ids[a], s.r.ids[b] = s.r.ids[b], s.r.ids[a]
	s.r.c32[a], s.r.c32[b] = s.r.c32[b], s.r.c32[a]
}

// popDynRankFor returns the cached catalog ranking when freq is the Dyn
// recommender's current frozen snapshot (the online serving path), building
// it on first use per snapshot generation. Batch sweeps pass per-θ snapshot
// copies whose identity never matches, so they keep the counting path — a
// per-call rebuild there would cost more than it saves.
func (g *GANC) popDynRankFor(freq []int) *popDynRank {
	dyn, ok := g.crec.(*DynCoverage)
	if !ok {
		return nil
	}
	g.popRankMu.Lock()
	defer g.popRankMu.Unlock()
	if g.popRank != nil && sameIntSlice(g.popRank.freq, freq) {
		return g.popRank
	}
	if !sameIntSlice(dyn.FrozenFrequencies(), freq) {
		return nil
	}
	g.popRank = buildPopDynRank(freq, g.numItems)
	return g.popRank
}

// popDynWalk32 is pass 1 of sweepPopDyn over a cached catalog ranking: it
// appends the top n unrated items by (B, id), B(i) = θ32·c32(i), to
// cand/gains, skipping boosted items (already present at full gain). Because
// the ranking orders positions by (c32 desc, id asc) and multiplying by
// θ32 ≥ 0 is monotone, the first n unrated positions are the winners — except
// inside the boundary tie class, where equal-B positions are re-broken by
// ascending id. Within one c32 class position order IS id order; distinct c32
// classes can collide to one B value only through float32 rounding of the
// θ32·c32 product, which is the rare gather-and-sort path below. Gains are
// computed as θ32·c32 — bit-identical to the counting pass and to
// sweepModular32.
func popDynWalk32(rank *popDynRank, rated []types.ItemID, boost []uint64, cand []types.ItemID, gains []float32, t32 float32, n int, sc *sweepScratch) ([]types.ItemID, []float32) {
	ids, c32s := rank.ids, rank.c32

	// Find the position of the n-th unrated item in ranking order.
	wcount, lastPos := 0, -1
	for pos := 0; pos < len(ids) && wcount < n; pos++ {
		if !containsSortedItem(rated, ids[pos]) {
			wcount++
			lastPos = pos
		}
	}
	if wcount < n {
		// Fewer than n candidates in the whole catalog: they all win.
		for p, item := range ids {
			if containsSortedItem(rated, item) || inBits(boost, item) {
				continue
			}
			cand = append(cand, item)
			gains = append(gains, t32*c32s[p])
		}
		return cand, gains
	}

	// The boundary tie class: every position whose B equals the n-th
	// winner's. Positions strictly before it are definite winners.
	bMin := t32 * c32s[lastPos]
	tieStart := lastPos
	for tieStart > 0 && t32*c32s[tieStart-1] == bMin {
		tieStart--
	}
	slots := n
	for p := 0; p < tieStart; p++ {
		item := ids[p]
		if containsSortedItem(rated, item) {
			continue
		}
		slots--
		if inBits(boost, item) {
			continue
		}
		cand = append(cand, item)
		gains = append(gains, t32*c32s[p])
	}

	tieEnd := lastPos + 1
	oneClass := c32s[tieStart] == c32s[lastPos]
	for tieEnd < len(ids) && t32*c32s[tieEnd] == bMin {
		if c32s[tieEnd] != c32s[lastPos] {
			oneClass = false
		}
		tieEnd++
	}
	if oneClass {
		// Single coverage class: ids ascend within it, so taking unrated
		// positions in order fills the remaining slots with the smallest ids.
		for p := tieStart; p < tieEnd && slots > 0; p++ {
			item := ids[p]
			if containsSortedItem(rated, item) {
				continue
			}
			slots--
			if inBits(boost, item) {
				continue
			}
			cand = append(cand, item)
			gains = append(gains, t32*c32s[p])
		}
		return cand, gains
	}

	// Rare: θ32 rounding collided distinct coverage classes into one B value,
	// so ids are not ascending across the region — gather the unrated ids and
	// take the smallest. Every member scores exactly bMin.
	span := sc.popCand[:0]
	for p := tieStart; p < tieEnd; p++ {
		if !containsSortedItem(rated, ids[p]) {
			span = append(span, ids[p])
		}
	}
	sc.popCand = span
	sort.Slice(span, func(a, b int) bool { return span[a] < span[b] })
	for _, item := range span {
		if slots == 0 {
			break
		}
		slots--
		if inBits(boost, item) {
			continue
		}
		cand = append(cand, item)
		gains = append(gains, bMin)
	}
	return cand, gains
}

// containsSortedItem reports whether the ascending slice contains item.
func containsSortedItem(sorted []types.ItemID, item types.ItemID) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if sorted[mid] < item {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == item
}

// sweepPopDyn is the frozen-Dyn modular sweep specialized for the PopAccuracy
// recommender — the serving tier's flagship configuration. It exploits that
// Pop accuracy scores are sparse indicators: at most topN items (the user's
// popularity top-N, all of them candidates by construction) carry the
// (1−θ)·a(i) term, and every other candidate's gain is exactly the coverage
// term θ·c(i). The sweep therefore never materializes the candidate slice:
//
//  1. candidates are enumerated as the gap runs between consecutive rated
//     items and the top n by the coverage-only score B(i) = θ·c(i) — ties to
//     the smaller id, SelectTopNScored's order — are found without a float
//     comparison per item (see the per-tier passes below);
//  2. the union of those pass-1 winners and the boosted items (≤ n + topN
//     entries) is re-ranked at true gains by the regular top-n selector.
//
// The union contains the true top-n: a non-boosted candidate outside the
// pass-1 winners was beaten by n entries under the (B, id) order, and each of
// those beats it under the (gain, id) order too — non-boosted entries keep
// gain = B, and boosted entries only improve (the boost (1−θ)·1 ≥ 0 wins
// B-ties when θ < 1, and is zero when θ = 1, making the entry behave
// non-boosted). Gains use the exact expressions of
// sweepModular/sweepModular32 — for non-boosted items (1−θ)·0 + θ·c(i)
// evaluates bit-for-bit to θ·c(i) at both tiers — so the selected sets are
// bit-identical to the general modular path.
func (g *GANC) sweepPopDyn(u types.UserID, n int, freq []int, pa *PopAccuracy, observe bool, sc *sweepScratch) types.TopNSet {
	theta := g.prefs.Get(u)
	boost := pa.topBits(u)
	rated := g.train.UserItemsSorted(u)
	numItems := g.numItems

	var set types.TopNSet
	if g.cfg.Precision != types.PrecisionF64 {
		t32 := float32(theta)
		a32 := 1 - t32

		// Boosted candidates at their full gain — the same union member set
		// feeds every pass-1 variant below.
		cand, gains := sc.cand[:0], sc.packed32[:0]
		for w, word := range boost {
			for word != 0 {
				item := types.ItemID(w<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				if int(item) >= numItems || containsSortedItem(rated, item) {
					continue
				}
				base := 0
				if int(item) < len(freq) {
					base = freq[item]
				}
				cand = append(cand, item)
				gains = append(gains, a32*1+t32*invSqrtFreq32(base))
			}
		}

		// Serving steady state: walk the cached (c32 desc, id asc) catalog
		// ranking instead of re-scanning the catalog — only ~n positions plus
		// the rated items interleaved among them are inspected. θ = 0 scales
		// every B to zero (one giant tie), where the counting pass is cheaper.
		var rank *popDynRank
		if t32 != 0 {
			rank = g.popDynRankFor(freq)
		}
		if rank != nil {
			cand, gains = popDynWalk32(rank, rated, boost, cand, gains, t32, n, sc)
			sc.cand, sc.packed32 = cand, gains
			set = recommender.SelectTopNScored32(cand, gains, n)
			if observe {
				for _, i := range set {
					g.crec.Observe(i)
				}
			}
			return set
		}

		if len(sc.hist) != len(invSqrtTab32) {
			sc.hist = make([]int32, len(invSqrtTab32))
		}
		hist := sc.hist

		// Pass A: enumerate candidates as the gap runs between consecutive
		// rated items, materializing compact (id, frequency) arrays and a
		// frequency histogram. B(i) depends only on freq[i], so the top-n by
		// (B, id) can be found by counting: equal-score classes are
		// contiguous frequency runs (s(f) is monotone non-increasing in f).
		cids, cbase := sc.popCand[:0], sc.popBase[:0]
		maxBase := 0
		overflow := false
		for r, lo := 0, 0; ; {
			for r < len(rated) && int(rated[r]) < lo {
				r++
			}
			hi := numItems
			if r < len(rated) && int(rated[r]) < numItems {
				hi = int(rated[r])
			}
			for idx := lo; idx < hi; idx++ {
				base := 0
				if idx < len(freq) {
					base = freq[idx]
				}
				if base < len(hist) {
					hist[base]++
					if base > maxBase {
						maxBase = base
					}
				} else {
					// Off-table frequency; the heap fallback below re-reads
					// the exact value from freq.
					overflow = true
					base = 0
				}
				cids = append(cids, types.ItemID(idx))
				cbase = append(cbase, int32(base))
			}
			if hi >= numItems {
				break
			}
			lo = hi + 1
			r++
		}
		sc.popCand, sc.popBase = cids, cbase

		if overflow {
			// A frequency beyond the score table: off-table scores are not
			// class-countable, so fall back to a streaming top-n heap with a
			// cached admission threshold (exactly Push's replacement rule).
			clear(hist[:maxBase+1])
			top := &sc.top32
			top.Reset(n)
			minItem, minScore := top.Threshold()
			for _, item := range cids {
				base := 0
				if int(item) < len(freq) {
					base = freq[item]
				}
				s := t32 * invSqrtFreq32(base)
				if s < minScore || (s == minScore && item >= minItem) {
					continue
				}
				top.Push(item, s)
				minItem, minScore = top.Threshold()
			}
			// Heap survivors at coverage-only gain; boosted ones are already
			// in the union at their full gain, so drop those duplicates.
			mark := len(cand)
			cand, gains = top.AppendTo(cand, gains)
			w := mark
			for k := mark; k < len(cand); k++ {
				if !inBits(boost, cand[k]) {
					cand[w], gains[w] = cand[k], gains[k]
					w++
				}
			}
			cand, gains = cand[:w], gains[:w]
		} else {
			// Class scan: group occupied frequencies with bit-equal scores
			// (empty buckets between them don't matter — no members) and
			// accumulate counts in descending score order until the class
			// holding the n-th entry — the tie class [tieLo, tieHi] with
			// `slots` openings — is found. total ≤ n means every candidate
			// wins and the sentinel cutoffs select them all.
			tieLo, tieHi, slots := maxFreqCutoff, -1, 0
			if len(cids) > n {
				cum, f := 0, 0
				for f <= maxBase {
					for f <= maxBase && hist[f] == 0 {
						f++
					}
					if f > maxBase {
						break
					}
					s := t32 * invSqrtTab32[f]
					cnt := int(hist[f])
					first, last := f, f
					f++
					for {
						for f <= maxBase && hist[f] == 0 {
							f++
						}
						if f > maxBase || t32*invSqrtTab32[f] != s {
							break
						}
						cnt += int(hist[f])
						last = f
						f++
					}
					if cum+cnt >= n {
						tieLo, tieHi, slots = first, last, n-cum
						break
					}
					cum += cnt
				}
			}
			clear(hist[:maxBase+1])
			// Pass B: collect the winners from the compact arrays in
			// ascending id order — which is exactly the (B, id) tie-break,
			// so the tie class's `slots` smallest ids are taken. Boosted
			// winners still consume their slot but are skipped (already
			// present at full gain).
			for k, item := range cids {
				base := int(cbase[k])
				if base >= tieLo {
					if base > tieHi || slots == 0 {
						continue
					}
					slots--
				}
				if inBits(boost, item) {
					continue
				}
				cand = append(cand, item)
				gains = append(gains, t32*invSqrtFreq32(base))
			}
		}
		sc.cand, sc.packed32 = cand, gains
		set = recommender.SelectTopNScored32(cand, gains, n)
	} else {
		top := &sc.top64
		top.Reset(n)
		minItem, minScore := top.Threshold()
		for r, lo := 0, 0; ; {
			for r < len(rated) && int(rated[r]) < lo {
				r++
			}
			hi := numItems
			if r < len(rated) && int(rated[r]) < numItems {
				hi = int(rated[r])
			}
			for idx := lo; idx < hi; idx++ {
				base := 0
				if idx < len(freq) {
					base = freq[idx]
				}
				s := theta * invSqrtFreq(base)
				if s < minScore || (s == minScore && types.ItemID(idx) >= minItem) {
					continue
				}
				top.Push(types.ItemID(idx), s)
				minItem, minScore = top.Threshold()
			}
			if hi >= numItems {
				break
			}
			lo = hi + 1
			r++
		}
		cand, gains := sc.cand[:0], sc.packed[:0]
		for w, word := range boost {
			for word != 0 {
				item := types.ItemID(w<<6 + bits.TrailingZeros64(word))
				word &= word - 1
				if int(item) >= numItems || containsSortedItem(rated, item) {
					continue
				}
				base := 0
				if int(item) < len(freq) {
					base = freq[item]
				}
				cand = append(cand, item)
				gains = append(gains, (1-theta)*1+theta*invSqrtFreq(base))
			}
		}
		mark := len(cand)
		cand, gains = sc.top64.AppendTo(cand, gains)
		w := mark
		for k := mark; k < len(cand); k++ {
			if !inBits(boost, cand[k]) {
				cand[w], gains[w] = cand[k], gains[k]
				w++
			}
		}
		sc.cand, sc.packed = cand[:w], gains[:w]
		set = recommender.SelectTopNScored(sc.cand, sc.packed, n)
	}
	if observe {
		for _, i := range set {
			g.crec.Observe(i)
		}
	}
	return set
}

// forEachShard splits [0, count) into contiguous ranges across the configured
// workers (clamped to the CPU count) and runs fn(lo, hi) per range, inline
// when parallelism is disabled.
func (g *GANC) forEachShard(count int, fn func(lo, hi int)) {
	workers := g.cfg.Workers
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers <= 1 || count <= 1 {
		fn(0, count)
		return
	}
	var wg sync.WaitGroup
	for _, r := range recommender.ShardRanges(count, workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(r.Lo, r.Hi)
	}
	wg.Wait()
}

// Recommend produces the top-N collection for every user.
//
// With a stateless coverage recommender (Rand, Stat) the per-user problems
// are independent and are solved by independent greedy sweeps. With Dyn, the
// OSLG algorithm is used: a KDE-sampled subset of users (Config.SampleSize)
// is processed sequentially in increasing θ, the Dyn frequency state is
// snapshotted after each sampled user, and the remaining users reuse the
// snapshot of their nearest sampled θ.
func (g *GANC) Recommend() types.Recommendations {
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.recommendOSLG(dyn)
	}
	// Stateless coverage recommenders (Rand, Stat): every user's problem is
	// independent, so the sweep shards across Config.Workers, one contiguous
	// user range and one scratch per worker. Per-user results land in a slice
	// indexed by user, so no mutex is needed.
	numUsers := g.train.NumUsers()
	sets := make([]types.TopNSet, numUsers)
	ctx := context.Background()
	g.forEachShard(numUsers, func(lo, hi int) {
		sc := g.getScratch()
		defer g.putScratch(sc)
		for u := lo; u < hi; u++ {
			sets[u], _ = g.sweepUser(ctx, types.UserID(u), g.cfg.N, nil, true, sc)
		}
	})
	recs := make(types.Recommendations, numUsers)
	for u, set := range sets {
		recs[types.UserID(u)] = set
	}
	return recs
}

// TopN returns the configured top-N size.
func (g *GANC) TopN() int { return g.cfg.N }

// RecommendUser computes a single user's top-N list on demand, without
// touching any other user. With the Dyn coverage recommender the sweep runs
// against the shared frozen snapshot of the frequency state (rebuilt only
// when the state has actually mutated, see DynCoverage.FrozenFrequencies),
// so concurrent RecommendUser calls are safe and never mutate shared state;
// the result is deterministic for a given state, which makes it cacheable.
// n ≤ 0 selects the configured Config.N.
//
// Batch Recommend must not run concurrently with RecommendUser on the same
// instance (it mutates the Dyn state, which the online path reads unlocked).
func (g *GANC) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= g.train.NumUsers() {
		return nil, fmt.Errorf("core: user %d out of range [0,%d)", u, g.train.NumUsers())
	}
	if n <= 0 {
		n = g.cfg.N
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.sweepUser(ctx, u, n, dyn.FrozenFrequencies(), false, sc)
	}
	return g.sweepUser(ctx, u, n, nil, false, sc)
}

// RecommendAll is the context-aware batch entry point used by the Engine
// interface. Cancellation is only checked before and after the sweep: once
// the batch optimizer starts it runs to completion, because OSLG's
// sequential phase cannot be abandoned midway without corrupting the Dyn
// frequency state shared with the remaining users.
func (g *GANC) RecommendAll(ctx context.Context) (types.Recommendations, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs := g.Recommend()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// userTheta pairs a user with their long-tail preference for sorting.
type userTheta struct {
	user  types.UserID
	theta float64
}

// recommendOSLG implements Algorithm 1.
func (g *GANC) recommendOSLG(dyn *DynCoverage) types.Recommendations {
	numUsers := g.train.NumUsers()
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	recs := make(types.Recommendations, numUsers)

	all := make([]userTheta, numUsers)
	for u := 0; u < numUsers; u++ {
		all[u] = userTheta{user: types.UserID(u), theta: g.prefs.Get(types.UserID(u))}
	}

	sampleSize := g.cfg.SampleSize
	fullSequential := sampleSize <= 0 || sampleSize >= numUsers

	var sample []userTheta
	if fullSequential {
		sample = all
	} else {
		sample = g.sampleUsersByKDE(all, sampleSize, rng)
	}
	// Sort the sampled users in increasing long-tail preference (line 3): the
	// popularity-focused users pick first, while the Dyn frequencies are low,
	// and the explorers pick later, when popular items have been discounted.
	sort.Slice(sample, func(a, b int) bool {
		if sample[a].theta != sample[b].theta {
			return sample[a].theta < sample[b].theta
		}
		return sample[a].user < sample[b].user
	})

	// Sequential pass over the sample (lines 4–10), snapshotting the Dyn
	// frequency state after each user, keyed by that user's θ.
	ctx := context.Background()
	snapshots := make([]freqSnapshot, 0, len(sample))
	inSample := make(map[types.UserID]struct{}, len(sample))
	sc := g.getScratch()
	for _, ut := range sample {
		inSample[ut.user] = struct{}{}
		set, _ := g.sweepUser(ctx, ut.user, g.cfg.N, nil, true, sc)
		recs[ut.user] = set
		snapshots = append(snapshots, freqSnapshot{theta: ut.theta, freq: dyn.Frequencies()})
	}
	g.putScratch(sc)

	if fullSequential {
		return recs
	}

	// Out-of-sample pass (lines 11–15): each remaining user reuses the frozen
	// frequency snapshot of the sampled user with the closest θ. These users'
	// value functions are independent of each other, so the pass shards
	// across Config.Workers, one contiguous range and one scratch per worker,
	// exactly as the paper observes.
	var remaining []userTheta
	for _, ut := range all {
		if _, done := inSample[ut.user]; done {
			continue
		}
		remaining = append(remaining, ut)
	}
	sets := make([]types.TopNSet, len(remaining))
	g.forEachShard(len(remaining), func(lo, hi int) {
		wsc := g.getScratch()
		defer g.putScratch(wsc)
		for k := lo; k < hi; k++ {
			ut := remaining[k]
			snap := nearestSnapshotFreq(snapshots, ut.theta)
			sets[k], _ = g.sweepUser(ctx, ut.user, g.cfg.N, snap, false, wsc)
		}
	})
	// Fold the out-of-sample recommendations into the final frequency state
	// so the recommender's end state reflects the full collection.
	for k, ut := range remaining {
		recs[ut.user] = sets[k]
		for _, i := range sets[k] {
			dyn.Observe(i)
		}
	}
	return recs
}

// sampleUsersByKDE draws sampleSize users whose θ values follow the KDE of
// the preference distribution (Algorithm 1, line 2): sample θ* values from
// the KDE, then map each θ* to the not-yet-chosen user with the nearest θ.
func (g *GANC) sampleUsersByKDE(all []userTheta, sampleSize int, rng *rand.Rand) []userTheta {
	thetas := make([]float64, len(all))
	for k, ut := range all {
		thetas[k] = ut.theta
	}
	density, err := kde.New(thetas, 0)
	var draws []float64
	if err == nil {
		draws = density.SampleClamped(sampleSize, 0, 1, rng)
	} else {
		draws = make([]float64, sampleSize)
		for i := range draws {
			draws[i] = rng.Float64()
		}
	}

	// Sort users by θ once; for each draw pick the nearest unused user via
	// binary search with a small outward scan for collisions.
	sorted := append([]userTheta(nil), all...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].theta != sorted[b].theta {
			return sorted[a].theta < sorted[b].theta
		}
		return sorted[a].user < sorted[b].user
	})
	used := make([]bool, len(sorted))
	sample := make([]userTheta, 0, sampleSize)
	for _, d := range draws {
		idx := sort.Search(len(sorted), func(k int) bool { return sorted[k].theta >= d })
		pick := -1
		for offset := 0; offset < len(sorted); offset++ {
			lo, hi := idx-offset, idx+offset
			if lo >= 0 && lo < len(sorted) && !used[lo] {
				pick = lo
				break
			}
			if hi >= 0 && hi < len(sorted) && !used[hi] {
				pick = hi
				break
			}
		}
		if pick < 0 {
			break // every user already sampled
		}
		used[pick] = true
		sample = append(sample, sorted[pick])
	}
	return sample
}

// freqSnapshot is the Dyn frequency state recorded after a sampled user's
// top-N set was assigned, keyed by that user's θ (Algorithm 1, line 8).
type freqSnapshot struct {
	theta float64
	freq  []int
}

// nearestSnapshotFreq returns the frequency snapshot whose θ is closest to
// theta. snapshots must be sorted by θ (they are, because the sample is
// processed in increasing θ).
func nearestSnapshotFreq(snapshots []freqSnapshot, theta float64) []int {
	if len(snapshots) == 0 {
		return nil
	}
	idx := sort.Search(len(snapshots), func(k int) bool { return snapshots[k].theta >= theta })
	if idx == 0 {
		return snapshots[0].freq
	}
	if idx >= len(snapshots) {
		return snapshots[len(snapshots)-1].freq
	}
	if theta-snapshots[idx-1].theta <= snapshots[idx].theta-theta {
		return snapshots[idx-1].freq
	}
	return snapshots[idx].freq
}

// ValueOf computes the objective value Σ_u v_u(P_u) of a recommendation
// collection under this GANC instance's components, using the *static*
// interpretation of the coverage score for Dyn (i.e. the value as defined in
// Eq. A.2, recomputed from scratch over the collection). It is used by tests
// and the ablation benchmarks to compare optimizer variants.
func (g *GANC) ValueOf(recs types.Recommendations) float64 {
	// For Dyn the value of the collection is Σ_i Σ_{k=1..f_i} 1/√k weighted
	// by each recommending user's θ; recompute by replaying the collection.
	if _, isDyn := g.crec.(*DynCoverage); isDyn {
		freq := make(map[types.ItemID]int)
		total := 0.0
		// Replay users in ascending UserID for determinism.
		users := make([]types.UserID, 0, len(recs))
		for u := range recs {
			users = append(users, u)
		}
		sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
		for _, u := range users {
			theta := g.prefs.Get(u)
			for _, i := range recs[u] {
				acc := g.arec.AccuracyScore(u, i)
				cov := 1 / math.Sqrt(float64(freq[i])+1)
				total += (1-theta)*acc + theta*cov
				freq[i]++
			}
		}
		return total
	}
	total := 0.0
	for u, set := range recs {
		theta := g.prefs.Get(u)
		for _, i := range set {
			total += (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
		}
	}
	return total
}
