// Package core implements GANC, the paper's Generic re-ranking framework for
// trading off Accuracy, Novelty and Coverage, together with its OSLG
// (Ordered Sampling-based Locally Greedy) optimization algorithm.
//
// GANC combines three pluggable components (Section III):
//
//   - an accuracy recommender providing a per-item accuracy score a(i) ∈ [0,1],
//   - a coverage recommender providing a per-item coverage score c(i) ∈ [0,1],
//   - a per-user long-tail novelty preference θ_u ∈ [0,1].
//
// The user value function is v_u(P_u) = (1−θ_u)·a(P_u) + θ_u·c(P_u), and the
// framework selects a top-N collection maximizing Σ_u v_u(P_u). With the
// static coverage recommenders (Rand, Stat) the objective decomposes per user
// and a plain greedy sweep is exact; with the Dyn coverage recommender the
// objective is submodular across users and OSLG (Algorithm 1) is used.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/kde"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// AccuracyRecommender provides the accuracy score a(i) ∈ [0,1] for a user.
// Implementations wrap the base models (Pop, RSVD, PSVD, ...).
type AccuracyRecommender interface {
	// AccuracyScore returns a(i) for user u; must lie in [0,1].
	AccuracyScore(u types.UserID, i types.ItemID) float64
	// Name identifies the accuracy recommender in experiment output.
	Name() string
}

// CoverageRecommender provides the coverage score c(i) ∈ [0,1]. The Dyn
// recommender is stateful: its score depends on the recommendations made so
// far, which it learns about through Observe.
type CoverageRecommender interface {
	// CoverageScore returns c(i) for user u; must lie in [0,1].
	CoverageScore(u types.UserID, i types.ItemID) float64
	// Observe informs the recommender that item i was just recommended (to
	// any user). Stateless recommenders ignore it.
	Observe(i types.ItemID)
	// Name identifies the coverage recommender in experiment output.
	Name() string
}

// --- Accuracy recommender adapters -------------------------------------------

// ScorerAccuracy adapts any recommender.Scorer whose scores are already in
// [0,1] (e.g. a NormalizedScorer around RSVD or PSVD).
type ScorerAccuracy struct {
	Scorer recommender.Scorer
}

// AccuracyScore implements AccuracyRecommender.
func (s *ScorerAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	v := s.Scorer.Score(u, i)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Name implements AccuracyRecommender.
func (s *ScorerAccuracy) Name() string { return s.Scorer.Name() }

// PopAccuracy is the paper's Pop accuracy recommender: a(i) = 1 when i is in
// the user's popularity top-N (excluding their train items), 0 otherwise.
// It is safe for concurrent use.
type PopAccuracy struct {
	pop      *recommender.Pop
	train    *dataset.Dataset
	topN     int
	mu       sync.Mutex
	cache    map[types.UserID]map[types.ItemID]struct{}
	cacheCap int
}

// NewPopAccuracy builds the indicator-style Pop accuracy recommender. topN is
// the N of the top-N sets being constructed.
func NewPopAccuracy(train *dataset.Dataset, topN int) *PopAccuracy {
	return &PopAccuracy{
		pop:      recommender.NewPop(train),
		train:    train,
		topN:     topN,
		cache:    make(map[types.UserID]map[types.ItemID]struct{}),
		cacheCap: 200_000,
	}
}

// AccuracyScore implements AccuracyRecommender: membership in the user's
// popularity top-N.
func (p *PopAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	p.mu.Lock()
	set, ok := p.cache[u]
	p.mu.Unlock()
	if !ok {
		top := p.pop.Recommend(u, p.topN, p.train.UserItemSet(u))
		set = make(map[types.ItemID]struct{}, len(top))
		for _, it := range top {
			set[it] = struct{}{}
		}
		p.mu.Lock()
		if len(p.cache) < p.cacheCap {
			p.cache[u] = set
		}
		p.mu.Unlock()
	}
	if _, in := set[i]; in {
		return 1
	}
	return 0
}

// Name implements AccuracyRecommender.
func (p *PopAccuracy) Name() string { return "Pop" }

// --- Coverage recommenders ----------------------------------------------------

// RandCoverage assigns each (user, item) pair an independent uniform score,
// the paper's Rand coverage recommender. It is safe for concurrent use.
type RandCoverage struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandCoverage builds a Rand coverage recommender.
func NewRandCoverage(seed int64) *RandCoverage {
	return &RandCoverage{rng: rand.New(rand.NewSource(seed))}
}

// CoverageScore implements CoverageRecommender.
func (r *RandCoverage) CoverageScore(types.UserID, types.ItemID) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// Observe implements CoverageRecommender (no state).
func (r *RandCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (r *RandCoverage) Name() string { return "Rand" }

// StatCoverage scores items by a monotone decreasing function of their train
// popularity: c(i) = 1/√(f_i^R + 1). The gain of recommending an item is
// constant regardless of how often it has already been recommended.
type StatCoverage struct {
	scores []float64
}

// NewStatCoverage precomputes the static coverage scores from the train set.
func NewStatCoverage(train *dataset.Dataset) *StatCoverage {
	scores := make([]float64, train.NumItems())
	for i := range scores {
		scores[i] = 1 / math.Sqrt(float64(train.ItemPopularity(types.ItemID(i)))+1)
	}
	return &StatCoverage{scores: scores}
}

// CoverageScore implements CoverageRecommender.
func (s *StatCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(s.scores) {
		return 0
	}
	return s.scores[i]
}

// Observe implements CoverageRecommender (no state).
func (s *StatCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (s *StatCoverage) Name() string { return "Stat" }

// DynCoverage scores items by a monotone decreasing function of how often
// they have been recommended so far: c(i) = 1/√(f_i^A + 1), where f_i^A is
// the recommendation frequency in the partial top-N collection A. It has the
// diminishing-returns property that makes GANC's objective submodular.
type DynCoverage struct {
	freq []int
}

// NewDynCoverage builds a Dyn coverage recommender over a catalog of numItems
// items with all frequencies zero.
func NewDynCoverage(numItems int) *DynCoverage {
	return &DynCoverage{freq: make([]int, numItems)}
}

// CoverageScore implements CoverageRecommender.
func (d *DynCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(d.freq) {
		return 0
	}
	return 1 / math.Sqrt(float64(d.freq[i])+1)
}

// Observe implements CoverageRecommender: bumps the item's frequency.
func (d *DynCoverage) Observe(i types.ItemID) {
	if int(i) < len(d.freq) {
		d.freq[i]++
	}
}

// Name implements CoverageRecommender.
func (d *DynCoverage) Name() string { return "Dyn" }

// Frequencies returns a copy of the current recommendation-frequency state
// (OSLG snapshots it per sampled user).
func (d *DynCoverage) Frequencies() []int {
	out := make([]int, len(d.freq))
	copy(out, d.freq)
	return out
}

// SetFrequencies replaces the frequency state (OSLG restores snapshots for
// out-of-sample users).
func (d *DynCoverage) SetFrequencies(f []int) {
	if len(f) != len(d.freq) {
		panic(fmt.Sprintf("core: frequency vector length %d != catalog size %d", len(f), len(d.freq)))
	}
	copy(d.freq, f)
}

// NumItems returns the catalog size the recommender was built for.
func (d *DynCoverage) NumItems() int { return len(d.freq) }

// --- GANC ---------------------------------------------------------------------

// Config configures a GANC instance.
type Config struct {
	// N is the size of each top-N set.
	N int
	// SampleSize S is the number of users processed sequentially by OSLG.
	// Values ≤ 0 or ≥ |U| disable sampling and run the fully sequential
	// locally greedy algorithm. Only used with the Dyn coverage recommender.
	SampleSize int
	// Seed drives the KDE sampling and any randomized component.
	Seed int64
	// Workers is the number of goroutines used for the out-of-sample phase of
	// OSLG (Algorithm 1, lines 11–15, which the paper notes can run in
	// parallel) and for the independent per-user sweeps of the stateless
	// coverage recommenders. Values ≤ 1 run sequentially; values above
	// runtime.NumCPU() are clamped to it.
	Workers int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", c.N)
	}
	return nil
}

// GANC is a configured instance of the framework. Construct with New.
type GANC struct {
	cfg      Config
	arec     AccuracyRecommender
	crec     CoverageRecommender
	prefs    *longtail.Preferences
	train    *dataset.Dataset
	numItems int

	// onlineMu serializes snapshots of the Dyn coverage state taken by
	// RecommendUser, so concurrent online requests are safe. The batch
	// Recommend path must not run concurrently with RecommendUser on the
	// same instance.
	onlineMu sync.Mutex
}

// New assembles a GANC instance from its three components, following the
// paper's template GANC(ARec, θ, CRec).
func New(train *dataset.Dataset, arec AccuracyRecommender, prefs *longtail.Preferences, crec CoverageRecommender, cfg Config) (*GANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil || arec == nil || prefs == nil || crec == nil {
		return nil, fmt.Errorf("core: train, accuracy recommender, preferences and coverage recommender are all required")
	}
	if prefs.Len() != train.NumUsers() {
		return nil, fmt.Errorf("core: preference vector covers %d users but train set has %d", prefs.Len(), train.NumUsers())
	}
	return &GANC{
		cfg:      cfg,
		arec:     arec,
		crec:     crec,
		prefs:    prefs,
		train:    train,
		numItems: train.NumItems(),
	}, nil
}

// Name returns the paper-style template string GANC(ARec, θ, CRec).
func (g *GANC) Name() string {
	return fmt.Sprintf("GANC(%s, θ^%s, %s)", g.arec.Name(), shortModel(g.prefs.Model), g.crec.Name())
}

func shortModel(m longtail.Model) string {
	switch m {
	case longtail.ModelActivity:
		return "A"
	case longtail.ModelNormalizedLongTail:
		return "N"
	case longtail.ModelTFIDF:
		return "T"
	case longtail.ModelGeneralized:
		return "G"
	case longtail.ModelRandom:
		return "R"
	case longtail.ModelConstant:
		return "C"
	default:
		return string(m)
	}
}

// marginalGain is the gain of appending item i to user u's set:
// (1−θ_u)·a(i) + θ_u·c(i). Both component scores are in [0,1] so the gain is
// too.
func (g *GANC) marginalGain(u types.UserID, i types.ItemID) float64 {
	theta := g.prefs.Get(u)
	return (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
}

// greedyForUser builds one user's top-N set greedily against the current
// coverage state, notifying the coverage recommender of each pick.
func (g *GANC) greedyForUser(u types.UserID, exclude map[types.ItemID]struct{}) types.TopNSet {
	set, _ := g.greedySweep(context.Background(), u, exclude, g.cfg.N, true)
	return set
}

// greedySweep is the n-parameterized greedy selection loop. When observe is
// true each pick is reported to the coverage recommender (the batch path);
// online callers pass false so shared state is never mutated.
func (g *GANC) greedySweep(ctx context.Context, u types.UserID, exclude map[types.ItemID]struct{}, n int, observe bool) (types.TopNSet, error) {
	set := make(types.TopNSet, 0, n)
	chosen := make(map[types.ItemID]struct{}, n)
	for step := 0; step < n; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := types.InvalidItem
		bestGain := math.Inf(-1)
		for idx := 0; idx < g.numItems; idx++ {
			item := types.ItemID(idx)
			if _, skip := exclude[item]; skip {
				continue
			}
			if _, used := chosen[item]; used {
				continue
			}
			gain := g.marginalGain(u, item)
			if gain > bestGain || (gain == bestGain && item < best) {
				bestGain, best = gain, item
			}
		}
		if best == types.InvalidItem {
			break
		}
		set = append(set, best)
		chosen[best] = struct{}{}
		if observe {
			g.crec.Observe(best)
		}
	}
	return set, nil
}

// Recommend produces the top-N collection for every user.
//
// With a stateless coverage recommender (Rand, Stat) the per-user problems
// are independent and are solved by independent greedy sweeps. With Dyn, the
// OSLG algorithm is used: a KDE-sampled subset of users (Config.SampleSize)
// is processed sequentially in increasing θ, the Dyn frequency state is
// snapshotted after each sampled user, and the remaining users reuse the
// snapshot of their nearest sampled θ.
func (g *GANC) Recommend() types.Recommendations {
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.recommendOSLG(dyn)
	}
	// Stateless coverage recommenders (Rand, Stat): every user's problem is
	// independent, so the sweep parallelizes across Config.Workers.
	recs := make(types.Recommendations, g.train.NumUsers())
	var mu sync.Mutex
	g.forEachParallel(g.train.NumUsers(), func(u int) {
		uid := types.UserID(u)
		set := g.greedyForUser(uid, g.train.UserItemSet(uid))
		mu.Lock()
		recs[uid] = set
		mu.Unlock()
	})
	return recs
}

// TopN returns the configured top-N size.
func (g *GANC) TopN() int { return g.cfg.N }

// RecommendUser computes a single user's top-N list on demand, without
// touching any other user. With the Dyn coverage recommender the current
// shared frequency state is snapshotted under a lock and the sweep runs
// against the frozen copy, so concurrent RecommendUser calls are safe and
// never mutate shared state; the result is deterministic for a given state,
// which makes it cacheable. n ≤ 0 selects the configured Config.N.
//
// Batch Recommend must not run concurrently with RecommendUser on the same
// instance (it mutates the Dyn state without the online lock).
func (g *GANC) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= g.train.NumUsers() {
		return nil, fmt.Errorf("core: user %d out of range [0,%d)", u, g.train.NumUsers())
	}
	if n <= 0 {
		n = g.cfg.N
	}
	exclude := g.train.UserItemSet(u)
	if dyn, ok := g.crec.(*DynCoverage); ok {
		g.onlineMu.Lock()
		freq := dyn.Frequencies()
		g.onlineMu.Unlock()
		return g.greedyFrozen(ctx, u, exclude, freq, n)
	}
	return g.greedySweep(ctx, u, exclude, n, false)
}

// RecommendAll is the context-aware batch entry point used by the Engine
// interface. Cancellation is only checked before and after the sweep: once
// the batch optimizer starts it runs to completion, because OSLG's
// sequential phase cannot be abandoned midway without corrupting the Dyn
// frequency state shared with the remaining users.
func (g *GANC) RecommendAll(ctx context.Context) (types.Recommendations, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs := g.Recommend()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// userTheta pairs a user with their long-tail preference for sorting.
type userTheta struct {
	user  types.UserID
	theta float64
}

// recommendOSLG implements Algorithm 1.
func (g *GANC) recommendOSLG(dyn *DynCoverage) types.Recommendations {
	numUsers := g.train.NumUsers()
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	recs := make(types.Recommendations, numUsers)

	all := make([]userTheta, numUsers)
	for u := 0; u < numUsers; u++ {
		all[u] = userTheta{user: types.UserID(u), theta: g.prefs.Get(types.UserID(u))}
	}

	sampleSize := g.cfg.SampleSize
	fullSequential := sampleSize <= 0 || sampleSize >= numUsers

	var sample []userTheta
	if fullSequential {
		sample = all
	} else {
		sample = g.sampleUsersByKDE(all, sampleSize, rng)
	}
	// Sort the sampled users in increasing long-tail preference (line 3): the
	// popularity-focused users pick first, while the Dyn frequencies are low,
	// and the explorers pick later, when popular items have been discounted.
	sort.Slice(sample, func(a, b int) bool {
		if sample[a].theta != sample[b].theta {
			return sample[a].theta < sample[b].theta
		}
		return sample[a].user < sample[b].user
	})

	// Sequential pass over the sample (lines 4–10), snapshotting the Dyn
	// frequency state after each user, keyed by that user's θ.
	snapshots := make([]freqSnapshot, 0, len(sample))
	inSample := make(map[types.UserID]struct{}, len(sample))
	for _, ut := range sample {
		inSample[ut.user] = struct{}{}
		set := g.greedyForUser(ut.user, g.train.UserItemSet(ut.user))
		recs[ut.user] = set
		snapshots = append(snapshots, freqSnapshot{theta: ut.theta, freq: dyn.Frequencies()})
	}

	if fullSequential {
		return recs
	}

	// Out-of-sample pass (lines 11–15): each remaining user reuses the frozen
	// frequency snapshot of the sampled user with the closest θ. These users'
	// value functions are independent of each other, so the pass runs on a
	// worker pool when Config.Workers > 1, exactly as the paper observes.
	var remaining []userTheta
	for _, ut := range all {
		if _, done := inSample[ut.user]; done {
			continue
		}
		remaining = append(remaining, ut)
	}
	var mu sync.Mutex
	g.forEachParallel(len(remaining), func(k int) {
		ut := remaining[k]
		snap := nearestSnapshotFreq(snapshots, ut.theta)
		set := g.greedyForUserFrozenFreq(ut.user, g.train.UserItemSet(ut.user), snap)
		mu.Lock()
		recs[ut.user] = set
		mu.Unlock()
	})
	// Fold the out-of-sample recommendations into the final frequency state
	// so the recommender's end state reflects the full collection.
	for _, ut := range remaining {
		for _, i := range recs[ut.user] {
			dyn.Observe(i)
		}
	}
	return recs
}

// forEachParallel runs fn(0..count-1) across the configured number of
// workers, or inline when parallelism is disabled.
func (g *GANC) forEachParallel(count int, fn func(int)) {
	workers := g.cfg.Workers
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers <= 1 || count <= 1 {
		for k := 0; k < count; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, count)
	for k := 0; k < count; k++ {
		next <- k
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	wg.Wait()
}

// greedyForUserFrozenFreq builds a top-N set against a frozen Dyn frequency
// snapshot: within the user's own set the frequencies still accumulate
// locally (so the same item is not picked twice and diminishing returns apply
// within the set), but the shared state is never modified, which makes the
// call safe to run concurrently for different users.
func (g *GANC) greedyForUserFrozenFreq(u types.UserID, exclude map[types.ItemID]struct{}, freq []int) types.TopNSet {
	set, _ := g.greedyFrozen(context.Background(), u, exclude, freq, g.cfg.N)
	return set
}

// greedyFrozen is the n-parameterized frozen-frequency sweep behind both the
// OSLG out-of-sample phase and the online RecommendUser path.
func (g *GANC) greedyFrozen(ctx context.Context, u types.UserID, exclude map[types.ItemID]struct{}, freq []int, n int) (types.TopNSet, error) {
	set := make(types.TopNSet, 0, n)
	chosen := make(map[types.ItemID]struct{}, n)
	theta := g.prefs.Get(u)
	localBump := make(map[types.ItemID]int, n)
	for step := 0; step < n; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := types.InvalidItem
		bestGain := math.Inf(-1)
		for idx := 0; idx < g.numItems; idx++ {
			item := types.ItemID(idx)
			if _, skip := exclude[item]; skip {
				continue
			}
			if _, used := chosen[item]; used {
				continue
			}
			base := 0
			if idx < len(freq) {
				base = freq[idx]
			}
			cov := 1 / math.Sqrt(float64(base+localBump[item])+1)
			gain := (1-theta)*g.arec.AccuracyScore(u, item) + theta*cov
			if gain > bestGain || (gain == bestGain && item < best) {
				bestGain, best = gain, item
			}
		}
		if best == types.InvalidItem {
			break
		}
		set = append(set, best)
		chosen[best] = struct{}{}
		localBump[best]++
	}
	return set, nil
}

// sampleUsersByKDE draws sampleSize users whose θ values follow the KDE of
// the preference distribution (Algorithm 1, line 2): sample θ* values from
// the KDE, then map each θ* to the not-yet-chosen user with the nearest θ.
func (g *GANC) sampleUsersByKDE(all []userTheta, sampleSize int, rng *rand.Rand) []userTheta {
	thetas := make([]float64, len(all))
	for k, ut := range all {
		thetas[k] = ut.theta
	}
	density, err := kde.New(thetas, 0)
	var draws []float64
	if err == nil {
		draws = density.SampleClamped(sampleSize, 0, 1, rng)
	} else {
		draws = make([]float64, sampleSize)
		for i := range draws {
			draws[i] = rng.Float64()
		}
	}

	// Sort users by θ once; for each draw pick the nearest unused user via
	// binary search with a small outward scan for collisions.
	sorted := append([]userTheta(nil), all...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].theta != sorted[b].theta {
			return sorted[a].theta < sorted[b].theta
		}
		return sorted[a].user < sorted[b].user
	})
	used := make([]bool, len(sorted))
	sample := make([]userTheta, 0, sampleSize)
	for _, d := range draws {
		idx := sort.Search(len(sorted), func(k int) bool { return sorted[k].theta >= d })
		pick := -1
		for offset := 0; offset < len(sorted); offset++ {
			lo, hi := idx-offset, idx+offset
			if lo >= 0 && lo < len(sorted) && !used[lo] {
				pick = lo
				break
			}
			if hi >= 0 && hi < len(sorted) && !used[hi] {
				pick = hi
				break
			}
		}
		if pick < 0 {
			break // every user already sampled
		}
		used[pick] = true
		sample = append(sample, sorted[pick])
	}
	return sample
}

// freqSnapshot is the Dyn frequency state recorded after a sampled user's
// top-N set was assigned, keyed by that user's θ (Algorithm 1, line 8).
type freqSnapshot struct {
	theta float64
	freq  []int
}

// nearestSnapshotFreq returns the frequency snapshot whose θ is closest to
// theta. snapshots must be sorted by θ (they are, because the sample is
// processed in increasing θ).
func nearestSnapshotFreq(snapshots []freqSnapshot, theta float64) []int {
	if len(snapshots) == 0 {
		return nil
	}
	idx := sort.Search(len(snapshots), func(k int) bool { return snapshots[k].theta >= theta })
	if idx == 0 {
		return snapshots[0].freq
	}
	if idx >= len(snapshots) {
		return snapshots[len(snapshots)-1].freq
	}
	if theta-snapshots[idx-1].theta <= snapshots[idx].theta-theta {
		return snapshots[idx-1].freq
	}
	return snapshots[idx].freq
}

// ValueOf computes the objective value Σ_u v_u(P_u) of a recommendation
// collection under this GANC instance's components, using the *static*
// interpretation of the coverage score for Dyn (i.e. the value as defined in
// Eq. A.2, recomputed from scratch over the collection). It is used by tests
// and the ablation benchmarks to compare optimizer variants.
func (g *GANC) ValueOf(recs types.Recommendations) float64 {
	// For Dyn the value of the collection is Σ_i Σ_{k=1..f_i} 1/√k weighted
	// by each recommending user's θ; recompute by replaying the collection.
	if _, isDyn := g.crec.(*DynCoverage); isDyn {
		freq := make(map[types.ItemID]int)
		total := 0.0
		// Replay users in ascending UserID for determinism.
		users := make([]types.UserID, 0, len(recs))
		for u := range recs {
			users = append(users, u)
		}
		sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
		for _, u := range users {
			theta := g.prefs.Get(u)
			for _, i := range recs[u] {
				acc := g.arec.AccuracyScore(u, i)
				cov := 1 / math.Sqrt(float64(freq[i])+1)
				total += (1-theta)*acc + theta*cov
				freq[i]++
			}
		}
		return total
	}
	total := 0.0
	for u, set := range recs {
		theta := g.prefs.Get(u)
		for _, i := range set {
			total += (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
		}
	}
	return total
}
