// Package core implements GANC, the paper's Generic re-ranking framework for
// trading off Accuracy, Novelty and Coverage, together with its OSLG
// (Ordered Sampling-based Locally Greedy) optimization algorithm.
//
// GANC combines three pluggable components (Section III):
//
//   - an accuracy recommender providing a per-item accuracy score a(i) ∈ [0,1],
//   - a coverage recommender providing a per-item coverage score c(i) ∈ [0,1],
//   - a per-user long-tail novelty preference θ_u ∈ [0,1].
//
// The user value function is v_u(P_u) = (1−θ_u)·a(P_u) + θ_u·c(P_u), and the
// framework selects a top-N collection maximizing Σ_u v_u(P_u). With the
// static coverage recommenders (Rand, Stat) the objective decomposes per user
// and a plain greedy sweep is exact; with the Dyn coverage recommender the
// objective is submodular across users and OSLG (Algorithm 1) is used.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"ganc/internal/dataset"
	"ganc/internal/kde"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/submodular"
	"ganc/internal/types"
)

// AccuracyRecommender provides the accuracy score a(i) ∈ [0,1] for a user.
// Implementations wrap the base models (Pop, RSVD, PSVD, ...).
type AccuracyRecommender interface {
	// AccuracyScore returns a(i) for user u; must lie in [0,1].
	AccuracyScore(u types.UserID, i types.ItemID) float64
	// Name identifies the accuracy recommender in experiment output.
	Name() string
}

// CoverageRecommender provides the coverage score c(i) ∈ [0,1]. The Dyn
// recommender is stateful: its score depends on the recommendations made so
// far, which it learns about through Observe.
type CoverageRecommender interface {
	// CoverageScore returns c(i) for user u; must lie in [0,1].
	CoverageScore(u types.UserID, i types.ItemID) float64
	// Observe informs the recommender that item i was just recommended (to
	// any user). Stateless recommenders ignore it.
	Observe(i types.ItemID)
	// Name identifies the coverage recommender in experiment output.
	Name() string
}

// --- Accuracy recommender adapters -------------------------------------------

// BulkAccuracy is the batch companion of AccuracyRecommender: one call fills
// a preallocated buffer with a(items[k]) for user u. The candidate pipeline
// uses it to score a user's whole candidate set in one call; implementations
// must return exactly the values AccuracyScore would (accuracy scores are
// stateless by contract, so buffering them for the duration of a sweep is
// always sound).
type BulkAccuracy interface {
	// AccuracyScores fills out[k] with a(items[k]) for user u;
	// len(out) == len(items).
	AccuracyScores(u types.UserID, items []types.ItemID, out []float64)
}

// fillAccuracyScores fills out with arec's scores for items, using the bulk
// path when available.
func fillAccuracyScores(arec AccuracyRecommender, u types.UserID, items []types.ItemID, out []float64) {
	if ba, ok := arec.(BulkAccuracy); ok {
		ba.AccuracyScores(u, items, out)
		return
	}
	for k, i := range items {
		out[k] = arec.AccuracyScore(u, i)
	}
}

// ScorerAccuracy adapts any recommender.Scorer whose scores are already in
// [0,1] (e.g. a NormalizedScorer around RSVD or PSVD).
type ScorerAccuracy struct {
	Scorer recommender.Scorer
}

// AccuracyScore implements AccuracyRecommender.
func (s *ScorerAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	v := s.Scorer.Score(u, i)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AccuracyScores implements BulkAccuracy through the scorer's bulk path,
// clamping to [0,1] exactly as AccuracyScore does.
func (s *ScorerAccuracy) AccuracyScores(u types.UserID, items []types.ItemID, out []float64) {
	recommender.BulkScores(s.Scorer, u, items, out)
	for k, v := range out {
		if v < 0 {
			out[k] = 0
		} else if v > 1 {
			out[k] = 1
		}
	}
}

// Name implements AccuracyRecommender.
func (s *ScorerAccuracy) Name() string { return s.Scorer.Name() }

// PopAccuracy is the paper's Pop accuracy recommender: a(i) = 1 when i is in
// the user's popularity top-N (excluding their train items), 0 otherwise.
// It is safe for concurrent use: lookups take a read lock only, so the hot
// serving path never serializes on the cache, and the cache is bounded by
// cacheCap with arbitrary-entry eviction (map iteration order) once full.
type PopAccuracy struct {
	pop      *recommender.Pop
	train    *dataset.Dataset
	topN     int
	mu       sync.RWMutex
	cache    map[types.UserID]map[types.ItemID]struct{}
	cacheCap int
}

// NewPopAccuracy builds the indicator-style Pop accuracy recommender. topN is
// the N of the top-N sets being constructed.
func NewPopAccuracy(train *dataset.Dataset, topN int) *PopAccuracy {
	return &PopAccuracy{
		pop:      recommender.NewPop(train),
		train:    train,
		topN:     topN,
		cache:    make(map[types.UserID]map[types.ItemID]struct{}),
		cacheCap: 200_000,
	}
}

// topSet returns user u's popularity top-N membership set, computing and
// caching it on first use. The fast path is a read-locked map lookup.
func (p *PopAccuracy) topSet(u types.UserID) map[types.ItemID]struct{} {
	p.mu.RLock()
	set, ok := p.cache[u]
	p.mu.RUnlock()
	if ok {
		return set
	}
	top := p.pop.RecommendFrom(u, p.topN, p.train.AppendCandidates(u, nil))
	set = make(map[types.ItemID]struct{}, len(top))
	for _, it := range top {
		set[it] = struct{}{}
	}
	p.mu.Lock()
	if cached, ok := p.cache[u]; ok {
		// Another goroutine computed the set first; keep its copy so all
		// callers share one map.
		set = cached
	} else {
		if len(p.cache) >= p.cacheCap {
			p.evictOneLocked()
		}
		p.cache[u] = set
	}
	p.mu.Unlock()
	return set
}

// evictOneLocked removes one arbitrary cache entry (map iteration order is
// randomized, which approximates random replacement) so the cache stays
// bounded under serving load instead of refusing new users. Callers hold
// p.mu for writing.
func (p *PopAccuracy) evictOneLocked() {
	for victim := range p.cache {
		delete(p.cache, victim)
		break
	}
}

// AccuracyScore implements AccuracyRecommender: membership in the user's
// popularity top-N.
func (p *PopAccuracy) AccuracyScore(u types.UserID, i types.ItemID) float64 {
	if _, in := p.topSet(u)[i]; in {
		return 1
	}
	return 0
}

// AccuracyScores implements BulkAccuracy: the membership set is resolved once
// for the whole candidate slice.
func (p *PopAccuracy) AccuracyScores(u types.UserID, items []types.ItemID, out []float64) {
	set := p.topSet(u)
	for k, i := range items {
		if _, in := set[i]; in {
			out[k] = 1
		} else {
			out[k] = 0
		}
	}
}

// SetCacheCap overrides the top-N membership cache bound (primarily for
// tests). Caps ≤ 0 are treated as 1.
func (p *PopAccuracy) SetCacheCap(cap int) {
	if cap <= 0 {
		cap = 1
	}
	p.mu.Lock()
	p.cacheCap = cap
	for len(p.cache) > cap {
		p.evictOneLocked()
	}
	p.mu.Unlock()
}

// CacheLen reports how many users' top-N sets are currently cached.
func (p *PopAccuracy) CacheLen() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.cache)
}

// Name implements AccuracyRecommender.
func (p *PopAccuracy) Name() string { return "Pop" }

// --- Coverage recommenders ----------------------------------------------------

// BulkCoverage is an optional CoverageRecommender extension for recommenders
// whose per-user scores can be materialized once per sweep: implementing it
// asserts that, within a single user's greedy sweep, an item's coverage score
// only changes through Observe calls on that same item (which the sweep never
// re-evaluates, because picked items leave the candidate pool). Stat and Rand
// qualify trivially; Dyn is handled natively by the optimizer. Stateful
// custom recommenders that do not implement it are scored live through
// CoverageScore on every (lazy) gain evaluation, which stays correct for any
// submodular objective.
type BulkCoverage interface {
	// CoverageScores fills out[k] with c(items[k]) for user u;
	// len(out) == len(items).
	CoverageScores(u types.UserID, items []types.ItemID, out []float64)
}

// RandCoverage assigns each (user, item) pair an independent uniform score,
// the paper's Rand coverage recommender. It is safe for concurrent use.
type RandCoverage struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandCoverage builds a Rand coverage recommender.
func NewRandCoverage(seed int64) *RandCoverage {
	return &RandCoverage{rng: rand.New(rand.NewSource(seed))}
}

// CoverageScore implements CoverageRecommender.
func (r *RandCoverage) CoverageScore(types.UserID, types.ItemID) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rng.Float64()
}

// CoverageScores implements BulkCoverage: the mutex is taken once per sweep
// instead of once per (item, pick) evaluation.
func (r *RandCoverage) CoverageScores(_ types.UserID, items []types.ItemID, out []float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k := range items {
		out[k] = r.rng.Float64()
	}
}

// Observe implements CoverageRecommender (no state).
func (r *RandCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (r *RandCoverage) Name() string { return "Rand" }

// StatCoverage scores items by a monotone decreasing function of their train
// popularity: c(i) = 1/√(f_i^R + 1). The gain of recommending an item is
// constant regardless of how often it has already been recommended.
type StatCoverage struct {
	scores []float64
}

// NewStatCoverage precomputes the static coverage scores from the train set.
func NewStatCoverage(train *dataset.Dataset) *StatCoverage {
	scores := make([]float64, train.NumItems())
	for i := range scores {
		scores[i] = 1 / math.Sqrt(float64(train.ItemPopularity(types.ItemID(i)))+1)
	}
	return &StatCoverage{scores: scores}
}

// CoverageScore implements CoverageRecommender.
func (s *StatCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(s.scores) {
		return 0
	}
	return s.scores[i]
}

// CoverageScores implements BulkCoverage: a vectorized lookup of the
// precomputed static scores.
func (s *StatCoverage) CoverageScores(_ types.UserID, items []types.ItemID, out []float64) {
	for k, i := range items {
		if int(i) >= len(s.scores) {
			out[k] = 0
			continue
		}
		out[k] = s.scores[i]
	}
}

// Observe implements CoverageRecommender (no state).
func (s *StatCoverage) Observe(types.ItemID) {}

// Name implements CoverageRecommender.
func (s *StatCoverage) Name() string { return "Stat" }

// DynCoverage scores items by a monotone decreasing function of how often
// they have been recommended so far: c(i) = 1/√(f_i^A + 1), where f_i^A is
// the recommendation frequency in the partial top-N collection A. It has the
// diminishing-returns property that makes GANC's objective submodular.
type DynCoverage struct {
	freq []int
}

// NewDynCoverage builds a Dyn coverage recommender over a catalog of numItems
// items with all frequencies zero.
func NewDynCoverage(numItems int) *DynCoverage {
	return &DynCoverage{freq: make([]int, numItems)}
}

// CoverageScore implements CoverageRecommender.
func (d *DynCoverage) CoverageScore(_ types.UserID, i types.ItemID) float64 {
	if int(i) >= len(d.freq) {
		return 0
	}
	return 1 / math.Sqrt(float64(d.freq[i])+1)
}

// Observe implements CoverageRecommender: bumps the item's frequency.
func (d *DynCoverage) Observe(i types.ItemID) {
	if int(i) < len(d.freq) {
		d.freq[i]++
	}
}

// Name implements CoverageRecommender.
func (d *DynCoverage) Name() string { return "Dyn" }

// Frequencies returns a copy of the current recommendation-frequency state
// (OSLG snapshots it per sampled user).
func (d *DynCoverage) Frequencies() []int {
	out := make([]int, len(d.freq))
	copy(out, d.freq)
	return out
}

// CopyFrequencies copies the current frequency state into dst, growing it if
// needed, and returns the filled slice. The online serving path uses it to
// snapshot without allocating per request.
func (d *DynCoverage) CopyFrequencies(dst []int) []int {
	if cap(dst) < len(d.freq) {
		dst = make([]int, len(d.freq))
	}
	dst = dst[:len(d.freq)]
	copy(dst, d.freq)
	return dst
}

// SetFrequencies replaces the frequency state (OSLG restores snapshots for
// out-of-sample users).
func (d *DynCoverage) SetFrequencies(f []int) {
	if len(f) != len(d.freq) {
		panic(fmt.Sprintf("core: frequency vector length %d != catalog size %d", len(f), len(d.freq)))
	}
	copy(d.freq, f)
}

// NumItems returns the catalog size the recommender was built for.
func (d *DynCoverage) NumItems() int { return len(d.freq) }

// --- GANC ---------------------------------------------------------------------

// Config configures a GANC instance.
type Config struct {
	// N is the size of each top-N set.
	N int
	// SampleSize S is the number of users processed sequentially by OSLG.
	// Values ≤ 0 or ≥ |U| disable sampling and run the fully sequential
	// locally greedy algorithm. Only used with the Dyn coverage recommender.
	SampleSize int
	// Seed drives the KDE sampling and any randomized component.
	Seed int64
	// Workers is the number of goroutines used for the out-of-sample phase of
	// OSLG (Algorithm 1, lines 11–15, which the paper notes can run in
	// parallel) and for the independent per-user sweeps of the stateless
	// coverage recommenders. Values ≤ 1 run sequentially; values above
	// runtime.NumCPU() are clamped to it.
	Workers int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("core: N must be positive, got %d", c.N)
	}
	return nil
}

// GANC is a configured instance of the framework. Construct with New.
type GANC struct {
	cfg      Config
	arec     AccuracyRecommender
	crec     CoverageRecommender
	prefs    *longtail.Preferences
	train    *dataset.Dataset
	numItems int

	// onlineMu serializes snapshots of the Dyn coverage state taken by
	// RecommendUser, so concurrent online requests are safe. The batch
	// Recommend path must not run concurrently with RecommendUser on the
	// same instance.
	onlineMu sync.Mutex

	// scratchPool recycles the per-sweep candidate and score buffers, so the
	// online RecommendUser path and the sharded batch workers allocate the
	// catalog-sized buffers once instead of per call.
	scratchPool sync.Pool
}

// New assembles a GANC instance from its three components, following the
// paper's template GANC(ARec, θ, CRec).
func New(train *dataset.Dataset, arec AccuracyRecommender, prefs *longtail.Preferences, crec CoverageRecommender, cfg Config) (*GANC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if train == nil || arec == nil || prefs == nil || crec == nil {
		return nil, fmt.Errorf("core: train, accuracy recommender, preferences and coverage recommender are all required")
	}
	if prefs.Len() != train.NumUsers() {
		return nil, fmt.Errorf("core: preference vector covers %d users but train set has %d", prefs.Len(), train.NumUsers())
	}
	g := &GANC{
		cfg:      cfg,
		arec:     arec,
		crec:     crec,
		prefs:    prefs,
		train:    train,
		numItems: train.NumItems(),
	}
	g.scratchPool.New = func() interface{} { return newSweepScratch(g.numItems) }
	return g, nil
}

// Name returns the paper-style template string GANC(ARec, θ, CRec).
func (g *GANC) Name() string {
	return fmt.Sprintf("GANC(%s, θ^%s, %s)", g.arec.Name(), shortModel(g.prefs.Model), g.crec.Name())
}

func shortModel(m longtail.Model) string {
	switch m {
	case longtail.ModelActivity:
		return "A"
	case longtail.ModelNormalizedLongTail:
		return "N"
	case longtail.ModelTFIDF:
		return "T"
	case longtail.ModelGeneralized:
		return "G"
	case longtail.ModelRandom:
		return "R"
	case longtail.ModelConstant:
		return "C"
	default:
		return string(m)
	}
}

// marginalGain is the gain of appending item i to user u's set:
// (1−θ_u)·a(i) + θ_u·c(i). Both component scores are in [0,1] so the gain is
// too.
func (g *GANC) marginalGain(u types.UserID, i types.ItemID) float64 {
	theta := g.prefs.Get(u)
	return (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
}

// --- Buffered CELF sweep machinery --------------------------------------------

// coverageMode selects how the sweep oracle resolves coverage scores.
type coverageMode int

const (
	// covBuffered reads the dense per-sweep coverage buffer (Stat, Rand and
	// any custom BulkCoverage implementation).
	covBuffered coverageMode = iota
	// covDynLive reads the shared live Dyn frequency state (the OSLG
	// sequential in-sample phase).
	covDynLive
	// covFrozen reads a frozen Dyn frequency snapshot (the OSLG out-of-sample
	// phase and the online RecommendUser path).
	covFrozen
	// covLive calls CoverageScore on every gain evaluation (custom stateful
	// recommenders without a bulk contract; correct for any submodular gain).
	covLive
)

// sweepScratch holds one worker's reusable buffers: the candidate slice, a
// packed staging buffer aligned with it, dense (by-ItemID) accuracy and
// coverage score buffers, a frozen-frequency snapshot buffer and the CELF
// heap storage. One scratch serves one sweep at a time.
type sweepScratch struct {
	cand   []types.ItemID
	packed []float64
	acc    []float64
	cov    []float64
	freq   []int
	lazy   submodular.LazyScratch
	oracle sweepOracle
}

func newSweepScratch(numItems int) *sweepScratch {
	return &sweepScratch{
		acc: make([]float64, numItems),
		cov: make([]float64, numItems),
	}
}

func (g *GANC) getScratch() *sweepScratch   { return g.scratchPool.Get().(*sweepScratch) }
func (g *GANC) putScratch(sc *sweepScratch) { g.scratchPool.Put(sc) }

// sweepOracle adapts one user's buffered scores to the submodular.Oracle
// interface consumed by the CELF lazy-greedy selection.
type sweepOracle struct {
	crec    CoverageRecommender
	theta   float64
	cand    []types.ItemID
	acc     []float64 // dense by ItemID
	cov     []float64 // dense by ItemID (covBuffered)
	freq    []int     // frozen Dyn snapshot (covFrozen)
	dyn     *DynCoverage
	mode    coverageMode
	observe bool
}

// Candidates implements submodular.Oracle.
func (o *sweepOracle) Candidates(types.UserID) []types.ItemID { return o.cand }

// Gain implements submodular.Oracle: (1−θ)·a(i) + θ·c(i) with a(i) read from
// the dense accuracy buffer and c(i) resolved per the coverage mode.
func (o *sweepOracle) Gain(u types.UserID, i types.ItemID) float64 {
	var cov float64
	switch o.mode {
	case covBuffered:
		cov = o.cov[i]
	case covDynLive:
		cov = o.dyn.CoverageScore(u, i)
	case covFrozen:
		base := 0
		if int(i) < len(o.freq) {
			base = o.freq[i]
		}
		cov = 1 / math.Sqrt(float64(base)+1)
	case covLive:
		cov = o.crec.CoverageScore(u, i)
	}
	return (1-o.theta)*o.acc[i] + o.theta*cov
}

// Commit implements submodular.Oracle: batch sweeps report each pick to the
// coverage recommender; frozen/online sweeps never mutate shared state.
func (o *sweepOracle) Commit(_ types.UserID, i types.ItemID) {
	if o.observe {
		o.crec.Observe(i)
	}
}

// sweepUser builds one user's top-n set through the index-contiguous
// candidate pipeline: candidates are enumerated by a linear merge against the
// user's sorted train adjacency, accuracy scores land in a dense buffer via
// one bulk call, and items are selected with the CELF lazy-greedy heap. When
// freq is non-nil the sweep runs against that frozen Dyn snapshot; observe
// reports picks to the shared coverage recommender (the batch path).
func (g *GANC) sweepUser(ctx context.Context, u types.UserID, n int, freq []int, observe bool, sc *sweepScratch) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc.cand = g.train.AppendCandidates(u, sc.cand[:0])
	cand := sc.cand
	if cap(sc.packed) < len(cand) {
		sc.packed = make([]float64, len(cand))
	}
	packed := sc.packed[:len(cand)]

	fillAccuracyScores(g.arec, u, cand, packed)
	for k, i := range cand {
		sc.acc[i] = packed[k]
	}
	// Re-check cancellation between the scoring and selection stages: the old
	// per-pick rescan checked ctx once per pick, and on large catalogs the
	// bulk scoring above is the bulk of a sweep's cost.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	o := &sc.oracle
	*o = sweepOracle{
		crec:    g.crec,
		theta:   g.prefs.Get(u),
		cand:    cand,
		acc:     sc.acc,
		observe: observe,
	}
	switch {
	case freq != nil:
		o.mode, o.freq = covFrozen, freq
	default:
		if dyn, isDyn := g.crec.(*DynCoverage); isDyn {
			o.mode, o.dyn = covDynLive, dyn
		} else if bc, isBulk := g.crec.(BulkCoverage); isBulk {
			bc.CoverageScores(u, cand, packed)
			for k, i := range cand {
				sc.cov[i] = packed[k]
			}
			o.mode = covBuffered
			o.cov = sc.cov
		} else {
			o.mode = covLive
		}
	}
	return submodular.LazyGreedyForUserScratch(u, n, o, &sc.lazy), nil
}

// forEachShard splits [0, count) into contiguous ranges across the configured
// workers (clamped to the CPU count) and runs fn(lo, hi) per range, inline
// when parallelism is disabled.
func (g *GANC) forEachShard(count int, fn func(lo, hi int)) {
	workers := g.cfg.Workers
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	if workers <= 1 || count <= 1 {
		fn(0, count)
		return
	}
	var wg sync.WaitGroup
	for _, r := range recommender.ShardRanges(count, workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(r.Lo, r.Hi)
	}
	wg.Wait()
}

// Recommend produces the top-N collection for every user.
//
// With a stateless coverage recommender (Rand, Stat) the per-user problems
// are independent and are solved by independent greedy sweeps. With Dyn, the
// OSLG algorithm is used: a KDE-sampled subset of users (Config.SampleSize)
// is processed sequentially in increasing θ, the Dyn frequency state is
// snapshotted after each sampled user, and the remaining users reuse the
// snapshot of their nearest sampled θ.
func (g *GANC) Recommend() types.Recommendations {
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.recommendOSLG(dyn)
	}
	// Stateless coverage recommenders (Rand, Stat): every user's problem is
	// independent, so the sweep shards across Config.Workers, one contiguous
	// user range and one scratch per worker. Per-user results land in a slice
	// indexed by user, so no mutex is needed.
	numUsers := g.train.NumUsers()
	sets := make([]types.TopNSet, numUsers)
	ctx := context.Background()
	g.forEachShard(numUsers, func(lo, hi int) {
		sc := g.getScratch()
		defer g.putScratch(sc)
		for u := lo; u < hi; u++ {
			sets[u], _ = g.sweepUser(ctx, types.UserID(u), g.cfg.N, nil, true, sc)
		}
	})
	recs := make(types.Recommendations, numUsers)
	for u, set := range sets {
		recs[types.UserID(u)] = set
	}
	return recs
}

// TopN returns the configured top-N size.
func (g *GANC) TopN() int { return g.cfg.N }

// RecommendUser computes a single user's top-N list on demand, without
// touching any other user. With the Dyn coverage recommender the current
// shared frequency state is snapshotted under a lock and the sweep runs
// against the frozen copy, so concurrent RecommendUser calls are safe and
// never mutate shared state; the result is deterministic for a given state,
// which makes it cacheable. n ≤ 0 selects the configured Config.N.
//
// Batch Recommend must not run concurrently with RecommendUser on the same
// instance (it mutates the Dyn state without the online lock).
func (g *GANC) RecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if int(u) < 0 || int(u) >= g.train.NumUsers() {
		return nil, fmt.Errorf("core: user %d out of range [0,%d)", u, g.train.NumUsers())
	}
	if n <= 0 {
		n = g.cfg.N
	}
	sc := g.getScratch()
	defer g.putScratch(sc)
	if dyn, ok := g.crec.(*DynCoverage); ok {
		g.onlineMu.Lock()
		sc.freq = dyn.CopyFrequencies(sc.freq)
		g.onlineMu.Unlock()
		return g.sweepUser(ctx, u, n, sc.freq, false, sc)
	}
	return g.sweepUser(ctx, u, n, nil, false, sc)
}

// RecommendAll is the context-aware batch entry point used by the Engine
// interface. Cancellation is only checked before and after the sweep: once
// the batch optimizer starts it runs to completion, because OSLG's
// sequential phase cannot be abandoned midway without corrupting the Dyn
// frequency state shared with the remaining users.
func (g *GANC) RecommendAll(ctx context.Context) (types.Recommendations, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	recs := g.Recommend()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// userTheta pairs a user with their long-tail preference for sorting.
type userTheta struct {
	user  types.UserID
	theta float64
}

// recommendOSLG implements Algorithm 1.
func (g *GANC) recommendOSLG(dyn *DynCoverage) types.Recommendations {
	numUsers := g.train.NumUsers()
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	recs := make(types.Recommendations, numUsers)

	all := make([]userTheta, numUsers)
	for u := 0; u < numUsers; u++ {
		all[u] = userTheta{user: types.UserID(u), theta: g.prefs.Get(types.UserID(u))}
	}

	sampleSize := g.cfg.SampleSize
	fullSequential := sampleSize <= 0 || sampleSize >= numUsers

	var sample []userTheta
	if fullSequential {
		sample = all
	} else {
		sample = g.sampleUsersByKDE(all, sampleSize, rng)
	}
	// Sort the sampled users in increasing long-tail preference (line 3): the
	// popularity-focused users pick first, while the Dyn frequencies are low,
	// and the explorers pick later, when popular items have been discounted.
	sort.Slice(sample, func(a, b int) bool {
		if sample[a].theta != sample[b].theta {
			return sample[a].theta < sample[b].theta
		}
		return sample[a].user < sample[b].user
	})

	// Sequential pass over the sample (lines 4–10), snapshotting the Dyn
	// frequency state after each user, keyed by that user's θ.
	ctx := context.Background()
	snapshots := make([]freqSnapshot, 0, len(sample))
	inSample := make(map[types.UserID]struct{}, len(sample))
	sc := g.getScratch()
	for _, ut := range sample {
		inSample[ut.user] = struct{}{}
		set, _ := g.sweepUser(ctx, ut.user, g.cfg.N, nil, true, sc)
		recs[ut.user] = set
		snapshots = append(snapshots, freqSnapshot{theta: ut.theta, freq: dyn.Frequencies()})
	}
	g.putScratch(sc)

	if fullSequential {
		return recs
	}

	// Out-of-sample pass (lines 11–15): each remaining user reuses the frozen
	// frequency snapshot of the sampled user with the closest θ. These users'
	// value functions are independent of each other, so the pass shards
	// across Config.Workers, one contiguous range and one scratch per worker,
	// exactly as the paper observes.
	var remaining []userTheta
	for _, ut := range all {
		if _, done := inSample[ut.user]; done {
			continue
		}
		remaining = append(remaining, ut)
	}
	sets := make([]types.TopNSet, len(remaining))
	g.forEachShard(len(remaining), func(lo, hi int) {
		wsc := g.getScratch()
		defer g.putScratch(wsc)
		for k := lo; k < hi; k++ {
			ut := remaining[k]
			snap := nearestSnapshotFreq(snapshots, ut.theta)
			sets[k], _ = g.sweepUser(ctx, ut.user, g.cfg.N, snap, false, wsc)
		}
	})
	// Fold the out-of-sample recommendations into the final frequency state
	// so the recommender's end state reflects the full collection.
	for k, ut := range remaining {
		recs[ut.user] = sets[k]
		for _, i := range sets[k] {
			dyn.Observe(i)
		}
	}
	return recs
}

// sampleUsersByKDE draws sampleSize users whose θ values follow the KDE of
// the preference distribution (Algorithm 1, line 2): sample θ* values from
// the KDE, then map each θ* to the not-yet-chosen user with the nearest θ.
func (g *GANC) sampleUsersByKDE(all []userTheta, sampleSize int, rng *rand.Rand) []userTheta {
	thetas := make([]float64, len(all))
	for k, ut := range all {
		thetas[k] = ut.theta
	}
	density, err := kde.New(thetas, 0)
	var draws []float64
	if err == nil {
		draws = density.SampleClamped(sampleSize, 0, 1, rng)
	} else {
		draws = make([]float64, sampleSize)
		for i := range draws {
			draws[i] = rng.Float64()
		}
	}

	// Sort users by θ once; for each draw pick the nearest unused user via
	// binary search with a small outward scan for collisions.
	sorted := append([]userTheta(nil), all...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].theta != sorted[b].theta {
			return sorted[a].theta < sorted[b].theta
		}
		return sorted[a].user < sorted[b].user
	})
	used := make([]bool, len(sorted))
	sample := make([]userTheta, 0, sampleSize)
	for _, d := range draws {
		idx := sort.Search(len(sorted), func(k int) bool { return sorted[k].theta >= d })
		pick := -1
		for offset := 0; offset < len(sorted); offset++ {
			lo, hi := idx-offset, idx+offset
			if lo >= 0 && lo < len(sorted) && !used[lo] {
				pick = lo
				break
			}
			if hi >= 0 && hi < len(sorted) && !used[hi] {
				pick = hi
				break
			}
		}
		if pick < 0 {
			break // every user already sampled
		}
		used[pick] = true
		sample = append(sample, sorted[pick])
	}
	return sample
}

// freqSnapshot is the Dyn frequency state recorded after a sampled user's
// top-N set was assigned, keyed by that user's θ (Algorithm 1, line 8).
type freqSnapshot struct {
	theta float64
	freq  []int
}

// nearestSnapshotFreq returns the frequency snapshot whose θ is closest to
// theta. snapshots must be sorted by θ (they are, because the sample is
// processed in increasing θ).
func nearestSnapshotFreq(snapshots []freqSnapshot, theta float64) []int {
	if len(snapshots) == 0 {
		return nil
	}
	idx := sort.Search(len(snapshots), func(k int) bool { return snapshots[k].theta >= theta })
	if idx == 0 {
		return snapshots[0].freq
	}
	if idx >= len(snapshots) {
		return snapshots[len(snapshots)-1].freq
	}
	if theta-snapshots[idx-1].theta <= snapshots[idx].theta-theta {
		return snapshots[idx-1].freq
	}
	return snapshots[idx].freq
}

// ValueOf computes the objective value Σ_u v_u(P_u) of a recommendation
// collection under this GANC instance's components, using the *static*
// interpretation of the coverage score for Dyn (i.e. the value as defined in
// Eq. A.2, recomputed from scratch over the collection). It is used by tests
// and the ablation benchmarks to compare optimizer variants.
func (g *GANC) ValueOf(recs types.Recommendations) float64 {
	// For Dyn the value of the collection is Σ_i Σ_{k=1..f_i} 1/√k weighted
	// by each recommending user's θ; recompute by replaying the collection.
	if _, isDyn := g.crec.(*DynCoverage); isDyn {
		freq := make(map[types.ItemID]int)
		total := 0.0
		// Replay users in ascending UserID for determinism.
		users := make([]types.UserID, 0, len(recs))
		for u := range recs {
			users = append(users, u)
		}
		sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })
		for _, u := range users {
			theta := g.prefs.Get(u)
			for _, i := range recs[u] {
				acc := g.arec.AccuracyScore(u, i)
				cov := 1 / math.Sqrt(float64(freq[i])+1)
				total += (1-theta)*acc + theta*cov
				freq[i]++
			}
		}
		return total
	}
	total := 0.0
	for u, set := range recs {
		theta := g.prefs.Get(u)
		for _, i := range set {
			total += (1-theta)*g.arec.AccuracyScore(u, i) + theta*g.crec.CoverageScore(u, i)
		}
	}
	return total
}
