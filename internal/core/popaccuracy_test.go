package core

import (
	"math/rand"
	"sync"
	"testing"

	"ganc/internal/types"
)

func TestPopAccuracyCacheStaysBounded(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	pa := NewPopAccuracy(train, 5)
	pa.SetCacheCap(4)
	numUsers := train.NumUsers()
	if numUsers < 10 {
		t.Fatalf("fixture too small: %d users", numUsers)
	}
	for u := 0; u < numUsers; u++ {
		pa.AccuracyScore(types.UserID(u), 0)
		if got := pa.CacheLen(); got > 4 {
			t.Fatalf("cache grew to %d entries with cap 4", got)
		}
	}
	// Evicted users must still score correctly (recomputed on demand).
	fresh := NewPopAccuracy(train, 5)
	for u := 0; u < 10; u++ {
		for i := 0; i < 25; i++ {
			uid, iid := types.UserID(u), types.ItemID(i)
			if pa.AccuracyScore(uid, iid) != fresh.AccuracyScore(uid, iid) {
				t.Fatalf("user %d item %d: bounded cache changed the score", u, i)
			}
		}
	}
}

func TestPopAccuracyShrinksWhenCapLowered(t *testing.T) {
	sp := testSplit(t)
	pa := NewPopAccuracy(sp.Train, 3)
	for u := 0; u < 20; u++ {
		pa.AccuracyScore(types.UserID(u), 0)
	}
	pa.SetCacheCap(5)
	if got := pa.CacheLen(); got > 5 {
		t.Fatalf("SetCacheCap did not shrink the cache: %d entries", got)
	}
}

func TestPopAccuracyConcurrentReadsAgree(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	pa := NewPopAccuracy(train, 5)
	pa.SetCacheCap(8) // force eviction churn under concurrency
	want := NewPopAccuracy(train, 5)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			out := make([]float64, 16)
			items := make([]types.ItemID, 16)
			for trial := 0; trial < 200; trial++ {
				u := types.UserID(rng.Intn(train.NumUsers()))
				for k := range items {
					items[k] = types.ItemID(rng.Intn(train.NumItems()))
				}
				pa.AccuracyScores(u, items, out)
				for k, i := range items {
					if out[k] != want.AccuracyScore(u, i) {
						select {
						case errs <- "concurrent bulk score diverged":
						default:
						}
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}
