package core

import (
	"math/rand"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/longtail"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// parallelSplit builds a compact split for the concurrency tests.
func parallelSplit(t *testing.T) *dataset.Split {
	t.Helper()
	cfg := synth.ML100K(0.1)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitByUser(0.8, rand.New(rand.NewSource(51)))
}

func collectionsEqual(a, b types.Recommendations) bool {
	if len(a) != len(b) {
		return false
	}
	for u, setA := range a {
		setB, ok := b[u]
		if !ok || len(setA) != len(setB) {
			return false
		}
		for k := range setA {
			if setA[k] != setB[k] {
				return false
			}
		}
	}
	return true
}

func TestParallelStatCoverageMatchesSequential(t *testing.T) {
	sp := parallelSplit(t)
	train := sp.Train
	prefs, err := longtail.Estimate(longtail.ModelTFIDF, train, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) types.Recommendations {
		g, err := New(train, NewPopAccuracy(train, 5), prefs, NewStatCoverage(train),
			Config{N: 5, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return g.Recommend()
	}
	seq := run(1)
	par := run(8)
	if !collectionsEqual(seq, par) {
		t.Fatal("parallel Stat-coverage run differs from the sequential run")
	}
}

func TestParallelOSLGOutOfSampleMatchesSequential(t *testing.T) {
	sp := parallelSplit(t)
	train := sp.Train
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) types.Recommendations {
		g, err := New(train, NewPopAccuracy(train, 5), prefs, NewDynCoverage(train.NumItems()),
			Config{N: 5, SampleSize: train.NumUsers() / 4, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return g.Recommend()
	}
	seq := run(0)
	par := run(16)
	if !collectionsEqual(seq, par) {
		t.Fatal("parallel OSLG out-of-sample phase differs from the sequential phase")
	}
}

func TestParallelWorkersClampedAboveCPUCount(t *testing.T) {
	sp := parallelSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.5)
	g, err := New(train, NewPopAccuracy(train, 3), prefs, NewStatCoverage(train),
		Config{N: 3, Seed: 1, Workers: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	if len(recs) != train.NumUsers() {
		t.Fatal("huge worker count broke the sweep")
	}
}

func TestParallelRandCoverageProducesCompleteCollection(t *testing.T) {
	// Rand coverage is inherently nondeterministic across schedules, so only
	// validate structural invariants under parallelism (and let the race
	// detector do the rest).
	sp := parallelSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.7)
	g, err := New(train, NewPopAccuracy(train, 5), prefs, NewRandCoverage(3),
		Config{N: 5, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	if len(recs) != train.NumUsers() {
		t.Fatalf("got %d users, want %d", len(recs), train.NumUsers())
	}
	for u, set := range recs {
		if len(set) != 5 {
			t.Fatalf("user %d got %d items", u, len(set))
		}
		trainItems := train.UserItemSet(u)
		for _, i := range set {
			if _, bad := trainItems[i]; bad {
				t.Fatalf("user %d recommended a train item", u)
			}
		}
	}
}
