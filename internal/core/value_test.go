package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ganc/internal/longtail"
	"ganc/internal/types"
)

func TestMarginalGainStaysInUnitInterval(t *testing.T) {
	// Property: with accuracy and coverage scores in [0,1] and θ in [0,1],
	// the marginal gain of any (user, item) pair is in [0,1].
	sp := testSplit(t)
	train := sp.Train
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(train, NewPopAccuracy(train, 5), prefs, NewDynCoverage(train.NumItems()), Config{N: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(u uint16, i uint16) bool {
		uid := types.UserID(int(u) % train.NumUsers())
		iid := types.ItemID(int(i) % train.NumItems())
		gain := g.marginalGain(uid, iid)
		return gain >= 0 && gain <= 1 && !math.IsNaN(gain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueOfMatchesSumOfSequentialGains(t *testing.T) {
	// For the fully sequential OSLG run with Dyn coverage, the objective
	// value computed by replaying the collection (ValueOf) must equal the sum
	// of the marginal gains collected during construction — both are the
	// submodular objective of Eq. III.2 evaluated at the same point. We
	// verify indirectly: the value of the produced collection must be within
	// numerical tolerance of re-running the greedy construction while
	// accumulating gains.
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.5)

	// First run: produce the collection.
	g1, err := New(train, NewPopAccuracy(train, 3), prefs, NewDynCoverage(train.NumItems()), Config{N: 3, SampleSize: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := g1.Recommend()
	value := g1.ValueOf(recs)

	// Second run: replay the same construction manually, accumulating gains
	// in the same (θ, user id) order the optimizer uses.
	dyn := NewDynCoverage(train.NumItems())
	arec := NewPopAccuracy(train, 3)
	total := 0.0
	users := make([]types.UserID, train.NumUsers())
	for u := range users {
		users[u] = types.UserID(u)
	}
	// Constant θ means OSLG's ordering is by ascending user id.
	for _, u := range users {
		exclude := train.UserItemSet(u)
		chosen := map[types.ItemID]struct{}{}
		for step := 0; step < 3; step++ {
			best := types.InvalidItem
			bestGain := math.Inf(-1)
			for idx := 0; idx < train.NumItems(); idx++ {
				item := types.ItemID(idx)
				if _, skip := exclude[item]; skip {
					continue
				}
				if _, used := chosen[item]; used {
					continue
				}
				gain := 0.5*arec.AccuracyScore(u, item) + 0.5*dyn.CoverageScore(u, item)
				if gain > bestGain || (gain == bestGain && item < best) {
					bestGain, best = gain, item
				}
			}
			if best == types.InvalidItem {
				break
			}
			total += bestGain
			chosen[best] = struct{}{}
			dyn.Observe(best)
		}
	}
	if math.Abs(total-value) > 1e-6 {
		t.Fatalf("ValueOf (%.6f) disagrees with the accumulated greedy gains (%.6f)", value, total)
	}
}

func TestValueOfIsOrderInvariantForStaticCoverage(t *testing.T) {
	// With Stat coverage the objective is modular, so the value of a
	// collection must not depend on any replay order. Compare ValueOf on the
	// same collection evaluated through two GANC instances that share
	// components (the second is a fresh instance to rule out hidden state).
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelTFIDF, train, nil, 0, 1)
	build := func() *GANC {
		g, err := New(train, NewPopAccuracy(train, 4), prefs, NewStatCoverage(train), Config{N: 4, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g := build()
	recs := g.Recommend()
	v1 := g.ValueOf(recs)
	v2 := build().ValueOf(recs)
	if math.Abs(v1-v2) > 1e-9 {
		t.Fatalf("static-coverage value changed between evaluations: %v vs %v", v1, v2)
	}
}

func TestOSLGSampleSizeOneStillCoversAllUsers(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	g, err := New(train, NewPopAccuracy(train, 3), prefs, NewDynCoverage(train.NumItems()), Config{N: 3, SampleSize: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	if len(recs) != train.NumUsers() {
		t.Fatalf("sample size 1 dropped users: %d vs %d", len(recs), train.NumUsers())
	}
	for u, set := range recs {
		if len(set) != 3 {
			t.Fatalf("user %d received %d items", u, len(set))
		}
	}
}

func TestOSLGWithRandomPreferencesIsReproducibleAcrossSeeds(t *testing.T) {
	// Different seeds may give different samples, but the run must never
	// panic and must always produce complete, valid collections.
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelRandom, train, nil, 0, 99)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		g, err := New(train, NewPopAccuracy(train, 2), prefs, NewDynCoverage(train.NumItems()),
			Config{N: 2, SampleSize: 10 + rng.Intn(30), Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Recommend()
		if len(recs) != train.NumUsers() {
			t.Fatalf("trial %d: incomplete collection", trial)
		}
	}
}
