package core

import (
	"math/bits"
	"sort"

	"ganc/internal/dataset"
	"ganc/internal/recommender"
	"ganc/internal/types"
)

// State export/import hooks for the persistence and streaming-ingestion
// layers: the Dyn coverage frequencies and the PopAccuracy top-N membership
// cache are the two pieces of GANC state worth carrying across a restart —
// the former because the paper's dynamic objective is defined over it, the
// latter because rebuilding it costs one popularity sweep per user.

// NewDynCoverageFrom builds a Dyn coverage recommender whose frequency state
// starts from freq (copied) instead of zero. The streaming-ingestion layer
// uses it to rebuild engines around an evolving frequency vector, and the
// persistence layer to restore a saved one; the catalog size is len(freq).
func NewDynCoverageFrom(freq []int) *DynCoverage {
	out := make([]int, len(freq))
	copy(out, freq)
	return &DynCoverage{freq: out}
}

// NewStatCoverageFromCounts builds the Stat coverage recommender from an
// explicit per-item rating-count vector instead of scanning a dataset, so the
// streaming-ingestion layer can rebuild it from its incrementally maintained
// counts in O(|I|).
func NewStatCoverageFromCounts(counts []int) *StatCoverage {
	scores := make([]float64, len(counts))
	for i, c := range counts {
		scores[i] = invSqrtFreq(c)
	}
	return &StatCoverage{scores: scores}
}

// NewPopAccuracyWith is NewPopAccuracy with an explicit popularity model,
// letting callers supply incrementally maintained counts (streaming
// ingestion) or counts restored from a snapshot instead of recounting train.
func NewPopAccuracyWith(pop *recommender.Pop, train *dataset.Dataset, topN int) *PopAccuracy {
	return &PopAccuracy{
		pop:      pop,
		train:    train,
		topN:     topN,
		cache:    make(map[types.UserID][]uint64),
		cacheCap: 200_000,
	}
}

// CacheSnapshot exports the current top-N membership cache as a deterministic
// per-user item list (users and items in ascending order), the form persisted
// in engine snapshots so a warm-started process serves its first requests
// without recomputing the popularity sweeps.
func (p *PopAccuracy) CacheSnapshot() map[types.UserID][]types.ItemID {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make(map[types.UserID][]types.ItemID, len(p.cache))
	for u, row := range p.cache {
		items := make([]types.ItemID, 0, p.topN)
		// Walking the bitset words low-to-high yields the items already in
		// ascending order, the form the snapshot format requires.
		for w, word := range row {
			for word != 0 {
				items = append(items, types.ItemID(w*64+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		out[u] = items
	}
	return out
}

// RestoreCache replaces the top-N membership cache with the exported form,
// respecting the configured cache bound (excess entries are dropped in
// ascending-user order so the restore is deterministic).
func (p *PopAccuracy) RestoreCache(snapshot map[types.UserID][]types.ItemID) {
	users := make([]types.UserID, 0, len(snapshot))
	for u := range snapshot {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool { return users[a] < users[b] })

	p.mu.Lock()
	defer p.mu.Unlock()
	words := (p.train.NumItems() + 63) / 64
	p.cache = make(map[types.UserID][]uint64, len(snapshot))
	for _, u := range users {
		if len(p.cache) >= p.cacheCap {
			break
		}
		rowWords := words
		for _, i := range snapshot[u] {
			if w := int(i)/64 + 1; w > rowWords {
				rowWords = w // snapshot from a larger catalog than train
			}
		}
		row := make([]uint64, rowWords)
		for _, i := range snapshot[u] {
			row[i>>6] |= 1 << (uint(i) & 63)
		}
		p.cache[u] = row
	}
}
