package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ganc/internal/dataset"
	"ganc/internal/longtail"
	"ganc/internal/recommender"
	"ganc/internal/synth"
	"ganc/internal/types"
)

// testSplit builds a small synthetic split shared by the GANC tests.
func testSplit(t *testing.T) *dataset.Split {
	t.Helper()
	cfg := synth.ML100K(0.15)
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d.SplitByUser(0.8, rand.New(rand.NewSource(21)))
}

// popArec builds the Pop accuracy recommender used in most tests (cheap and
// deterministic).
func popArec(train *dataset.Dataset, n int) AccuracyRecommender {
	return NewPopAccuracy(train, n)
}

func TestConfigValidate(t *testing.T) {
	bad := Config{N: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("N=0 did not error")
	}
	good := Config{N: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsMissingComponentsAndMismatchedPreferences(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.5)
	arec := popArec(train, 5)
	crec := NewStatCoverage(train)

	if _, err := New(nil, arec, prefs, crec, Config{N: 5}); err == nil {
		t.Fatal("nil train did not error")
	}
	if _, err := New(train, nil, prefs, crec, Config{N: 5}); err == nil {
		t.Fatal("nil accuracy recommender did not error")
	}
	if _, err := New(train, arec, nil, crec, Config{N: 5}); err == nil {
		t.Fatal("nil preferences did not error")
	}
	if _, err := New(train, arec, prefs, nil, Config{N: 5}); err == nil {
		t.Fatal("nil coverage recommender did not error")
	}
	short := longtail.Constant(3, 0.5)
	if _, err := New(train, arec, short, crec, Config{N: 5}); err == nil {
		t.Fatal("mismatched preference length did not error")
	}
	if _, err := New(train, arec, prefs, crec, Config{N: 0}); err == nil {
		t.Fatal("invalid config did not error")
	}
}

func TestNameFollowsPaperTemplate(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs, err := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(train, popArec(train, 5), prefs, NewDynCoverage(train.NumItems()), Config{N: 5, SampleSize: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	name := g.Name()
	if !strings.Contains(name, "GANC(") || !strings.Contains(name, "θ^G") || !strings.Contains(name, "Dyn") {
		t.Fatalf("unexpected name %q", name)
	}
}

func TestCoverageRecommenderScoresInUnitInterval(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	stat := NewStatCoverage(train)
	dyn := NewDynCoverage(train.NumItems())
	rnd := NewRandCoverage(1)
	for i := 0; i < train.NumItems(); i += 17 {
		item := types.ItemID(i)
		for _, c := range []CoverageRecommender{stat, dyn, rnd} {
			v := c.CoverageScore(0, item)
			if v < 0 || v > 1 {
				t.Fatalf("%s coverage score %v outside [0,1]", c.Name(), v)
			}
		}
	}
	// Out-of-range items score 0 for the precomputed recommenders.
	if stat.CoverageScore(0, types.ItemID(10_000_000)) != 0 {
		t.Fatal("Stat out-of-range item should score 0")
	}
	if dyn.CoverageScore(0, types.ItemID(10_000_000)) != 0 {
		t.Fatal("Dyn out-of-range item should score 0")
	}
}

func TestStatCoverageFavorsUnpopularItems(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	stat := NewStatCoverage(train)
	// Find the most and least popular items.
	pops := train.PopularityVector()
	mostPop, leastPop := 0, 0
	for i, p := range pops {
		if p > pops[mostPop] {
			mostPop = i
		}
		if p < pops[leastPop] {
			leastPop = i
		}
	}
	if stat.CoverageScore(0, types.ItemID(leastPop)) <= stat.CoverageScore(0, types.ItemID(mostPop)) {
		t.Fatal("Stat should score unpopular items above popular ones")
	}
}

func TestDynCoverageDiminishingReturns(t *testing.T) {
	dyn := NewDynCoverage(10)
	before := dyn.CoverageScore(0, 3)
	if before != 1 {
		t.Fatalf("fresh item should score 1, got %v", before)
	}
	dyn.Observe(3)
	mid := dyn.CoverageScore(0, 3)
	dyn.Observe(3)
	after := dyn.CoverageScore(0, 3)
	if !(before > mid && mid > after) {
		t.Fatalf("scores should strictly decrease with recommendations: %v, %v, %v", before, mid, after)
	}
	if math.Abs(mid-1/math.Sqrt(2)) > 1e-12 {
		t.Fatalf("score after one recommendation = %v, want 1/√2", mid)
	}
	// Frequencies round trip.
	f := dyn.Frequencies()
	if f[3] != 2 {
		t.Fatalf("frequency = %d, want 2", f[3])
	}
	f[3] = 7
	dyn.SetFrequencies(f)
	if dyn.Frequencies()[3] != 7 {
		t.Fatal("SetFrequencies did not apply")
	}
	// Observe on out-of-range item is a no-op, not a panic.
	dyn.Observe(types.ItemID(99))
	if dyn.NumItems() != 10 {
		t.Fatal("NumItems")
	}
}

func TestDynSetFrequenciesPanicsOnWrongLength(t *testing.T) {
	dyn := NewDynCoverage(5)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	dyn.SetFrequencies([]int{1, 2})
}

func TestPopAccuracyIndicatorScores(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	pa := NewPopAccuracy(train, 5)
	pop := recommender.NewPop(train)
	u := types.UserID(0)
	top := pop.Recommend(u, 5, train.UserItemSet(u))
	for _, i := range top {
		if pa.AccuracyScore(u, i) != 1 {
			t.Fatalf("item %d in popularity top-5 should score 1", i)
		}
	}
	// An item far down the popularity ranking scores 0.
	pops := train.PopularityVector()
	leastPop := 0
	for i, p := range pops {
		if p < pops[leastPop] {
			leastPop = i
		}
	}
	if _, inTop := train.UserItemSet(u)[types.ItemID(leastPop)]; !inTop {
		if pa.AccuracyScore(u, types.ItemID(leastPop)) != 0 {
			t.Fatal("least popular unseen item should score 0")
		}
	}
	if pa.Name() != "Pop" {
		t.Fatal("name")
	}
}

func TestScorerAccuracyClampsToUnitInterval(t *testing.T) {
	s := &ScorerAccuracy{Scorer: fixedScorer{vals: map[types.ItemID]float64{0: -2, 1: 0.4, 2: 3}}}
	if s.AccuracyScore(0, 0) != 0 || s.AccuracyScore(0, 2) != 1 {
		t.Fatal("clamping failed")
	}
	if s.AccuracyScore(0, 1) != 0.4 {
		t.Fatal("in-range score modified")
	}
	if s.Name() != "fixed" {
		t.Fatal("name passthrough")
	}
}

type fixedScorer struct{ vals map[types.ItemID]float64 }

func (f fixedScorer) Score(_ types.UserID, i types.ItemID) float64 { return f.vals[i] }
func (f fixedScorer) Name() string                                 { return "fixed" }

func TestRecommendProducesValidSetsForAllUsers(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelTFIDF, train, nil, 0, 1)
	n := 5
	for _, crec := range []CoverageRecommender{
		NewStatCoverage(train),
		NewRandCoverage(3),
		NewDynCoverage(train.NumItems()),
	} {
		g, err := New(train, popArec(train, n), prefs, crec, Config{N: n, SampleSize: 40, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Recommend()
		if len(recs) != train.NumUsers() {
			t.Fatalf("%s: got %d users, want %d", crec.Name(), len(recs), train.NumUsers())
		}
		for u := 0; u < train.NumUsers(); u++ {
			uid := types.UserID(u)
			set := recs[uid]
			if len(set) != n {
				t.Fatalf("%s: user %d got %d items, want %d", crec.Name(), u, len(set), n)
			}
			seen := map[types.ItemID]bool{}
			trainItems := train.UserItemSet(uid)
			for _, i := range set {
				if seen[i] {
					t.Fatalf("%s: user %d has duplicate item %d", crec.Name(), u, i)
				}
				seen[i] = true
				if _, bad := trainItems[i]; bad {
					t.Fatalf("%s: user %d recommended an already-rated item %d", crec.Name(), u, i)
				}
			}
		}
	}
}

func TestThetaZeroReproducesAccuracyRecommender(t *testing.T) {
	// With θ_u = 0 for everyone and any coverage recommender, GANC must rank
	// purely by accuracy score — i.e. reproduce the Pop top-N.
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0)
	n := 5
	g, err := New(train, popArec(train, n), prefs, NewStatCoverage(train), Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	pop := recommender.NewPop(train)
	for u := 0; u < 25 && u < train.NumUsers(); u++ {
		uid := types.UserID(u)
		want := pop.Recommend(uid, n, train.UserItemSet(uid))
		got := recs[uid]
		wantSet := map[types.ItemID]bool{}
		for _, i := range want {
			wantSet[i] = true
		}
		for _, i := range got {
			if !wantSet[i] {
				t.Fatalf("user %d: θ=0 recommendation %v differs from Pop top-N %v", u, got, want)
			}
		}
	}
}

func TestThetaOneIgnoresAccuracy(t *testing.T) {
	// With θ_u = 1, only coverage matters: under Stat coverage every user
	// must receive the same least-popular unseen items regardless of accuracy.
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 1)
	n := 5
	g, err := New(train, popArec(train, n), prefs, NewStatCoverage(train), Config{N: n})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Recommend()
	stat := NewStatCoverage(train)
	for u := 0; u < 10; u++ {
		uid := types.UserID(u)
		exclude := train.UserItemSet(uid)
		want := recommender.SelectTopN(train.NumItems(), n, exclude, func(i types.ItemID) float64 {
			return stat.CoverageScore(uid, i)
		})
		got := recs[uid]
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("user %d: θ=1 set %v differs from pure-coverage ranking %v", u, got, want)
			}
		}
	}
}

func TestDynCoverageIncreasesCatalogCoverage(t *testing.T) {
	// The core claim of the paper: GANC with Dyn coverage covers far more of
	// the catalog than the plain accuracy recommender, while θ controls how
	// much accuracy is traded away.
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	n := 5

	pop := recommender.NewPop(train)
	popRecs := recommender.RecommendAll(pop, train, n)

	g, err := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gancRecs := g.Recommend()

	popCoverage := len(popRecs.DistinctItems())
	gancCoverage := len(gancRecs.DistinctItems())
	if gancCoverage <= popCoverage {
		t.Fatalf("GANC(Dyn) coverage %d not above Pop coverage %d", gancCoverage, popCoverage)
	}
	if float64(gancCoverage) < 2*float64(popCoverage) {
		t.Logf("note: coverage improvement modest: %d vs %d", gancCoverage, popCoverage)
	}
}

func TestOSLGSampleSizeZeroMeansFullySequential(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.5)
	n := 3
	g1, _ := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: 0, Seed: 7})
	g2, _ := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: train.NumUsers() * 2, Seed: 7})
	r1 := g1.Recommend()
	r2 := g2.Recommend()
	// Both run the fully sequential algorithm over users sorted by (θ, id);
	// with identical constant θ the ordering and hence the output must match.
	for u := range r1 {
		for k := range r1[u] {
			if r1[u][k] != r2[u][k] {
				t.Fatalf("fully-sequential runs disagree for user %d: %v vs %v", u, r1[u], r2[u])
			}
		}
	}
}

func TestOSLGDeterministicForFixedSeed(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelTFIDF, train, nil, 0, 1)
	n := 5
	build := func() types.Recommendations {
		g, err := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: 30, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return g.Recommend()
	}
	a, b := build(), build()
	for u := range a {
		for k := range a[u] {
			if a[u][k] != b[u][k] {
				t.Fatalf("same seed produced different OSLG output for user %d", u)
			}
		}
	}
}

func TestOSLGSamplingApproximatesFullSequentialValue(t *testing.T) {
	// The sampled algorithm should achieve an objective value close to the
	// fully sequential one (it is a heuristic, but on a small dataset the
	// degradation must be bounded).
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	n := 5
	full, _ := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: 0, Seed: 3})
	fullRecs := full.Recommend()
	fullValue := full.ValueOf(fullRecs)

	sampled, _ := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: train.NumUsers() / 4, Seed: 3})
	sampledRecs := sampled.Recommend()
	sampledValue := sampled.ValueOf(sampledRecs)

	if sampledValue < 0.8*fullValue {
		t.Fatalf("OSLG sampled value %.2f dropped below 80%% of the fully sequential value %.2f", sampledValue, fullValue)
	}
}

func TestLargerSampleSizeDoesNotReduceCoverage(t *testing.T) {
	// Figure 3's qualitative trend: increasing S increases (or at least does
	// not materially decrease) coverage.
	sp := testSplit(t)
	train := sp.Train
	prefs, _ := longtail.Estimate(longtail.ModelGeneralized, train, nil, 0, 1)
	n := 5
	coverageAt := func(s int) int {
		g, err := New(train, popArec(train, n), prefs, NewDynCoverage(train.NumItems()), Config{N: n, SampleSize: s, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		return len(g.Recommend().DistinctItems())
	}
	small := coverageAt(10)
	large := coverageAt(train.NumUsers() / 2)
	if large < small-2 {
		t.Fatalf("coverage at large sample (%d) fell below coverage at small sample (%d)", large, small)
	}
}

func TestValueOfEmptyRecommendations(t *testing.T) {
	sp := testSplit(t)
	train := sp.Train
	prefs := longtail.Constant(train.NumUsers(), 0.5)
	g, _ := New(train, popArec(train, 5), prefs, NewStatCoverage(train), Config{N: 5})
	if got := g.ValueOf(types.Recommendations{}); got != 0 {
		t.Fatalf("empty collection value = %v, want 0", got)
	}
}

func TestRandCoverageName(t *testing.T) {
	if NewRandCoverage(1).Name() != "Rand" || NewStatCoverage(dataset.FromRatings("x", []types.Rating{{User: 0, Item: 0, Value: 1}})).Name() != "Stat" || NewDynCoverage(1).Name() != "Dyn" {
		t.Fatal("coverage recommender names wrong")
	}
}
