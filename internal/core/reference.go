package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"sync"

	"ganc/internal/types"
)

// This file preserves the pre-refactor optimizer — per-pick full catalog
// rescans over map[ItemID]struct{} exclusion sets, one Score call per
// (user, item, pick) — verbatim. It is NOT used by any production path: the
// equivalence property tests pin the buffered/CELF pipeline against it, and
// cmd/bench + BenchmarkRecommendAll track the speedup it was replaced for.

// ReferenceRecommendAll runs the pre-refactor batch optimizer: the same
// algorithms as RecommendAll (independent greedy sweeps for stateless
// coverage, OSLG for Dyn) driven by the per-pick rescan sweep. For Stat
// coverage the output is bit-identical to the new path; for Dyn the objective
// value is equal (the per-user subproblems have the same optima); for Rand
// the outputs differ only in rng consumption order.
func (g *GANC) ReferenceRecommendAll() types.Recommendations {
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.referenceOSLG(dyn)
	}
	recs := make(types.Recommendations, g.train.NumUsers())
	var mu sync.Mutex
	g.referenceForEach(g.train.NumUsers(), func(u int) {
		uid := types.UserID(u)
		set, _ := g.referenceSweep(context.Background(), uid, g.train.UserItemSet(uid), g.cfg.N, true)
		mu.Lock()
		recs[uid] = set
		mu.Unlock()
	})
	return recs
}

// ReferenceRecommendUser is the pre-refactor online path: a per-pick rescan
// sweep against a fresh Dyn snapshot (or the live stateless scores).
func (g *GANC) ReferenceRecommendUser(ctx context.Context, u types.UserID, n int) (types.TopNSet, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n <= 0 {
		n = g.cfg.N
	}
	exclude := g.train.UserItemSet(u)
	if dyn, ok := g.crec.(*DynCoverage); ok {
		return g.referenceFrozen(ctx, u, exclude, dyn.Frequencies(), n)
	}
	return g.referenceSweep(ctx, u, exclude, n, false)
}

// referenceSweep is the pre-refactor greedy selection loop: every pick
// rescans the full catalog through the exclusion and chosen maps.
func (g *GANC) referenceSweep(ctx context.Context, u types.UserID, exclude map[types.ItemID]struct{}, n int, observe bool) (types.TopNSet, error) {
	set := make(types.TopNSet, 0, n)
	chosen := make(map[types.ItemID]struct{}, n)
	for step := 0; step < n; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := types.InvalidItem
		bestGain := math.Inf(-1)
		for idx := 0; idx < g.numItems; idx++ {
			item := types.ItemID(idx)
			if _, skip := exclude[item]; skip {
				continue
			}
			if _, used := chosen[item]; used {
				continue
			}
			gain := g.marginalGain(u, item)
			if gain > bestGain || (gain == bestGain && item < best) {
				bestGain, best = gain, item
			}
		}
		if best == types.InvalidItem {
			break
		}
		set = append(set, best)
		chosen[best] = struct{}{}
		if observe {
			g.crec.Observe(best)
		}
	}
	return set, nil
}

// referenceFrozen is the pre-refactor frozen-frequency sweep.
func (g *GANC) referenceFrozen(ctx context.Context, u types.UserID, exclude map[types.ItemID]struct{}, freq []int, n int) (types.TopNSet, error) {
	set := make(types.TopNSet, 0, n)
	chosen := make(map[types.ItemID]struct{}, n)
	theta := g.prefs.Get(u)
	localBump := make(map[types.ItemID]int, n)
	for step := 0; step < n; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		best := types.InvalidItem
		bestGain := math.Inf(-1)
		for idx := 0; idx < g.numItems; idx++ {
			item := types.ItemID(idx)
			if _, skip := exclude[item]; skip {
				continue
			}
			if _, used := chosen[item]; used {
				continue
			}
			base := 0
			if idx < len(freq) {
				base = freq[idx]
			}
			cov := 1 / math.Sqrt(float64(base+localBump[item])+1)
			gain := (1-theta)*g.arec.AccuracyScore(u, item) + theta*cov
			if gain > bestGain || (gain == bestGain && item < best) {
				bestGain, best = gain, item
			}
		}
		if best == types.InvalidItem {
			break
		}
		set = append(set, best)
		chosen[best] = struct{}{}
		localBump[best]++
	}
	return set, nil
}

// referenceOSLG is the pre-refactor Algorithm 1 driver. It shares the KDE
// sampling code with the new path, so both consume the seeded rng
// identically and sample the same users.
func (g *GANC) referenceOSLG(dyn *DynCoverage) types.Recommendations {
	numUsers := g.train.NumUsers()
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	recs := make(types.Recommendations, numUsers)

	all := make([]userTheta, numUsers)
	for u := 0; u < numUsers; u++ {
		all[u] = userTheta{user: types.UserID(u), theta: g.prefs.Get(types.UserID(u))}
	}

	sampleSize := g.cfg.SampleSize
	fullSequential := sampleSize <= 0 || sampleSize >= numUsers

	var sample []userTheta
	if fullSequential {
		sample = all
	} else {
		sample = g.sampleUsersByKDE(all, sampleSize, rng)
	}
	sort.Slice(sample, func(a, b int) bool {
		if sample[a].theta != sample[b].theta {
			return sample[a].theta < sample[b].theta
		}
		return sample[a].user < sample[b].user
	})

	snapshots := make([]freqSnapshot, 0, len(sample))
	inSample := make(map[types.UserID]struct{}, len(sample))
	for _, ut := range sample {
		inSample[ut.user] = struct{}{}
		set, _ := g.referenceSweep(context.Background(), ut.user, g.train.UserItemSet(ut.user), g.cfg.N, true)
		recs[ut.user] = set
		snapshots = append(snapshots, freqSnapshot{theta: ut.theta, freq: dyn.Frequencies()})
	}

	if fullSequential {
		return recs
	}

	var remaining []userTheta
	for _, ut := range all {
		if _, done := inSample[ut.user]; done {
			continue
		}
		remaining = append(remaining, ut)
	}
	var mu sync.Mutex
	g.referenceForEach(len(remaining), func(k int) {
		ut := remaining[k]
		snap := nearestSnapshotFreq(snapshots, ut.theta)
		set, _ := g.referenceFrozen(context.Background(), ut.user, g.train.UserItemSet(ut.user), snap, g.cfg.N)
		mu.Lock()
		recs[ut.user] = set
		mu.Unlock()
	})
	for _, ut := range remaining {
		for _, i := range recs[ut.user] {
			dyn.Observe(i)
		}
	}
	return recs
}

// referenceForEach is the pre-refactor per-task worker pool (one channel item
// per user rather than contiguous ranges).
func (g *GANC) referenceForEach(count int, fn func(int)) {
	workers := g.cfg.Workers
	if workers <= 1 || count <= 1 {
		for k := 0; k < count; k++ {
			fn(k)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, count)
	for k := 0; k < count; k++ {
		next <- k
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				fn(k)
			}
		}()
	}
	wg.Wait()
}
