package core

// Property tests for sweepPopDyn — the sparse Pop+Dyn frozen-sweep fast path
// (DESIGN.md §12). Across random frozen snapshots, every precision tier and
// every internal pass-1 variant — the cached rank walk (identity snapshots),
// the counting pass (copied snapshots), and the off-table heap fallback
// (frequencies beyond the score table) — must reproduce the general modular
// sweep bit-for-bit: same items, same order.

import (
	"context"
	"math/rand"
	"testing"

	"ganc/internal/longtail"
	"ganc/internal/types"
)

var popDynTiers = []types.ScoringPrecision{
	types.PrecisionF64, types.PrecisionF32, types.PrecisionInt8,
}

// generalPopDynSweep runs the general modular pipeline (what sweepUser does
// for non-Pop accuracy recommenders) against the same frozen snapshot,
// bypassing the sweepPopDyn dispatch.
func generalPopDynSweep(t *testing.T, g *GANC, u types.UserID, n int, freq []int) types.TopNSet {
	t.Helper()
	sc := g.getScratch()
	defer g.putScratch(sc)
	sc.cand = g.train.AppendCandidates(u, sc.cand[:0])
	if cap(sc.packed) < len(sc.cand) {
		sc.packed = make([]float64, len(sc.cand))
	}
	set, err := g.sweepModular(context.Background(), u, n, sc.cand, freq, nil, false, sc)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// fastPopDynSweep goes through sweepUser, which dispatches Pop+frozen-Dyn
// sweeps to sweepPopDyn.
func fastPopDynSweep(t *testing.T, g *GANC, u types.UserID, n int, freq []int) types.TopNSet {
	t.Helper()
	sc := g.getScratch()
	defer g.putScratch(sc)
	set, err := g.sweepUser(context.Background(), u, n, freq, false, sc)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func assertSameSet(t *testing.T, label string, u types.UserID, got, want types.TopNSet) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: user %d set sizes differ: %v vs %v", label, u, got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("%s: user %d: fast path %v != general sweep %v", label, u, got, want)
		}
	}
}

func TestSweepPopDynMatchesGeneralSweep(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		sp := equivSplit(t, trial)
		train := sp.Train
		prefs := equivPrefs(t, train, trial)
		rng := rand.New(rand.NewSource(900 + trial))
		// Odd trials draw frequencies beyond the inverse-sqrt score table so
		// the off-table heap fallback is the pass-1 variant under test.
		maxFreq := 40
		if trial%2 == 1 {
			maxFreq = 3 * len(invSqrtTab32)
		}
		for _, prec := range popDynTiers {
			dyn := NewDynCoverage(train.NumItems())
			g, err := New(train, NewPopAccuracy(train, 5), prefs, dyn,
				Config{N: 5, Seed: trial, Precision: prec})
			if err != nil {
				t.Fatal(err)
			}
			freqState := make([]int, train.NumItems())
			for i := range freqState {
				freqState[i] = rng.Intn(maxFreq)
			}
			dyn.SetFrequencies(freqState)

			// The shared frozen snapshot hits the cached-rank walk (reduced
			// tiers); a per-θ style copy of the same values keeps its identity
			// distinct and hits the counting pass instead.
			frozen := dyn.FrozenFrequencies()
			copied := append([]int(nil), frozen...)

			label := "popdyn/" + prec.String()
			users := train.NumUsers()
			for k := 0; k < 30; k++ {
				u := types.UserID(rng.Intn(users))
				want := generalPopDynSweep(t, g, u, 5, frozen)
				assertSameSet(t, label+"/frozen", u, fastPopDynSweep(t, g, u, 5, frozen), want)
				assertSameSet(t, label+"/copied", u, fastPopDynSweep(t, g, u, 5, copied), want)
			}

			// Mutating the live state invalidates the snapshot and the cached
			// rank; the rebuilt snapshot must be served consistently too.
			for i := 0; i < 5; i++ {
				dyn.Observe(types.ItemID(rng.Intn(train.NumItems())))
			}
			refreshed := dyn.FrozenFrequencies()
			for k := 0; k < 10; k++ {
				u := types.UserID(rng.Intn(users))
				want := generalPopDynSweep(t, g, u, 5, refreshed)
				assertSameSet(t, label+"/refreshed", u, fastPopDynSweep(t, g, u, 5, refreshed), want)
			}
		}
	}
}

// TestSweepPopDynThetaExtremes pins the scaling boundaries: θ = 0 collapses
// every coverage score to one tie class (the rank walk defers to the counting
// pass there), and θ = 1 zeroes the accuracy boost so boosted items behave
// like plain candidates.
func TestSweepPopDynThetaExtremes(t *testing.T) {
	sp := equivSplit(t, 1)
	train := sp.Train
	rng := rand.New(rand.NewSource(41))
	for _, theta := range []float64{0, 1} {
		prefs := longtail.Constant(train.NumUsers(), theta)
		for _, prec := range popDynTiers {
			dyn := NewDynCoverage(train.NumItems())
			g, err := New(train, NewPopAccuracy(train, 5), prefs, dyn,
				Config{N: 5, Seed: 1, Precision: prec})
			if err != nil {
				t.Fatal(err)
			}
			freqState := make([]int, train.NumItems())
			for i := range freqState {
				freqState[i] = rng.Intn(30)
			}
			dyn.SetFrequencies(freqState)
			frozen := dyn.FrozenFrequencies()
			label := "popdyn-theta/" + prec.String()
			for k := 0; k < 20; k++ {
				u := types.UserID(rng.Intn(train.NumUsers()))
				want := generalPopDynSweep(t, g, u, 5, frozen)
				assertSameSet(t, label, u, fastPopDynSweep(t, g, u, 5, frozen), want)
			}
		}
	}
}
