package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Add(-1)         // dropped
	c.Add(math.NaN()) // dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after bad adds = %v, want 3.5", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", L("route", "/x"), L("code", "200"))
	b := r.Counter("dup_total", "h", L("code", "200"), L("route", "/x"))
	if a != b {
		t.Fatal("same name+labels (different order) should return the same counter")
	}
	other := r.Counter("dup_total", "h", L("route", "/y"))
	if a == other {
		t.Fatal("different labels must be a different series")
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "h").Inc()
	r.Gauge("clash", "h").Set(2)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("kind collision produced invalid text: %v\n", err)
	}
	if sc.Types["clash"] != "counter" {
		t.Fatalf("clash type = %q, want counter", sc.Types["clash"])
	}
	if sc.Types["clash_gauge"] != "gauge" {
		t.Fatalf("collision rename missing: types = %v", sc.Types)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.9, 5, math.NaN()} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5 (NaN dropped)", count)
	}
	// le semantics: 0.1 falls in the 0.1 bucket.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if math.Abs(sum-6.35) > 1e-9 {
		t.Fatalf("sum = %v, want 6.35", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	if !math.IsNaN(h.Quantile(0.99)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	for i := 0; i < 99; i++ {
		h.Observe(0.005)
	}
	h.Observe(0.5)
	if got := h.Quantile(0.5); got != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", got)
	}
	if got := h.Quantile(1); got != 1.0 {
		t.Fatalf("p100 = %v, want 1 (upper bound of bucket holding 0.5)", got)
	}
	h.Observe(100)
	if got := h.Quantile(1); !math.IsInf(got, +1) {
		t.Fatalf("p100 with overflow sample = %v, want +Inf", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(seed + float64(i)*1e-6)
			}
		}(float64(w) * 0.001)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestRenderParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "requests", L("route", "/recommend"), L("code", "200")).Add(42)
	r.Gauge("rt_version", "engine version").Set(3)
	r.GaugeFunc("rt_func_gauge", "live value", func() float64 { return 1.25 })
	r.Counter("rt_escapes_total", `tricky "help" with \ and newline`, L("v", "a\"b\\c\nd")).Inc()
	h := r.Histogram("rt_latency_seconds", "latency", []float64{0.1, 1}, L("route", "/recommend"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("rendered text failed to parse: %v\nbody:\n%s", err, buf.String())
	}
	if v, ok := sc.Value("rt_requests_total", L("route", "/recommend"), L("code", "200")); !ok || v != 42 {
		t.Fatalf("rt_requests_total = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_version"); !ok || v != 3 {
		t.Fatalf("rt_version = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_func_gauge"); !ok || v != 1.25 {
		t.Fatalf("rt_func_gauge = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_escapes_total", L("v", "a\"b\\c\nd")); !ok || v != 1 {
		t.Fatalf("escaped label round-trip failed: %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_latency_seconds_bucket", L("route", "/recommend"), L("le", "0.1")); !ok || v != 1 {
		t.Fatalf("bucket le=0.1 = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_latency_seconds_bucket", L("route", "/recommend"), L("le", "+Inf")); !ok || v != 3 {
		t.Fatalf("bucket le=+Inf = %v, %v", v, ok)
	}
	if v, ok := sc.Value("rt_latency_seconds_count", L("route", "/recommend")); !ok || v != 3 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	if sc.Types["rt_latency_seconds"] != "histogram" {
		t.Fatalf("types = %v", sc.Types)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "h").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	sc, err := ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("handler_total"); !ok || v != 1 {
		t.Fatalf("handler_total = %v, %v", v, ok)
	}

	post, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

func TestParseTextRejects(t *testing.T) {
	bad := []string{
		"1bad_name 5\n",
		"name{l=\"unterminated} 5\n",
		"name{l=\"bad\\x\"} 5\n",
		"name{=\"v\"} 5\n",
		"name notafloat\n",
		"# TYPE dup counter\ndup 1\n# TYPE dup gauge\n",
		"# TYPE x flotsam\n",
	}
	for _, body := range bad {
		if _, err := ParseText(strings.NewReader(body)); err == nil {
			t.Errorf("ParseText accepted malformed body %q", body)
		}
	}
}

func TestHTTPMiddleware(t *testing.T) {
	r := NewRegistry()
	var logBuf bytes.Buffer
	logger := NewRequestLogger(&logBuf, LevelInfo)
	shard := 2
	hm := NewHTTPMetrics(r, logger, func(*http.Request) (*int, int, string) {
		return &shard, 7, "client-a"
	}, nil)
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	srv := httptest.NewServer(hm.Wrap(mux))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/recommend")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/no/such/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("ganc_http_requests_total", L("route", "/recommend"), L("code", "200")); !ok || v != 3 {
		t.Fatalf("recommend 200s = %v, %v", v, ok)
	}
	if v, ok := sc.Value("ganc_http_requests_total", L("route", "/ingest"), L("code", "400")); !ok || v != 1 {
		t.Fatalf("ingest 400s = %v, %v", v, ok)
	}
	if v, ok := sc.Value("ganc_http_requests_total", L("route", "other"), L("code", "404")); !ok || v != 1 {
		t.Fatalf("unknown route should collapse to other: %v, %v", v, ok)
	}
	if v, ok := sc.Value("ganc_http_request_duration_seconds_count", L("route", "/recommend")); !ok || v != 3 {
		t.Fatalf("latency count = %v, %v", v, ok)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("request log lines = %d, want 5:\n%s", len(lines), logBuf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if entry["route"] != "/recommend" || entry["level"] != "info" || entry["status"] != float64(200) {
		t.Fatalf("unexpected log entry: %v", entry)
	}
	if entry["shard"] != float64(2) || entry["version"] != float64(7) || entry["client"] != "client-a" {
		t.Fatalf("meta fields missing: %v", entry)
	}
	var warn map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &warn); err != nil {
		t.Fatal(err)
	}
	if warn["level"] != "warn" || warn["status"] != float64(400) {
		t.Fatalf("4xx should log at warn: %v", warn)
	}
}

func TestRequestLoggerThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewRequestLogger(&buf, LevelWarn)
	l.Log(LevelInfo, RequestEntry{Route: "/health"})
	if buf.Len() != 0 {
		t.Fatalf("info line should be suppressed below warn: %q", buf.String())
	}
	l.Log(LevelError, RequestEntry{Route: "/recommend", Status: 500})
	if !strings.Contains(buf.String(), `"level":"error"`) {
		t.Fatalf("error line missing: %q", buf.String())
	}
	var nilLogger *RequestLogger
	nilLogger.Log(LevelError, RequestEntry{}) // must not panic
}
