package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Level grades log entries. Request entries derive their level from the
// response status: 5xx → LevelError, 4xx → LevelWarn, everything else →
// LevelInfo.
type Level int8

// The log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's JSON spelling.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// RequestEntry is one structured request-log record, serialized as a single
// JSON line. Field order is fixed by the struct so logs diff cleanly.
type RequestEntry struct {
	// Time is the completion time in RFC 3339 with milliseconds.
	Time string `json:"ts"`
	// Level is derived from Status (info / warn / error).
	Level string `json:"level"`
	// Method and Route identify the request (Route is the normalized route
	// pattern, not the raw URL, so cardinality stays bounded).
	Method string `json:"method"`
	Route  string `json:"route"`
	// Status is the HTTP status written.
	Status int `json:"status"`
	// DurationMs is the handler wall time in milliseconds.
	DurationMs float64 `json:"duration_ms"`
	// Shard is the serving shard (omitted on unsharded servers).
	Shard *int `json:"shard,omitempty"`
	// Version is the serving-engine generation that answered (omitted when
	// unknown, e.g. on a router).
	Version int `json:"version,omitempty"`
	// Client is the admission key of the caller (header or remote host),
	// when known.
	Client string `json:"client,omitempty"`
}

// RequestLogger writes leveled JSON-line request records. Safe for
// concurrent use; each entry is one Write call so lines never interleave.
// The zero value discards everything; construct with NewRequestLogger.
type RequestLogger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
}

// NewRequestLogger logs JSON lines at or above min to w. A nil writer
// returns a logger that discards everything (callers can pass it around
// unconditionally).
func NewRequestLogger(w io.Writer, min Level) *RequestLogger {
	return &RequestLogger{w: w, min: min}
}

// Log writes one entry if its level clears the threshold. Encoding errors
// are swallowed: losing a log line must never fail a request.
func (l *RequestLogger) Log(level Level, e RequestEntry) {
	if l == nil || l.w == nil || level < l.min {
		return
	}
	e.Level = level.String()
	if e.Time == "" {
		e.Time = time.Now().UTC().Format("2006-01-02T15:04:05.000Z07:00")
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// levelForStatus derives the request-log level from an HTTP status.
func levelForStatus(status int) Level {
	switch {
	case status >= 500:
		return LevelError
	case status >= 400:
		return LevelWarn
	default:
		return LevelInfo
	}
}
