package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	// Name is the full sample name including any _bucket/_sum/_count suffix.
	Name string
	// Labels holds the sample's label pairs in appearance order (including
	// le for histogram buckets).
	Labels []Label
	// Value is the parsed sample value (may be NaN or ±Inf).
	Value float64
}

// Scrape is the parsed form of one /metrics body.
type Scrape struct {
	// Types maps family name → declared TYPE.
	Types map[string]string
	// Samples holds every sample line in order.
	Samples []Sample
}

// Value returns the value of the first sample matching name and every given
// label pair, and whether one was found.
func (s *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, l := range sm.Labels {
				if l.Name == want.Name && l.Value == want.Value {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			return sm.Value, true
		}
	}
	return 0, false
}

// SumByPrefix sums the values of every sample whose name matches exactly and
// whose labels include the given pairs — the helper for asserting "requests
// across all status codes".
func (s *Scrape) SumByPrefix(name string, labels ...Label) float64 {
	var sum float64
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			found := false
			for _, l := range sm.Labels {
				if l.Name == want.Name && l.Value == want.Value {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			sum += sm.Value
		}
	}
	return sum
}

// ParseText parses a Prometheus text-format exposition, validating it line
// by line: well-formed comments, sample names, label syntax, and float
// values. It is the test-side counterpart of Registry.WriteText — the CI e2e
// job scrapes /metrics mid-scenario and feeds the body through this parser,
// so an encoder regression (bad escaping, malformed floats, duplicate TYPE
// lines) fails loudly rather than silently corrupting a real scrape.
func ParseText(r io.Reader) (*Scrape, error) {
	sc := &Scrape{Types: make(map[string]string)}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 8<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(sc, line); err != nil {
				return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
			}
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		sc.Samples = append(sc.Samples, sample)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return sc, nil
}

// parseComment validates a # HELP / # TYPE line (other comments are legal
// and ignored).
func parseComment(sc *Scrape, line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %q", typ, name)
		}
		if prev, ok := sc.Types[name]; ok && prev != typ {
			return fmt.Errorf("family %q declared twice with types %q and %q", name, prev, typ)
		}
		sc.Types[name] = typ
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:nameEnd]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		close := strings.LastIndexByte(rest, '}')
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("sample %q has a malformed value section", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(body string) ([]Label, error) {
	var labels []Label
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no =", body[i:])
		}
		name := strings.TrimSpace(body[i : i+eq])
		if !validName(name) {
			return nil, fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", name)
		}
		i++
		var sb strings.Builder
		closed := false
		for i < len(body) {
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("label %q value ends mid-escape", name)
				}
				switch body[i+1] {
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				case 'n':
					sb.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %q value has invalid escape \\%c", name, body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			sb.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("label %q value is unterminated", name)
		}
		labels = append(labels, Label{Name: name, Value: sb.String()})
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// parseValue parses a sample value, accepting the special spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return v, nil
}

// validName reports whether s is a valid metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
