package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP and # TYPE lines followed by the
// family's samples, histograms expanded into cumulative _bucket/_sum/_count
// series. Output is deterministic: families in registration order, series
// sorted by label signature.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		f.mu.Lock()
		series := make([]*series, len(f.series))
		copy(series, f.series)
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range series {
			if f.kind == kindHistogram && s.hist != nil {
				writeHistogram(bw, f.name, s)
				continue
			}
			writeSample(bw, f.name, "", s.labels, "", s.value())
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram series into its exposition lines.
func writeHistogram(bw *bufio.Writer, name string, s *series) {
	cum, count, sum := s.hist.snapshot()
	for i, bound := range s.hist.bounds {
		writeSample(bw, name, "_bucket", s.labels, formatFloat(bound), float64(cum[i]))
	}
	writeSample(bw, name, "_bucket", s.labels, "+Inf", float64(cum[len(cum)-1]))
	writeSample(bw, name, "_sum", s.labels, "", sum)
	writeSample(bw, name, "_count", s.labels, "", float64(count))
}

// writeSample emits one sample line: name[suffix]{labels[,le]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le string, v float64) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

// formatFloat renders a float the way the exposition format expects: NaN and
// the infinities by name, everything else in shortest round-trip form.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are legal
// there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Handler returns the GET /metrics endpoint over this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
