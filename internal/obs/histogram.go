package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds: half a millisecond
// through ten seconds, the span from a warm cache hit to a pathological
// stall. They follow the 1-2.5-5 decade pattern Prometheus defaults to.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histStripes is the number of independently updated shards per histogram.
// Power of two so stripe selection is a mask. Eight stripes keeps the worst
// case — every worker observing into one route's histogram — off a single
// cache line without bloating the scrape-time merge.
const histStripes = 8

// histStripe is one shard of a histogram's state. The pad keeps adjacent
// stripes on separate cache lines so two cores recording concurrently do not
// false-share.
type histStripe struct {
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
	_      [32]byte //nolint:unused // cache-line padding between stripes
}

// Histogram is a fixed-bucket histogram whose hot-path Observe is a few
// atomic adds on a lock-striped shard: no mutex, no allocation. Bucket
// bounds are fixed at construction; scrapes merge the stripes.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing, +Inf implicit
	stripes [histStripes]histStripe
}

// newHistogram builds a histogram over the given upper bounds (nil selects
// DefBuckets). Bounds are sorted, deduplicated, and scrubbed of NaN; an
// explicit trailing +Inf is dropped (the encoder always emits it).
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	cleaned := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsNaN(b) && !math.IsInf(b, +1) {
			cleaned = append(cleaned, b)
		}
	}
	sort.Float64s(cleaned)
	dedup := cleaned[:0]
	for i, b := range cleaned {
		if i == 0 || b != cleaned[i-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{bounds: dedup}
	for i := range h.stripes {
		h.stripes[i].counts = make([]atomic.Uint64, len(dedup)+1) // last = +Inf overflow
	}
	return h
}

// Observe records one sample. NaN observations are dropped (they would
// poison _sum forever). The stripe is picked by hashing the sample's bits —
// cheap, allocation-free, and well spread because real latencies differ in
// their low bits — so concurrent observers land on different cache lines.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	bits := math.Float64bits(v)
	st := &h.stripes[splitmix64(bits)&(histStripes-1)]
	// Binary search the bucket: bounds are few (≤ ~20), but branch-free
	// linear scans measure no better and this stays O(log n) for custom
	// bucket sets.
	idx := sort.SearchFloat64s(h.bounds, v)
	st.counts[idx].Add(1)
	st.count.Add(1)
	atomicAddFloat(&st.sum, v)
}

// snapshot merges the stripes into cumulative bucket counts, the total
// count, and the sum — the exposition-format shape.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.bounds)+1)
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range cum {
			cum[b] += st.counts[b].Load()
		}
		count += st.count.Load()
		sum += math.Float64frombits(st.sum.Load())
	}
	for b := 1; b < len(cum); b++ {
		cum[b] += cum[b-1]
	}
	return cum, count, sum
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1)
// from the bucket counts: the upper bound of the bucket containing the
// nearest-rank sample. Returns NaN when the histogram is empty. Coarse by
// construction — it is for in-process assertions ("p99 below the top
// bucket"), not for dashboards, which should compute quantiles server-side.
func (h *Histogram) Quantile(q float64) float64 {
	cum, count, _ := h.snapshot()
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(count)))
	if rank == 0 {
		rank = 1
	}
	for i, c := range cum {
		if c >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(+1)
		}
	}
	return math.Inf(+1)
}

// splitmix64 finalizes a 64-bit value into a well-mixed hash (the same
// finalizer internal/cluster uses on its ring hashes).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
