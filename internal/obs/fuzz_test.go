package obs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRenderText throws hostile metric names, label pairs, and values
// (including NaN and the infinities) at the registry and asserts the encoder
// neither panics nor emits text the strict parser rejects. This pins the
// sanitize-don't-panic contract: arbitrary input may be coerced, but the
// exposition is always well-formed.
func FuzzRenderText(f *testing.F) {
	f.Add("ganc_requests_total", "route", "/recommend", 1.5)
	f.Add("", "", "", 0.0)
	f.Add("1starts_with_digit", "le", "0.5", -3.25)
	f.Add("weird name!", "läbel", "va\"lu\\e\n", 1e300)
	f.Add("inf_total", "l", "v", 1.0)
	f.Add("dup", "dup", "dup", 2.0)
	f.Fuzz(func(t *testing.T, name, labelName, labelValue string, value float64) {
		r := NewRegistry()
		c := r.Counter(name, "fuzzed counter", L(labelName, labelValue))
		c.Add(value)
		g := r.Gauge(name+"_g", "fuzzed gauge", L(labelName, labelValue))
		g.Set(value)
		h := r.Histogram(name+"_h", "fuzzed histogram", []float64{value, 0.5}, L(labelName, labelValue))
		h.Observe(value)
		h.Observe(0.1)
		r.GaugeFunc(name+"_fn", "fuzzed func", func() float64 { return value })

		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if _, err := ParseText(&buf); err != nil {
			t.Fatalf("encoder emitted unparseable text: %v\nbody:\n%s", err, buf.String())
		}
	})
}

// FuzzParseText asserts the parser itself never panics on arbitrary bytes —
// it must either return a Scrape or an error, whatever the input.
func FuzzParseText(f *testing.F) {
	f.Add("# TYPE a counter\na 1\n")
	f.Add("a{l=\"v\"} NaN\n")
	f.Add("a{l=\"\\n\\\\\\\"\"} +Inf 123\n")
	f.Add("# HELP\n#\nname 1e9\n")
	f.Fuzz(func(t *testing.T, body string) {
		_, _ = ParseText(strings.NewReader(body))
	})
}
