// Package obs is the observability layer: a dependency-free metrics registry
// (counters, gauges, fixed-bucket latency histograms) rendered in the
// Prometheus text exposition format, plus leveled structured request logging
// and an HTTP instrumentation middleware. Everything in here is hot-path
// safe: recording a sample is a handful of atomic operations, histograms
// stripe their buckets across shards so concurrent observers do not contend
// on one cache line, and the registry mutex is touched only when a new
// series is created or /metrics is scraped.
//
// The package deliberately implements only the slice of the Prometheus data
// model the serving tier needs — counter, gauge, histogram, flat label sets —
// so the server keeps its zero-dependency footprint. ParseText (parse.go) is
// the matching validator: tests and the CI e2e job scrape /metrics and feed
// the body through it to prove the encoder emits well-formed text.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind enumerates the supported Prometheus metric types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain instances from Registry.Counter.
type Counter struct {
	v atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative or NaN deltas are dropped (a
// counter must never go backwards, and the encoder must never see garbage).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	atomicAddFloat(&c.v, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.v.Load()) }

// Gauge is a metric that can go up and down. Obtain instances from
// Registry.Gauge.
type Gauge struct {
	v atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) { atomicAddFloat(&g.v, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// atomicAddFloat adds delta to a float64 stored as uint64 bits with a CAS
// loop.
func atomicAddFloat(a *atomic.Uint64, delta float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// series is one rendered sample line: a label signature plus a value source.
type series struct {
	labels []Label
	sig    string // canonical signature for dedup and deterministic render order

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc/GaugeFunc source
	hist    *Histogram
}

// value resolves the series' current scalar (not used for histograms).
func (s *series) value() float64 {
	switch {
	case s.counter != nil:
		return s.counter.Value()
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	}
	return 0
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind metricKind

	mu     sync.Mutex
	series []*series
	bySig  map[string]*series
}

// find returns the series with the given signature, or nil.
func (f *family) find(sig string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bySig[sig]
}

// add registers a new series under the family, keeping render order
// deterministic (sorted by signature).
func (f *family) add(s *series) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.bySig[s.sig] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(a, b int) bool { return f.series[a].sig < f.series[b].sig })
}

// Registry holds metric families and renders them as Prometheus text. The
// zero value is not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns (creating if needed) the family for name. A name reused
// with a different kind gets a disambiguating suffix instead of corrupting
// the exposition (two TYPE lines for one name is invalid text format).
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	name = sanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		f, ok := r.byName[name]
		if !ok {
			f = &family{name: name, help: help, kind: kind, bySig: make(map[string]*series)}
			r.byName[name] = f
			r.families = append(r.families, f)
			return f
		}
		if f.kind == kind {
			return f
		}
		name += "_" + kind.String()
	}
}

// Counter returns the counter series for name+labels, creating it on first
// use. Calling again with the same name and labels returns the same
// instance.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.familyFor(name, help, kindCounter)
	sig, clean := signature(labels)
	if s := f.find(sig); s != nil && s.counter != nil {
		return s.counter
	}
	c := &Counter{}
	f.add(&series{labels: clean, sig: sig, counter: c})
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.familyFor(name, help, kindGauge)
	sig, clean := signature(labels)
	if s := f.find(sig); s != nil && s.gauge != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.add(&series{labels: clean, sig: sig, gauge: g})
	return g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for pre-existing atomics (cache hit counters and
// the like) that must not be double-counted into a second variable. fn must
// be monotonically non-decreasing and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, kindCounter)
	sig, clean := signature(labels)
	if s := f.find(sig); s != nil {
		s.fn = fn
		return
	}
	f.add(&series{labels: clean, sig: sig, fn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.familyFor(name, help, kindGauge)
	sig, clean := signature(labels)
	if s := f.find(sig); s != nil {
		s.fn = fn
		return
	}
	f.add(&series{labels: clean, sig: sig, fn: fn})
}

// Histogram returns the histogram series for name+labels, creating it with
// the given bucket upper bounds on first use (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	f := r.familyFor(name, help, kindHistogram)
	sig, clean := signature(labels)
	if s := f.find(sig); s != nil && s.hist != nil {
		return s.hist
	}
	h := newHistogram(buckets)
	f.add(&series{labels: clean, sig: sig, hist: h})
	return h
}

// signature canonicalizes a label set: names sanitized, sorted, values
// escaped at render time. Reserved label names (le) are dropped — the
// histogram encoder owns them.
func signature(labels []Label) (string, []Label) {
	clean := make([]Label, 0, len(labels))
	for _, l := range labels {
		name := sanitizeName(l.Name)
		if name == "le" || name == "" {
			continue
		}
		clean = append(clean, Label{Name: name, Value: l.Value})
	}
	sort.Slice(clean, func(a, b int) bool {
		if clean[a].Name != clean[b].Name {
			return clean[a].Name < clean[b].Name
		}
		return clean[a].Value < clean[b].Value
	})
	var sb strings.Builder
	for _, l := range clean {
		sb.WriteString(l.Name)
		sb.WriteByte(1)
		sb.WriteString(l.Value)
		sb.WriteByte(2)
	}
	return sb.String(), clean
}

// sanitizeName coerces an arbitrary string into a valid Prometheus metric or
// label name ([a-zA-Z_:][a-zA-Z0-9_:]*): invalid runes become underscores, a
// leading digit is prefixed. The registry never panics on a hostile name —
// the fuzz target feeds it garbage on purpose.
func sanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
