package obs

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RequestMeta supplies the per-request context fields the middleware cannot
// see on its own: the serving shard (nil when unsharded), the engine
// generation, and the caller's admission key. Implementations must be safe
// for concurrent use; any field may be zero.
type RequestMeta func(r *http.Request) (shard *int, version int, client string)

// HTTPMetrics instruments an http.Handler: per-route request counters
// (labelled by status code), per-route latency histograms, and an optional
// structured request log. Series are created lazily on first hit and cached
// behind an RWMutex, so the steady-state hot path is a read-lock, two atomic
// adds and a histogram observe.
type HTTPMetrics struct {
	reg     *Registry
	log     *RequestLogger
	meta    RequestMeta
	buckets []float64

	mu     sync.RWMutex
	routes map[string]*routeMetrics
}

// routeMetrics is one route's instrument set.
type routeMetrics struct {
	latency *Histogram

	cmu      sync.RWMutex
	byStatus map[int]*Counter
}

// NewHTTPMetrics builds the middleware state over a registry. log and meta
// may be nil (no request logging / no extra fields); buckets nil selects
// DefBuckets.
func NewHTTPMetrics(reg *Registry, log *RequestLogger, meta RequestMeta, buckets []float64) *HTTPMetrics {
	return &HTTPMetrics{
		reg:     reg,
		log:     log,
		meta:    meta,
		buckets: buckets,
		routes:  make(map[string]*routeMetrics),
	}
}

// routeFor normalizes a request path to its route label. Unknown paths
// collapse into "other" so a path-scanning client cannot balloon series
// cardinality.
func routeFor(path string) string {
	switch path {
	case "/health", "/info", "/recommend", "/recommend/batch", "/ingest", "/users", "/metrics":
		return path
	}
	return "other"
}

// route returns (creating on first use) the instrument set for a route.
func (m *HTTPMetrics) route(name string) *routeMetrics {
	m.mu.RLock()
	rm := m.routes[name]
	m.mu.RUnlock()
	if rm != nil {
		return rm
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if rm = m.routes[name]; rm != nil {
		return rm
	}
	rm = &routeMetrics{
		latency: m.reg.Histogram("ganc_http_request_duration_seconds",
			"HTTP request latency by route.", m.buckets, L("route", name)),
		byStatus: make(map[int]*Counter),
	}
	m.routes[name] = rm
	return rm
}

// counter returns the route's counter for a status code.
func (rm *routeMetrics) counter(m *HTTPMetrics, route string, status int) *Counter {
	rm.cmu.RLock()
	c := rm.byStatus[status]
	rm.cmu.RUnlock()
	if c != nil {
		return c
	}
	rm.cmu.Lock()
	defer rm.cmu.Unlock()
	if c = rm.byStatus[status]; c != nil {
		return c
	}
	c = m.reg.Counter("ganc_http_requests_total",
		"HTTP requests by route and status code.",
		L("route", route), L("code", strconv.Itoa(status)))
	rm.byStatus[status] = c
	return c
}

// statusWriter captures the written status code.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the code before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 on an implicit header.
func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Wrap instruments next: every request is timed, counted under its route and
// status, observed into the route's latency histogram, and (when a logger is
// configured) logged as one JSON line.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeFor(r.URL.Path)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		elapsed := time.Since(t0)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		rm := m.route(route)
		rm.counter(m, route, sw.status).Inc()
		rm.latency.Observe(elapsed.Seconds())
		if m.log != nil {
			entry := RequestEntry{
				Method:     r.Method,
				Route:      route,
				Status:     sw.status,
				DurationMs: float64(elapsed) / float64(time.Millisecond),
			}
			if m.meta != nil {
				entry.Shard, entry.Version, entry.Client = m.meta(r)
			}
			m.log.Log(levelForStatus(sw.status), entry)
		}
	})
}
