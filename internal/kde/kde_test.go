package kde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsEmptySample(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("empty sample did not error")
	}
}

func TestSilvermanBandwidthPositiveAndShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 50)
	large := make([]float64, 5000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	hs, hl := Silverman(small), Silverman(large)
	if hs <= 0 || hl <= 0 {
		t.Fatalf("non-positive bandwidths: %v %v", hs, hl)
	}
	if hl >= hs {
		t.Fatalf("bandwidth should shrink with sample size: n=50 → %v, n=5000 → %v", hs, hl)
	}
}

func TestSilvermanDegenerateSamples(t *testing.T) {
	if h := Silverman([]float64{0.3}); h <= 0 {
		t.Fatal("single-point sample should still give positive bandwidth")
	}
	if h := Silverman([]float64{0.5, 0.5, 0.5, 0.5}); h <= 0 {
		t.Fatal("constant sample should still give positive bandwidth")
	}
}

func TestPDFIntegratesToApproximatelyOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]float64, 300)
	for i := range data {
		data[i] = 0.3 + 0.15*rng.NormFloat64()
	}
	k, err := New(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoidal integration over a wide interval.
	integral := 0.0
	lo, hi, steps := -2.0, 3.0, 2000
	dx := (hi - lo) / float64(steps)
	for s := 0; s <= steps; s++ {
		x := lo + float64(s)*dx
		w := dx
		if s == 0 || s == steps {
			w /= 2
		}
		integral += k.PDF(x) * w
	}
	if math.Abs(integral-1) > 0.02 {
		t.Fatalf("PDF integrates to %v, want ≈ 1", integral)
	}
}

func TestPDFPeaksNearTheData(t *testing.T) {
	data := []float64{0.2, 0.21, 0.19, 0.22, 0.18, 0.2}
	k, err := New(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.PDF(0.2) <= k.PDF(0.8) {
		t.Fatal("density at the data cluster should exceed density far away")
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]float64, 200)
	for i := range data {
		data[i] = rng.Float64()
	}
	k, err := New(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for x := -0.5; x <= 1.5; x += 0.05 {
		c := k.CDF(x)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at %v", x)
		}
		if c < 0 || c > 1 {
			t.Fatalf("CDF out of range at %v: %v", x, c)
		}
		prev = c
	}
	if k.CDF(-5) > 0.01 || k.CDF(5) < 0.99 {
		t.Fatal("CDF tails wrong")
	}
}

func TestSampleReproducesDistributionRoughly(t *testing.T) {
	// Data drawn from a bimodal mixture; samples from the KDE should land in
	// both modes with roughly the right proportions.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 400)
	for i := range data {
		if i%4 == 0 { // 25% in the upper mode
			data[i] = 0.8 + 0.03*rng.NormFloat64()
		} else {
			data[i] = 0.2 + 0.03*rng.NormFloat64()
		}
	}
	k, err := New(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	samples := k.Sample(4000, rand.New(rand.NewSource(5)))
	upper := 0
	for _, s := range samples {
		if s > 0.5 {
			upper++
		}
	}
	frac := float64(upper) / float64(len(samples))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("upper-mode fraction %v, want ≈ 0.25", frac)
	}
}

func TestSampleEdgeCases(t *testing.T) {
	k, err := New([]float64{0.5}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Sample(0, nil); got != nil {
		t.Fatal("n=0 should return nil")
	}
	if got := k.Sample(-3, nil); got != nil {
		t.Fatal("negative n should return nil")
	}
	if got := k.Sample(5, nil); len(got) != 5 {
		t.Fatal("nil rng should still produce samples")
	}
}

func TestSampleClampedStaysInRange(t *testing.T) {
	data := []float64{0.01, 0.02, 0.99, 0.98}
	k, err := New(data, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	out := k.SampleClamped(500, 0, 1, rand.New(rand.NewSource(6)))
	for _, v := range out {
		if v < 0 || v > 1 {
			t.Fatalf("clamped sample %v escaped [0,1]", v)
		}
	}
}

func TestSamplingIsDeterministicGivenRNG(t *testing.T) {
	data := []float64{0.1, 0.5, 0.9}
	k, _ := New(data, 0.05)
	a := k.Sample(20, rand.New(rand.NewSource(7)))
	b := k.Sample(20, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same RNG seed produced different samples")
		}
	}
}

func TestBandwidthOverrideRespected(t *testing.T) {
	k, err := New([]float64{0.4, 0.6}, 0.123)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() != 0.123 {
		t.Fatalf("bandwidth = %v", k.Bandwidth())
	}
}

func TestCrossValidatedBandwidthReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := make([]float64, 150)
	for i := range data {
		data[i] = 0.5 + 0.1*rng.NormFloat64()
	}
	h := CrossValidatedBandwidth(data, nil)
	if h <= 0 {
		t.Fatal("cross-validated bandwidth not positive")
	}
	base := Silverman(data)
	if h < base/5 || h > base*5 {
		t.Fatalf("cross-validated bandwidth %v unreasonably far from Silverman %v", h, base)
	}
	// Degenerate small samples fall back to Silverman.
	if CrossValidatedBandwidth([]float64{0.1, 0.2}, nil) != Silverman([]float64{0.1, 0.2}) {
		t.Fatal("tiny sample should fall back to Silverman")
	}
}

func TestPDFNonNegativeProperty(t *testing.T) {
	f := func(xs []float64, query float64) bool {
		if len(xs) == 0 {
			return true
		}
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 100))
			}
		}
		if len(clean) == 0 {
			return true
		}
		k, err := New(clean, 0)
		if err != nil {
			return false
		}
		q := math.Mod(query, 100)
		if math.IsNaN(q) || math.IsInf(q, 0) {
			q = 0
		}
		return k.PDF(q) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
