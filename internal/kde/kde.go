// Package kde implements Gaussian kernel density estimation over a
// one-dimensional sample, with rule-of-thumb and cross-validated bandwidth
// selection, plus sampling from the estimated density.
//
// GANC's OSLG optimization (Algorithm 1, line 2) approximates the probability
// density of the user long-tail preferences θ with a KDE and draws the sample
// of users it processes sequentially from that density. The paper cites the
// Sheather–Jones bandwidth selector; this package provides Silverman's
// rule-of-thumb (the standard plug-in approximation) and an optional
// leave-one-out likelihood cross-validation refinement, either of which gives
// statistically indistinguishable samples for the smooth, unimodal θ
// distributions involved (DESIGN.md §4).
package kde

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// KDE is a fitted Gaussian kernel density estimator.
type KDE struct {
	data      []float64
	bandwidth float64
}

// Silverman returns the rule-of-thumb bandwidth h = 0.9·min(σ, IQR/1.34)·n^(−1/5).
// It falls back to a small positive constant when the sample is degenerate
// (constant, or fewer than two points), so the estimator never divides by
// zero.
func Silverman(data []float64) float64 {
	n := len(data)
	if n < 2 {
		return 0.05
	}
	mean := 0.0
	for _, x := range data {
		mean += x
	}
	mean /= float64(n)
	varSum := 0.0
	for _, x := range data {
		d := x - mean
		varSum += d * d
	}
	sigma := math.Sqrt(varSum / float64(n))

	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	iqr := quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25)

	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	if spread <= 0 {
		return 0.05
	}
	return 0.9 * spread * math.Pow(float64(n), -0.2)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// New fits a KDE to data with the given bandwidth. A non-positive bandwidth
// selects Silverman's rule automatically. New copies the data.
func New(data []float64, bandwidth float64) (*KDE, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("kde: cannot fit a density to an empty sample")
	}
	if bandwidth <= 0 {
		bandwidth = Silverman(data)
	}
	cp := append([]float64(nil), data...)
	return &KDE{data: cp, bandwidth: bandwidth}, nil
}

// Bandwidth returns the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// PDF evaluates the estimated density at x.
func (k *KDE) PDF(x float64) float64 {
	h := k.bandwidth
	sum := 0.0
	for _, xi := range k.data {
		z := (x - xi) / h
		sum += math.Exp(-0.5 * z * z)
	}
	norm := float64(len(k.data)) * h * math.Sqrt(2*math.Pi)
	return sum / norm
}

// CDF evaluates the estimated cumulative distribution at x.
func (k *KDE) CDF(x float64) float64 {
	h := k.bandwidth
	sum := 0.0
	for _, xi := range k.data {
		sum += 0.5 * (1 + math.Erf((x-xi)/(h*math.Sqrt2)))
	}
	return sum / float64(len(k.data))
}

// Sample draws n points from the estimated density: pick a data point
// uniformly, then add Gaussian noise with the bandwidth as standard
// deviation. This is exact sampling from the KDE mixture.
func (k *KDE) Sample(n int, rng *rand.Rand) []float64 {
	if n <= 0 {
		return nil
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	out := make([]float64, n)
	for i := range out {
		xi := k.data[rng.Intn(len(k.data))]
		out[i] = xi + rng.NormFloat64()*k.bandwidth
	}
	return out
}

// SampleClamped draws n points and clamps them to [lo, hi]. GANC uses it with
// [0,1] because θ lives on the unit interval.
func (k *KDE) SampleClamped(n int, lo, hi float64, rng *rand.Rand) []float64 {
	out := k.Sample(n, rng)
	for i, v := range out {
		if v < lo {
			out[i] = lo
		} else if v > hi {
			out[i] = hi
		}
	}
	return out
}

// CrossValidatedBandwidth refines the Silverman bandwidth by maximizing the
// leave-one-out log-likelihood over a small multiplicative grid. It is more
// expensive (O(n²) per grid point) and only worthwhile for small samples or
// strongly multimodal data.
func CrossValidatedBandwidth(data []float64, gridFactors []float64) float64 {
	base := Silverman(data)
	if len(data) < 3 {
		return base
	}
	if len(gridFactors) == 0 {
		gridFactors = []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}
	}
	bestH, bestLL := base, math.Inf(-1)
	for _, f := range gridFactors {
		h := base * f
		if h <= 0 {
			continue
		}
		ll := 0.0
		valid := true
		for i, xi := range data {
			sum := 0.0
			for j, xj := range data {
				if i == j {
					continue
				}
				z := (xi - xj) / h
				sum += math.Exp(-0.5 * z * z)
			}
			density := sum / (float64(len(data)-1) * h * math.Sqrt(2*math.Pi))
			if density <= 0 {
				valid = false
				break
			}
			ll += math.Log(density)
		}
		if valid && ll > bestLL {
			bestLL, bestH = ll, h
		}
	}
	return bestH
}
