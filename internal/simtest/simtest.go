// Package simtest is the shared fixture layer for everything that stands a
// seeded synthetic universe and a trained serving pipeline up: the tier-2
// scenario suites, the cluster tests and the cmd/loadgen benchmark driver.
// The universe shapes themselves live in internal/simulate (fixture.go);
// this package adds the testing conveniences and the standard
// pipeline-under-test parameters, so the "what do we train and serve in
// tests" decision is made exactly once.
//
// internal/simulate's own unit tests cannot import this package (it imports
// simulate, and Go rejects the cycle for in-package tests); they call the
// simulate fixture constructors directly.
package simtest

import (
	"testing"

	"ganc/internal/simulate"
)

// Standard pipeline-under-test parameters: the cheapest snapshot-compatible
// assembly, so scenario and benchmark time goes to lifecycle coverage rather
// than training.
const (
	// StandardBase is the registry base the fixtures train.
	StandardBase = "Pop"
	// StandardTheta is the θ estimator code (TF-IDF: deterministic and cheap
	// at scale), in the cmd-line letter form ParsePreferenceModel accepts.
	StandardTheta = "T"
	// StandardTopN is the serving list size.
	StandardTopN = 10
	// StandardSeed drives training and θ estimation.
	StandardSeed int64 = 7
)

// Config builds a universe configuration from the benchmark driver's flag
// vocabulary.
func Config(users, items, ratings int, zipf float64, seed int64) simulate.UniverseConfig {
	return simulate.UniverseConfig{
		Name:         "loadgen",
		Users:        users,
		Items:        items,
		Ratings:      ratings,
		ZipfExponent: zipf,
		Seed:         seed,
	}
}

// Tiny returns the unit-test universe configuration.
func Tiny(seed int64) simulate.UniverseConfig { return simulate.TinyConfig(seed) }

// E2E returns the tier-2 scenario universe configuration.
func E2E(seed int64) simulate.UniverseConfig { return simulate.E2EConfig(seed) }

// Standard returns the standard benchmark universe configuration.
func Standard(seed int64) simulate.UniverseConfig { return simulate.StandardConfig(seed) }

// MustUniverse generates a universe, failing the test on error.
func MustUniverse(tb testing.TB, cfg simulate.UniverseConfig) *simulate.Universe {
	tb.Helper()
	u, err := simulate.NewUniverse(cfg)
	if err != nil {
		tb.Fatalf("simtest: generating universe: %v", err)
	}
	return u
}
