package dataset

import (
	"encoding/gob"
	"fmt"
	"io"

	"ganc/internal/types"
)

// Dataset persistence: a Dataset serializes to a compact struct-of-arrays gob
// payload (identifier key tables plus three parallel rating columns) and is
// rebuilt on load by re-interning the key tables and re-running the index
// construction, so the loaded dataset is bit-identical to the saved one
// without storing any derived structure.

// datasetSnapshotVersion guards the gob payload layout; bump it on any
// incompatible change so old snapshots fail loudly instead of mis-decoding.
const datasetSnapshotVersion = 1

// datasetSnapshot is the gob-encoded form of a Dataset.
type datasetSnapshot struct {
	Version  int
	Name     string
	UserKeys []string
	ItemKeys []string
	Users    []types.UserID
	Items    []types.ItemID
	Values   []float64
}

// EncodeSnapshot writes the dataset to w in its versioned gob form.
func (d *Dataset) EncodeSnapshot(w io.Writer) error {
	snap := datasetSnapshot{
		Version:  datasetSnapshotVersion,
		Name:     d.name,
		UserKeys: d.users.Keys(),
		ItemKeys: d.items.Keys(),
		Users:    make([]types.UserID, len(d.ratings)),
		Items:    make([]types.ItemID, len(d.ratings)),
		Values:   make([]float64, len(d.ratings)),
	}
	for k, r := range d.ratings {
		snap.Users[k] = r.User
		snap.Items[k] = r.Item
		snap.Values[k] = r.Value
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("dataset: encode snapshot: %w", err)
	}
	return nil
}

// DecodeSnapshot reads a dataset previously written by EncodeSnapshot.
func DecodeSnapshot(r io.Reader) (*Dataset, error) {
	var snap datasetSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dataset: decode snapshot: %w", err)
	}
	if snap.Version != datasetSnapshotVersion {
		return nil, fmt.Errorf("dataset: unsupported dataset snapshot version %d (this build reads version %d)",
			snap.Version, datasetSnapshotVersion)
	}
	if len(snap.Users) != len(snap.Items) || len(snap.Users) != len(snap.Values) {
		return nil, fmt.Errorf("dataset: corrupt snapshot: rating columns have mismatched lengths %d/%d/%d",
			len(snap.Users), len(snap.Items), len(snap.Values))
	}
	users := types.NewInternerFromKeys(snap.UserKeys)
	items := types.NewInternerFromKeys(snap.ItemKeys)
	ratings := make([]types.Rating, len(snap.Users))
	for k := range snap.Users {
		if int(snap.Users[k]) < 0 || int(snap.Users[k]) >= users.Len() {
			return nil, fmt.Errorf("dataset: corrupt snapshot: rating %d references user %d outside [0,%d)", k, snap.Users[k], users.Len())
		}
		if int(snap.Items[k]) < 0 || int(snap.Items[k]) >= items.Len() {
			return nil, fmt.Errorf("dataset: corrupt snapshot: rating %d references item %d outside [0,%d)", k, snap.Items[k], items.Len())
		}
		ratings[k] = types.Rating{User: snap.Users[k], Item: snap.Items[k], Value: snap.Values[k]}
	}
	d := &Dataset{
		name:    snap.Name,
		ratings: ratings,
		users:   users,
		items:   items,
	}
	d.buildIndexes()
	return d, nil
}
