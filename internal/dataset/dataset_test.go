package dataset

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ganc/internal/types"
)

// tinyDataset builds a small deterministic dataset used across tests:
// 4 users, 6 items, ratings chosen so that item 0 is clearly the head item.
func tinyDataset() *Dataset {
	b := NewBuilder("tiny", 16)
	add := func(u, i string, v float64) { b.Add(u, i, v) }
	add("u0", "i0", 5)
	add("u0", "i1", 4)
	add("u0", "i2", 3)
	add("u1", "i0", 4)
	add("u1", "i1", 2)
	add("u2", "i0", 5)
	add("u2", "i3", 1)
	add("u3", "i0", 3)
	add("u3", "i4", 4)
	add("u3", "i5", 5)
	return b.Build()
}

func TestBuilderBasicCounts(t *testing.T) {
	d := tinyDataset()
	if d.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d, want 4", d.NumUsers())
	}
	if d.NumItems() != 6 {
		t.Fatalf("NumItems = %d, want 6", d.NumItems())
	}
	if d.NumRatings() != 10 {
		t.Fatalf("NumRatings = %d, want 10", d.NumRatings())
	}
}

func TestUserAndItemIndexes(t *testing.T) {
	d := tinyDataset()
	u0 := types.UserID(0)
	items := d.UserItems(u0)
	if len(items) != 3 {
		t.Fatalf("u0 rated %d items, want 3", len(items))
	}
	set := d.UserItemSet(u0)
	if _, ok := set[0]; !ok {
		t.Fatal("u0 item set missing item 0")
	}
	if d.ItemPopularity(0) != 4 {
		t.Fatalf("item 0 popularity = %d, want 4", d.ItemPopularity(0))
	}
	users := d.ItemUsers(0)
	if len(users) != 4 {
		t.Fatalf("item 0 user count = %d, want 4", len(users))
	}
	if d.ItemPopularity(5) != 1 {
		t.Fatalf("item 5 popularity = %d, want 1", d.ItemPopularity(5))
	}
	// Out-of-range lookups return empty, not panic.
	if d.UserRatings(types.UserID(99)) != nil {
		t.Fatal("out-of-range user returned ratings")
	}
	if d.ItemRatings(types.ItemID(-3)) != nil {
		t.Fatal("negative item returned ratings")
	}
}

func TestUserRatingLookup(t *testing.T) {
	d := tinyDataset()
	v, ok := d.UserRating(0, 1)
	if !ok || v != 4 {
		t.Fatalf("UserRating(0,1) = %v,%v", v, ok)
	}
	if _, ok := d.UserRating(0, 5); ok {
		t.Fatal("UserRating returned value for unrated pair")
	}
}

func TestDensityAndMeanRating(t *testing.T) {
	d := tinyDataset()
	wantDensity := 10.0 / (4.0 * 6.0)
	if got := d.Density(); got < wantDensity-1e-12 || got > wantDensity+1e-12 {
		t.Fatalf("Density = %v, want %v", got, wantDensity)
	}
	if got := d.MeanRating(); got != 3.6 {
		t.Fatalf("MeanRating = %v, want 3.6", got)
	}
}

func TestPopularityVector(t *testing.T) {
	d := tinyDataset()
	pops := d.PopularityVector()
	if pops[0] != 4 || pops[1] != 2 || pops[5] != 1 {
		t.Fatalf("PopularityVector = %v", pops)
	}
}

func TestLongTailParetoCut(t *testing.T) {
	// 10 ratings total. Head budget at 80% = 8 ratings. Sorted by popularity:
	// i0(4), i1(2), i2(1), i3(1), i4(1), i5(1). Cumulative: 4, 6, 7, 8 → the
	// head is {i0,i1,i2,i3} (cum reaches 8 after i3), leaving {i4,i5} as tail.
	d := tinyDataset()
	tail := d.LongTail(0.20)
	if len(tail) != 2 {
		t.Fatalf("tail size = %d, want 2 (tail=%v)", len(tail), tail)
	}
	if _, ok := tail[4]; !ok {
		t.Fatal("item 4 should be long-tail")
	}
	if _, ok := tail[0]; ok {
		t.Fatal("item 0 (most popular) must not be long-tail")
	}
}

func TestLongTailBoundaryShares(t *testing.T) {
	d := tinyDataset()
	if got := d.LongTail(0); len(got) != 0 {
		t.Fatalf("tailShare=0 should give empty tail, got %d items", len(got))
	}
	if got := d.LongTail(1); len(got) != d.NumItems() {
		t.Fatalf("tailShare=1 should include every item, got %d", len(got))
	}
	// Out-of-range values are clamped rather than panicking.
	if got := d.LongTail(-0.5); len(got) != 0 {
		t.Fatalf("negative share should clamp to 0, got %d", len(got))
	}
	if got := d.LongTail(3); len(got) != d.NumItems() {
		t.Fatalf("share>1 should clamp to 1, got %d", len(got))
	}
}

func TestLongTailCoversAllUnratedItems(t *testing.T) {
	// Items with no ratings must always land in the tail.
	b := NewBuilder("gap", 4)
	b.AddIDs(0, 0, 5)
	b.AddIDs(0, 3, 5) // items 1 and 2 exist but have no ratings? AddIDs creates them
	d := b.Build()
	tail := d.LongTail(0.2)
	if _, ok := tail[1]; !ok {
		t.Fatal("unrated item 1 should be in the long tail")
	}
	if _, ok := tail[2]; !ok {
		t.Fatal("unrated item 2 should be in the long tail")
	}
}

func TestComputeStats(t *testing.T) {
	d := tinyDataset()
	s := d.ComputeStats()
	if s.NumRatings != 10 || s.NumUsers != 4 || s.NumItems != 6 {
		t.Fatalf("stats counts wrong: %+v", s)
	}
	if s.MinUserDeg != 2 || s.MaxUserDeg != 3 {
		t.Fatalf("user degree range wrong: %+v", s)
	}
	if s.DensityPct < 41 || s.DensityPct > 42 {
		t.Fatalf("DensityPct = %v", s.DensityPct)
	}
	if s.LongTailPct < 33 || s.LongTailPct > 34 {
		t.Fatalf("LongTailPct = %v", s.LongTailPct)
	}
}

func TestSplitByUserPreservesAllRatings(t *testing.T) {
	d := tinyDataset()
	sp := d.SplitByUser(0.5, rand.New(rand.NewSource(42)))
	if sp.Train.NumRatings()+sp.Test.NumRatings() != d.NumRatings() {
		t.Fatalf("split lost ratings: %d + %d != %d",
			sp.Train.NumRatings(), sp.Test.NumRatings(), d.NumRatings())
	}
	// Identifier spaces are shared.
	if sp.Train.NumUsers() != d.NumUsers() || sp.Test.NumItems() != d.NumItems() {
		t.Fatal("split children must share parent identifier spaces")
	}
}

func TestSplitByUserRespectsKappaPerUser(t *testing.T) {
	// Build a user with exactly 10 ratings and check the per-user counts.
	b := NewBuilder("k", 20)
	for i := 0; i < 10; i++ {
		b.AddIDs(0, types.ItemID(i), 4)
	}
	d := b.Build()
	sp := d.SplitByUser(0.8, rand.New(rand.NewSource(1)))
	if got := len(sp.Train.UserRatings(0)); got != 8 {
		t.Fatalf("train ratings for user = %d, want 8", got)
	}
	if got := len(sp.Test.UserRatings(0)); got != 2 {
		t.Fatalf("test ratings for user = %d, want 2", got)
	}
}

func TestSplitByUserSingleRatingStaysInTrain(t *testing.T) {
	b := NewBuilder("single", 1)
	b.AddIDs(0, 0, 5)
	d := b.Build()
	sp := d.SplitByUser(0.5, rand.New(rand.NewSource(1)))
	if sp.Train.NumRatings() != 1 || sp.Test.NumRatings() != 0 {
		t.Fatalf("single rating should stay in train: train=%d test=%d",
			sp.Train.NumRatings(), sp.Test.NumRatings())
	}
}

func TestSplitByUserPanicsOnBadKappa(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kappa=0 did not panic")
		}
	}()
	tinyDataset().SplitByUser(0, nil)
}

func TestSplitPropertyNoRatingInBothSets(t *testing.T) {
	// Property: a (user,item) pair never appears in both train and test.
	f := func(seed int64) bool {
		d := tinyDataset()
		sp := d.SplitByUser(0.5, rand.New(rand.NewSource(seed)))
		seen := make(map[[2]int32]bool)
		for _, r := range sp.Train.Ratings() {
			seen[[2]int32{int32(r.User), int32(r.Item)}] = true
		}
		for _, r := range sp.Test.Ratings() {
			if seen[[2]int32{int32(r.User), int32(r.Item)}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetUsers(t *testing.T) {
	d := tinyDataset()
	sub := d.SubsetUsers([]types.UserID{0, 3})
	if sub.NumRatings() != 6 {
		t.Fatalf("subset ratings = %d, want 6", sub.NumRatings())
	}
	if len(sub.UserRatings(1)) != 0 {
		t.Fatal("excluded user still has ratings in subset")
	}
}

func TestRelevantTestItems(t *testing.T) {
	d := tinyDataset()
	rel := RelevantTestItems(d, 4.0)
	// u0 rated i0=5, i1=4 (relevant), i2=3 (not); u2 rated i0=5, i3=1.
	if len(rel[0]) != 2 {
		t.Fatalf("u0 relevant items = %v", rel[0])
	}
	if len(rel[2]) != 1 {
		t.Fatalf("u2 relevant items = %v", rel[2])
	}
	if _, ok := rel[99]; ok {
		t.Fatal("phantom user has relevant items")
	}
}

func TestFromRatings(t *testing.T) {
	rs := []types.Rating{
		{User: 0, Item: 0, Value: 5},
		{User: 1, Item: 2, Value: 3},
	}
	d := FromRatings("fr", rs)
	if d.NumUsers() != 2 || d.NumItems() != 3 || d.NumRatings() != 2 {
		t.Fatalf("FromRatings dims: %d users %d items %d ratings",
			d.NumUsers(), d.NumItems(), d.NumRatings())
	}
}

func TestReadRatingsCSVWithHeader(t *testing.T) {
	csv := "userId,movieId,rating,timestamp\n1,10,4.0,111\n1,20,3.5,112\n2,10,5.0,113\n"
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{Name: "csv"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 3 || d.NumUsers() != 2 || d.NumItems() != 2 {
		t.Fatalf("csv parse: %d ratings %d users %d items", d.NumRatings(), d.NumUsers(), d.NumItems())
	}
}

func TestReadRatingsMovieLensDat(t *testing.T) {
	dat := "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978300761\n"
	d, err := ReadRatings(strings.NewReader(dat), LoadOptions{Name: "dat"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 3 {
		t.Fatalf("dat parse ratings = %d", d.NumRatings())
	}
	if v, ok := d.UserRating(0, 0); !ok || v != 5 {
		t.Fatalf("first rating value = %v, %v", v, ok)
	}
}

func TestReadRatingsTabSeparated(t *testing.T) {
	tsv := "196\t242\t3\t881250949\n186\t302\t3\t891717742\n"
	d, err := ReadRatings(strings.NewReader(tsv), LoadOptions{Name: "tsv"})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 2 {
		t.Fatalf("tsv parse ratings = %d", d.NumRatings())
	}
}

func TestReadRatingsRescale(t *testing.T) {
	// MovieTweetings-style 0..10 scale rescaled onto [1,5].
	csv := "u1,i1,0\nu1,i2,10\nu2,i1,5\n"
	target := [2]float64{1, 5}
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{Name: "mt", RescaleTo: &target})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.UserRating(0, 0); v != 1 {
		t.Fatalf("min rating rescaled to %v, want 1", v)
	}
	if v, _ := d.UserRating(0, 1); v != 5 {
		t.Fatalf("max rating rescaled to %v, want 5", v)
	}
	if v, _ := d.UserRating(1, 0); v != 3 {
		t.Fatalf("mid rating rescaled to %v, want 3", v)
	}
}

func TestReadRatingsMinRatingsFilter(t *testing.T) {
	csv := "a,i1,4\na,i2,4\na,i3,4\nb,i1,2\n"
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{Name: "f", MinRatingsPerUser: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 3 {
		t.Fatalf("filter kept %d ratings, want 3", d.NumRatings())
	}
	if d.NumUsers() != 1 {
		t.Fatalf("filter kept %d users, want 1", d.NumUsers())
	}
}

func TestReadRatingsMaxRatings(t *testing.T) {
	csv := "a,i1,4\na,i2,4\nb,i1,2\nb,i2,1\n"
	d, err := ReadRatings(strings.NewReader(csv), LoadOptions{MaxRatings: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRatings() != 2 {
		t.Fatalf("MaxRatings kept %d", d.NumRatings())
	}
}

func TestReadRatingsEmptyInputFails(t *testing.T) {
	if _, err := ReadRatings(strings.NewReader("\n# comment only\n"), LoadOptions{}); err == nil {
		t.Fatal("empty input did not error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := tinyDataset()
	var sb strings.Builder
	if err := WriteRatings(&sb, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRatings(strings.NewReader(sb.String()), LoadOptions{Name: "rt"})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRatings() != d.NumRatings() || back.NumUsers() != d.NumUsers() || back.NumItems() != d.NumItems() {
		t.Fatalf("round trip mismatch: %d/%d ratings, %d/%d users, %d/%d items",
			back.NumRatings(), d.NumRatings(), back.NumUsers(), d.NumUsers(), back.NumItems(), d.NumItems())
	}
	// Every original rating survives with its value.
	for _, r := range d.Ratings() {
		uKey := d.UserInterner().Key(int32(r.User))
		iKey := d.ItemInterner().Key(int32(r.Item))
		bu, _ := back.UserInterner().Lookup(uKey)
		bi, _ := back.ItemInterner().Lookup(iKey)
		if v, ok := back.UserRating(types.UserID(bu), types.ItemID(bi)); !ok || v != r.Value {
			t.Fatalf("rating %v lost in round trip (got %v, %v)", r, v, ok)
		}
	}
}
