package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Format identifies the on-disk layout of a rating file.
type Format int

const (
	// FormatAuto sniffs the delimiter from the first data line.
	FormatAuto Format = iota
	// FormatMovieLensDat is the "user::item::rating::timestamp" layout used
	// by ML-1M and ML-10M.
	FormatMovieLensDat
	// FormatTab is the tab-separated "user\titem\trating\ttimestamp" layout
	// used by ML-100K (u.data).
	FormatTab
	// FormatCSV is "user,item,rating[,timestamp]" with an optional header
	// row, used by newer MovieLens exports and MovieTweetings conversions.
	FormatCSV
)

// LoadOptions configures LoadRatings.
type LoadOptions struct {
	Name   string // dataset name; defaults to the file path
	Format Format
	// MinRatingsPerUser drops users with fewer ratings than this threshold
	// (the paper uses τ=20 for MovieLens and τ=5 for MovieTweetings).
	MinRatingsPerUser int
	// RescaleTo maps the observed rating range onto [RescaleTo[0],
	// RescaleTo[1]] (the paper maps MovieTweetings' 0–10 scale onto [1,5]).
	// A nil value leaves ratings untouched.
	RescaleTo *[2]float64
	// MaxRatings, when positive, stops reading after this many ratings. It
	// exists so tests and examples can sample the head of a large file.
	MaxRatings int
}

// LoadRatings reads a ratings file into a Dataset.
func LoadRatings(path string, opts LoadOptions) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	if opts.Name == "" {
		opts.Name = path
	}
	return ReadRatings(f, opts)
}

// ReadRatings parses rating rows from r according to opts. It is the
// io.Reader-level core of LoadRatings, exposed so callers can load from any
// source (embedded test fixtures, network streams, compressed readers).
func ReadRatings(r io.Reader, opts LoadOptions) (*Dataset, error) {
	if opts.Name == "" {
		opts.Name = "ratings"
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<22)

	type row struct {
		user, item string
		value      float64
	}
	var rows []row
	format := opts.Format
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if format == FormatAuto {
			format = sniffFormat(line)
		}
		user, item, valStr, err := splitRow(line, format)
		if err != nil {
			// A header row ("userId,movieId,rating,...") fails numeric
			// parsing below; skip it only if it is the first content line.
			if len(rows) == 0 {
				continue
			}
			return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			if len(rows) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("dataset: line %d: bad rating %q", lineNo, valStr)
		}
		rows = append(rows, row{user: user, item: item, value: val})
		if opts.MaxRatings > 0 && len(rows) >= opts.MaxRatings {
			break
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: %s contains no ratings", opts.Name)
	}

	if opts.RescaleTo != nil {
		lo, hi := rows[0].value, rows[0].value
		for _, rw := range rows {
			if rw.value < lo {
				lo = rw.value
			}
			if rw.value > hi {
				hi = rw.value
			}
		}
		span := hi - lo
		tgtLo, tgtHi := opts.RescaleTo[0], opts.RescaleTo[1]
		for k := range rows {
			if span == 0 {
				rows[k].value = tgtHi
			} else {
				rows[k].value = tgtLo + (rows[k].value-lo)/span*(tgtHi-tgtLo)
			}
		}
	}

	if opts.MinRatingsPerUser > 1 {
		counts := make(map[string]int)
		for _, rw := range rows {
			counts[rw.user]++
		}
		filtered := rows[:0]
		for _, rw := range rows {
			if counts[rw.user] >= opts.MinRatingsPerUser {
				filtered = append(filtered, rw)
			}
		}
		rows = filtered
		if len(rows) == 0 {
			return nil, fmt.Errorf("dataset: %s: user filter τ=%d removed every rating", opts.Name, opts.MinRatingsPerUser)
		}
	}

	b := NewBuilder(opts.Name, len(rows))
	for _, rw := range rows {
		b.Add(rw.user, rw.item, rw.value)
	}
	return b.Build(), nil
}

func sniffFormat(line string) Format {
	switch {
	case strings.Contains(line, "::"):
		return FormatMovieLensDat
	case strings.Contains(line, "\t"):
		return FormatTab
	default:
		return FormatCSV
	}
}

func splitRow(line string, f Format) (user, item, value string, err error) {
	var fields []string
	switch f {
	case FormatMovieLensDat:
		fields = strings.Split(line, "::")
	case FormatTab:
		fields = strings.Split(line, "\t")
	case FormatCSV:
		fields = strings.Split(line, ",")
	default:
		fields = strings.Fields(line)
	}
	if len(fields) < 3 {
		return "", "", "", fmt.Errorf("expected at least 3 fields, got %d", len(fields))
	}
	return strings.TrimSpace(fields[0]), strings.TrimSpace(fields[1]), strings.TrimSpace(fields[2]), nil
}

// WriteRatings writes the dataset to w in CSV form ("user,item,rating"),
// using the external keys from the interners. It is the inverse of
// ReadRatings with FormatCSV and exists so synthetic datasets can be saved
// and reloaded.
func WriteRatings(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "user,item,rating"); err != nil {
		return err
	}
	for _, r := range d.Ratings() {
		uKey := d.UserInterner().Key(int32(r.User))
		iKey := d.ItemInterner().Key(int32(r.Item))
		if _, err := fmt.Fprintf(bw, "%s,%s,%g\n", uKey, iKey, r.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}
