package dataset

import (
	"math/rand"
	"testing"

	"ganc/internal/types"
)

// randomDataset builds a dataset with random (possibly duplicate) ratings.
func randomDataset(t *testing.T, numUsers, numItems, numRatings int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ratings := make([]types.Rating, 0, numRatings+numUsers+numItems)
	// Anchor the identifier spaces so every index exists.
	ratings = append(ratings, types.Rating{User: types.UserID(numUsers - 1), Item: types.ItemID(numItems - 1), Value: 3})
	for k := 0; k < numRatings; k++ {
		ratings = append(ratings, types.Rating{
			User:  types.UserID(rng.Intn(numUsers)),
			Item:  types.ItemID(rng.Intn(numItems)),
			Value: float64(1 + rng.Intn(5)),
		})
	}
	return FromRatings("rand", ratings)
}

func TestUserItemsSortedIsSortedAndDeduplicated(t *testing.T) {
	d := randomDataset(t, 20, 40, 300, 1)
	for u := 0; u < d.NumUsers(); u++ {
		uid := types.UserID(u)
		sorted := d.UserItemsSorted(uid)
		seen := map[types.ItemID]bool{}
		for k, it := range sorted {
			if k > 0 && sorted[k-1] >= it {
				t.Fatalf("user %d: items not strictly ascending: %v", u, sorted)
			}
			seen[it] = true
		}
		// Exactly the distinct items of the user's profile.
		want := d.UserItemSet(uid)
		if len(seen) != len(want) {
			t.Fatalf("user %d: sorted adjacency has %d items, set has %d", u, len(seen), len(want))
		}
		for it := range want {
			if !seen[it] {
				t.Fatalf("user %d: item %d missing from sorted adjacency", u, it)
			}
		}
	}
}

func TestAppendCandidatesMatchesSetComplement(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d := randomDataset(t, 15, 60, 250, seed)
		var buf []types.ItemID
		for u := 0; u < d.NumUsers(); u++ {
			uid := types.UserID(u)
			buf = d.AppendCandidates(uid, buf[:0])
			exclude := d.UserItemSet(uid)
			// Candidates must be exactly the complement, in ascending order.
			want := make([]types.ItemID, 0, d.NumItems())
			for i := 0; i < d.NumItems(); i++ {
				if _, rated := exclude[types.ItemID(i)]; !rated {
					want = append(want, types.ItemID(i))
				}
			}
			if len(buf) != len(want) {
				t.Fatalf("seed %d user %d: got %d candidates, want %d", seed, u, len(buf), len(want))
			}
			for k := range want {
				if buf[k] != want[k] {
					t.Fatalf("seed %d user %d: candidate %d = %d, want %d", seed, u, k, buf[k], want[k])
				}
			}
			if got := d.NumCandidates(uid); got != len(want) {
				t.Fatalf("seed %d user %d: NumCandidates = %d, want %d", seed, u, got, len(want))
			}
		}
	}
}

func TestAppendCandidatesReusesBuffer(t *testing.T) {
	d := randomDataset(t, 8, 30, 100, 3)
	buf := make([]types.ItemID, 0, d.NumItems())
	ptr := &buf[:1][0]
	for u := 0; u < d.NumUsers(); u++ {
		buf = d.AppendCandidates(types.UserID(u), buf[:0])
		if len(buf) > 0 && &buf[0] != ptr {
			t.Fatal("AppendCandidates reallocated a buffer that had enough capacity")
		}
	}
}

func TestAppendCandidatesUnknownUserYieldsFullCatalog(t *testing.T) {
	d := randomDataset(t, 5, 12, 30, 4)
	got := d.AppendCandidates(types.UserID(99), nil)
	if len(got) != d.NumItems() {
		t.Fatalf("out-of-range user: got %d candidates, want the full catalog (%d)", len(got), d.NumItems())
	}
}
