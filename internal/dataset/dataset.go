// Package dataset holds the collaborative-filtering interaction data and the
// derived structures every recommender in this library consumes: per-user and
// per-item rating indexes, item popularity counts, the Pareto (80/20)
// long-tail cut, and per-user train/test splits.
//
// The representation follows the paper's notation (Section II-A): the data D
// is a sparse subset of the complete |U|×|I| rating matrix, split into a train
// set R and test set T by keeping a fixed fraction κ of each user's ratings
// in train.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"ganc/internal/types"
)

// Dataset is an immutable collection of ratings together with the interners
// that map external identifiers to dense user and item indices. Construct one
// with a Builder (incremental) or FromRatings.
type Dataset struct {
	name    string
	ratings []types.Rating

	users *types.Interner
	items *types.Interner

	byUser [][]int // rating indices per user
	byItem [][]int // rating indices per item

	// sortedItemsByUser holds each user's distinct rated items in ascending
	// ItemID order. It is the index-contiguous complement of byUser: the
	// candidate pipeline merges it linearly against the catalog to enumerate
	// "all unrated items" without building a map per call.
	sortedItemsByUser [][]types.ItemID
}

// Builder accumulates ratings and produces a Dataset. The zero value is not
// usable; construct with NewBuilder.
type Builder struct {
	name    string
	users   *types.Interner
	items   *types.Interner
	ratings []types.Rating
}

// NewBuilder returns a Builder for a dataset with the given name. The
// capacity hint is the expected number of ratings.
func NewBuilder(name string, capacity int) *Builder {
	if capacity < 0 {
		capacity = 0
	}
	return &Builder{
		name:    name,
		users:   types.NewInterner(capacity / 16),
		items:   types.NewInterner(capacity / 64),
		ratings: make([]types.Rating, 0, capacity),
	}
}

// Add records a rating by external user and item keys.
func (b *Builder) Add(userKey, itemKey string, value float64) {
	u := types.UserID(b.users.Intern(userKey))
	i := types.ItemID(b.items.Intern(itemKey))
	b.ratings = append(b.ratings, types.Rating{User: u, Item: i, Value: value})
}

// AddIDs records a rating by already-dense identifiers. The caller is
// responsible for keeping identifiers dense; gaps create phantom users or
// items with no ratings.
func (b *Builder) AddIDs(u types.UserID, i types.ItemID, value float64) {
	for int32(b.users.Len()) <= int32(u) {
		b.users.Intern(fmt.Sprintf("u%d", b.users.Len()))
	}
	for int32(b.items.Len()) <= int32(i) {
		b.items.Intern(fmt.Sprintf("i%d", b.items.Len()))
	}
	b.ratings = append(b.ratings, types.Rating{User: u, Item: i, Value: value})
}

// Len reports the number of ratings accumulated so far.
func (b *Builder) Len() int { return len(b.ratings) }

// Build finalizes the dataset, constructing the per-user and per-item
// indexes. The Builder must not be reused afterwards.
func (b *Builder) Build() *Dataset {
	d := &Dataset{
		name:    b.name,
		ratings: b.ratings,
		users:   b.users,
		items:   b.items,
	}
	d.buildIndexes()
	return d
}

// FromRatings builds a Dataset directly from dense-identifier ratings. The
// number of users and items is inferred from the maximum identifiers present.
func FromRatings(name string, ratings []types.Rating) *Dataset {
	b := NewBuilder(name, len(ratings))
	for _, r := range ratings {
		b.AddIDs(r.User, r.Item, r.Value)
	}
	return b.Build()
}

func (d *Dataset) buildIndexes() {
	d.byUser = make([][]int, d.users.Len())
	d.byItem = make([][]int, d.items.Len())
	for idx, r := range d.ratings {
		d.byUser[r.User] = append(d.byUser[r.User], idx)
		d.byItem[r.Item] = append(d.byItem[r.Item], idx)
	}
	d.sortedItemsByUser = make([][]types.ItemID, len(d.byUser))
	for u, idxs := range d.byUser {
		if len(idxs) == 0 {
			continue
		}
		items := make([]types.ItemID, len(idxs))
		for k, idx := range idxs {
			items[k] = d.ratings[idx].Item
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		// Deduplicate in place (a user may rate the same item more than once).
		out := items[:1]
		for _, it := range items[1:] {
			if it != out[len(out)-1] {
				out = append(out, it)
			}
		}
		d.sortedItemsByUser[u] = out
	}
}

// Name returns the dataset's human-readable name.
func (d *Dataset) Name() string { return d.name }

// NumUsers returns |U|, the user universe this dataset was indexed over. It
// is frozen at construction time: streaming ingestion may intern new keys
// into the shared identifier tables afterwards, but this snapshot's universe
// (and every index sized by it) does not move — the extended universe belongs
// to the Dataset returned by Extend.
func (d *Dataset) NumUsers() int { return len(d.byUser) }

// NumItems returns |I|, the item universe this dataset was indexed over (see
// NumUsers for the frozen-snapshot semantics).
func (d *Dataset) NumItems() int { return len(d.byItem) }

// NumRatings returns |D|, the number of ratings.
func (d *Dataset) NumRatings() int { return len(d.ratings) }

// Ratings returns the underlying rating slice. Callers must not modify it.
func (d *Dataset) Ratings() []types.Rating { return d.ratings }

// Rating returns the rating at index idx.
func (d *Dataset) Rating(idx int) types.Rating { return d.ratings[idx] }

// UserRatings returns the indices of ratings belonging to user u.
func (d *Dataset) UserRatings(u types.UserID) []int {
	if int(u) < 0 || int(u) >= len(d.byUser) {
		return nil
	}
	return d.byUser[u]
}

// ItemRatings returns the indices of ratings belonging to item i.
func (d *Dataset) ItemRatings(i types.ItemID) []int {
	if int(i) < 0 || int(i) >= len(d.byItem) {
		return nil
	}
	return d.byItem[i]
}

// UserItems returns the set of items rated by user u, in rating order.
func (d *Dataset) UserItems(u types.UserID) []types.ItemID {
	idxs := d.UserRatings(u)
	out := make([]types.ItemID, len(idxs))
	for k, idx := range idxs {
		out[k] = d.ratings[idx].Item
	}
	return out
}

// UserItemSet returns the set of items rated by user u as a membership map.
func (d *Dataset) UserItemSet(u types.UserID) map[types.ItemID]struct{} {
	idxs := d.UserRatings(u)
	out := make(map[types.ItemID]struct{}, len(idxs))
	for _, idx := range idxs {
		out[d.ratings[idx].Item] = struct{}{}
	}
	return out
}

// UserItemsSorted returns user u's distinct rated items in ascending ItemID
// order. The returned slice is shared with the dataset and must not be
// modified.
func (d *Dataset) UserItemsSorted(u types.UserID) []types.ItemID {
	if int(u) < 0 || int(u) >= len(d.sortedItemsByUser) {
		return nil
	}
	return d.sortedItemsByUser[u]
}

// AppendCandidates appends user u's candidate items — the catalog minus the
// user's rated items — to buf in ascending ItemID order and returns the
// extended slice. Rather than merging item by item, it grows buf once and
// fills the gap runs between consecutive rated items with plain index
// writes, so the per-item cost is one store; it allocates nothing when buf
// has capacity, and callers reuse one buffer across users
// (buf = d.AppendCandidates(u, buf[:0])).
func (d *Dataset) AppendCandidates(u types.UserID, buf []types.ItemID) []types.ItemID {
	rated := d.UserItemsSorted(u)
	numItems := d.NumItems()
	n := len(buf)
	if cap(buf) < n+numItems {
		grown := make([]types.ItemID, n, n+numItems)
		copy(grown, buf)
		buf = grown
	}
	out := buf[n : n+numItems]
	w := 0
	next := types.ItemID(0)
	for _, r := range rated {
		if r >= types.ItemID(numItems) {
			break
		}
		if r < next { // duplicate in the adjacency; already skipped
			continue
		}
		for i := next; i < r; i++ {
			out[w] = i
			w++
		}
		next = r + 1
	}
	for i := next; i < types.ItemID(numItems); i++ {
		out[w] = i
		w++
	}
	return buf[:n+w]
}

// NumCandidates returns how many candidate items AppendCandidates would yield
// for user u.
func (d *Dataset) NumCandidates(u types.UserID) int {
	return d.NumItems() - len(d.UserItemsSorted(u))
}

// ItemUsers returns the users who rated item i.
func (d *Dataset) ItemUsers(i types.ItemID) []types.UserID {
	idxs := d.ItemRatings(i)
	out := make([]types.UserID, len(idxs))
	for k, idx := range idxs {
		out[k] = d.ratings[idx].User
	}
	return out
}

// UserRating returns the value user u gave item i and whether such a rating
// exists. Lookup is linear in the user's profile size, which is small for the
// vast majority of users in CF data.
func (d *Dataset) UserRating(u types.UserID, i types.ItemID) (float64, bool) {
	for _, idx := range d.UserRatings(u) {
		if d.ratings[idx].Item == i {
			return d.ratings[idx].Value, true
		}
	}
	return 0, false
}

// ItemPopularity returns f_i^R, the number of ratings item i received.
func (d *Dataset) ItemPopularity(i types.ItemID) int {
	return len(d.ItemRatings(i))
}

// PopularityVector returns a vector of item popularities indexed by ItemID.
func (d *Dataset) PopularityVector() []int {
	out := make([]int, d.NumItems())
	for i := range out {
		out[i] = len(d.byItem[i])
	}
	return out
}

// UserInterner exposes the user identifier mapping so callers can translate
// recommendations back into external keys. The table is shared across every
// dataset derived from the same parent (splits, Extend children).
func (d *Dataset) UserInterner() *types.Interner { return d.users }

// ItemInterner exposes the item identifier mapping (see UserInterner).
func (d *Dataset) ItemInterner() *types.Interner { return d.items }

// Density returns |D| / (|U|·|I|), the fill rate of the rating matrix.
func (d *Dataset) Density() float64 {
	if d.NumUsers() == 0 || d.NumItems() == 0 {
		return 0
	}
	return float64(d.NumRatings()) / (float64(d.NumUsers()) * float64(d.NumItems()))
}

// MeanRating returns the global mean rating value, or 0 for an empty dataset.
func (d *Dataset) MeanRating() float64 {
	if len(d.ratings) == 0 {
		return 0
	}
	s := 0.0
	for _, r := range d.ratings {
		s += r.Value
	}
	return s / float64(len(d.ratings))
}

// LongTail computes the paper's Pareto-principle long-tail set over this
// dataset: items are sorted by decreasing popularity and the long tail L is
// the suffix of items that together generate the lower `tailShare` fraction
// (0.20 in the paper) of the total ratings. Only items with at least one
// rating participate; unrated items are trivially long-tail and are included.
func (d *Dataset) LongTail(tailShare float64) map[types.ItemID]struct{} {
	if tailShare < 0 {
		tailShare = 0
	}
	if tailShare > 1 {
		tailShare = 1
	}
	type itemPop struct {
		item types.ItemID
		pop  int
	}
	pops := make([]itemPop, 0, d.NumItems())
	total := 0
	for i := 0; i < d.NumItems(); i++ {
		p := len(d.byItem[i])
		total += p
		pops = append(pops, itemPop{item: types.ItemID(i), pop: p})
	}
	sort.Slice(pops, func(a, b int) bool {
		if pops[a].pop != pops[b].pop {
			return pops[a].pop > pops[b].pop
		}
		return pops[a].item < pops[b].item
	})
	tail := make(map[types.ItemID]struct{})
	if total == 0 {
		for _, ip := range pops {
			tail[ip.item] = struct{}{}
		}
		return tail
	}
	// Walk down the popularity-sorted list accumulating head mass; once the
	// head has captured (1 − tailShare) of all ratings, the rest is the tail.
	headBudget := float64(total) * (1 - tailShare)
	cum := 0.0
	for _, ip := range pops {
		if cum >= headBudget {
			tail[ip.item] = struct{}{}
			continue
		}
		cum += float64(ip.pop)
	}
	return tail
}

// DefaultTailShare is the Pareto 80/20 cut used throughout the paper.
const DefaultTailShare = 0.20

// Stats summarizes a dataset in the form reported in the paper's Table II.
type Stats struct {
	Name        string
	NumRatings  int
	NumUsers    int
	NumItems    int
	DensityPct  float64 // |D| / (|U|·|I|) × 100
	LongTailPct float64 // |L| / |I| × 100, with L computed at the 80/20 cut
	MeanRating  float64
	MinUserDeg  int
	MaxUserDeg  int
}

// ComputeStats derives Table II–style statistics from the dataset.
func (d *Dataset) ComputeStats() Stats {
	tail := d.LongTail(DefaultTailShare)
	minDeg, maxDeg := 0, 0
	if d.NumUsers() > 0 {
		minDeg = len(d.byUser[0])
		for _, rs := range d.byUser {
			if len(rs) < minDeg {
				minDeg = len(rs)
			}
			if len(rs) > maxDeg {
				maxDeg = len(rs)
			}
		}
	}
	return Stats{
		Name:        d.name,
		NumRatings:  d.NumRatings(),
		NumUsers:    d.NumUsers(),
		NumItems:    d.NumItems(),
		DensityPct:  d.Density() * 100,
		LongTailPct: 100 * float64(len(tail)) / float64(maxInt(d.NumItems(), 1)),
		MeanRating:  d.MeanRating(),
		MinUserDeg:  minDeg,
		MaxUserDeg:  maxDeg,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Split holds a per-user train/test partition of a parent dataset. Train and
// Test are themselves full Dataset values sharing the parent's user and item
// identifier spaces, so that an ItemID means the same thing in both.
type Split struct {
	Parent *Dataset
	Train  *Dataset
	Test   *Dataset
	Kappa  float64
}

// SplitByUser partitions the dataset per user: for each user, a fraction
// kappa of their ratings (rounded down, but at least one when the user has
// two or more ratings) is kept in train and the remainder goes to test. Users
// with a single rating keep it in train. The assignment is randomized by rng.
//
// This mirrors the paper's protocol: "randomly split each dataset into train
// and test sets by keeping a fixed ratio κ of each user's ratings in the
// train set and moving the rest to the test set."
func (d *Dataset) SplitByUser(kappa float64, rng *rand.Rand) *Split {
	if kappa <= 0 || kappa > 1 {
		panic(fmt.Sprintf("dataset: kappa must be in (0,1], got %v", kappa))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	trainRatings := make([]types.Rating, 0, int(float64(len(d.ratings))*kappa)+d.NumUsers())
	testRatings := make([]types.Rating, 0, len(d.ratings)-cap(trainRatings)/2)

	for u := 0; u < d.NumUsers(); u++ {
		idxs := d.byUser[u]
		n := len(idxs)
		if n == 0 {
			continue
		}
		perm := rng.Perm(n)
		nTrain := int(float64(n) * kappa)
		if nTrain < 1 {
			nTrain = 1
		}
		if nTrain > n {
			nTrain = n
		}
		for k, p := range perm {
			r := d.ratings[idxs[p]]
			if k < nTrain {
				trainRatings = append(trainRatings, r)
			} else {
				testRatings = append(testRatings, r)
			}
		}
	}
	train := d.childFromRatings(d.name+"-train", trainRatings)
	test := d.childFromRatings(d.name+"-test", testRatings)
	return &Split{Parent: d, Train: train, Test: test, Kappa: kappa}
}

// childFromRatings builds a Dataset that reuses this dataset's identifier
// spaces (so user/item IDs remain comparable across train, test and parent).
func (d *Dataset) childFromRatings(name string, ratings []types.Rating) *Dataset {
	child := &Dataset{
		name:    name,
		ratings: ratings,
		users:   d.users,
		items:   d.items,
	}
	child.buildIndexes()
	return child
}

// Extend returns a new Dataset containing this dataset's ratings plus the
// given new ones, sharing the (concurrency-safe) identifier spaces with the
// parent. It is the incremental-ingestion counterpart of Build: the per-user
// and per-item indexes are updated copy-on-write — only the outer index
// slices and the inner slices of touched users/items are reallocated, and the
// sorted per-user adjacency is re-sorted only for the users that actually
// received new ratings. Untouched users share their index slices with the
// parent, so extending a million-user dataset with a small event batch costs
// O(|D| copy + touched users) rather than a full rebuild.
//
// The parent dataset is never mutated and stays fully usable (the serving
// layer keeps answering against it until the engine swap). New users or items
// must already be interned by the caller; identifiers beyond the parent's
// range simply grow the indexes.
func (d *Dataset) Extend(newRatings []types.Rating) *Dataset {
	numUsers := d.users.Len()
	numItems := d.items.Len()
	for _, r := range newRatings {
		if int(r.User) < 0 || int(r.User) >= numUsers {
			panic(fmt.Sprintf("dataset: Extend rating references user %d outside the interned range [0,%d)", r.User, numUsers))
		}
		if int(r.Item) < 0 || int(r.Item) >= numItems {
			panic(fmt.Sprintf("dataset: Extend rating references item %d outside the interned range [0,%d)", r.Item, numItems))
		}
	}

	ratings := make([]types.Rating, len(d.ratings), len(d.ratings)+len(newRatings))
	copy(ratings, d.ratings)
	ratings = append(ratings, newRatings...)

	child := &Dataset{
		name:    d.name,
		ratings: ratings,
		users:   d.users,
		items:   d.items,
	}

	// Copy-on-write indexes: clone the outer slices (growing them to the
	// current interner sizes so freshly interned users/items get entries),
	// then replace only the touched inner slices.
	child.byUser = make([][]int, numUsers)
	copy(child.byUser, d.byUser)
	child.byItem = make([][]int, numItems)
	copy(child.byItem, d.byItem)
	child.sortedItemsByUser = make([][]types.ItemID, numUsers)
	copy(child.sortedItemsByUser, d.sortedItemsByUser)

	touchedUser := make(map[types.UserID]struct{}, len(newRatings))
	touchedItem := make(map[types.ItemID]struct{}, len(newRatings))
	for k, r := range newRatings {
		idx := len(d.ratings) + k
		if _, done := touchedUser[r.User]; !done {
			touchedUser[r.User] = struct{}{}
			child.byUser[r.User] = append(append([]int(nil), child.byUser[r.User]...), idx)
		} else {
			child.byUser[r.User] = append(child.byUser[r.User], idx)
		}
		if _, done := touchedItem[r.Item]; !done {
			touchedItem[r.Item] = struct{}{}
			child.byItem[r.Item] = append(append([]int(nil), child.byItem[r.Item]...), idx)
		} else {
			child.byItem[r.Item] = append(child.byItem[r.Item], idx)
		}
	}

	// Re-sort the adjacency of touched users only.
	for u := range touchedUser {
		idxs := child.byUser[u]
		items := make([]types.ItemID, len(idxs))
		for k, idx := range idxs {
			items[k] = ratings[idx].Item
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		out := items[:1]
		for _, it := range items[1:] {
			if it != out[len(out)-1] {
				out = append(out, it)
			}
		}
		child.sortedItemsByUser[u] = out
	}
	return child
}

// SubsetUsers returns a new dataset containing only the ratings of the given
// users, sharing identifier spaces with the parent.
func (d *Dataset) SubsetUsers(users []types.UserID) *Dataset {
	keep := make(map[types.UserID]struct{}, len(users))
	for _, u := range users {
		keep[u] = struct{}{}
	}
	var ratings []types.Rating
	for _, r := range d.ratings {
		if _, ok := keep[r.User]; ok {
			ratings = append(ratings, r)
		}
	}
	return d.childFromRatings(d.name+"-subset", ratings)
}

// RelevantTestItems returns, for each user, the set of test items the user
// rated at or above the relevance threshold (the paper uses r_ui ≥ 4). The
// result is indexed by UserID; users without relevant test items map to nil.
func RelevantTestItems(test *Dataset, threshold float64) map[types.UserID][]types.ItemID {
	out := make(map[types.UserID][]types.ItemID, test.NumUsers())
	for _, r := range test.Ratings() {
		if r.Value >= threshold {
			out[r.User] = append(out[r.User], r.Item)
		}
	}
	return out
}
