package ganc

import (
	"math"
	"testing"

	"ganc/internal/recommender"
)

// bulkCase is one scorer under the shared BulkScorer edge-case suite.
type bulkCase struct {
	name   string
	scorer Scorer
}

// bulkEdgeFixtures builds every BulkScorer implementation in the library
// (non-personalized baselines, all three factor models at each serving tier,
// the neighbourhood model, and the normalizing wrapper) on one small train
// set.
func bulkEdgeFixtures(t *testing.T, train *Dataset) []bulkCase {
	t.Helper()
	tiered := func(p ScoringPrecision) *RSVD {
		m, err := TrainRSVD(train, smallRSVDConfig())
		if err != nil {
			t.Fatal(err)
		}
		m.SetPrecision(p)
		return m
	}
	psvd, err := TrainPSVD(train, PSVDConfig{Factors: 8, PowerIterations: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	psvd.SetPrecision(PrecisionF32)
	cofi, err := TrainCofi(train, CofiConfig{
		Factors: 8, Regularization: 0.05, LearningRate: 0.02,
		Epochs: 2, InitStd: 0.1, Seed: 3, PairsPerUser: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cofi.SetPrecision(PrecisionInt8)
	iknn, err := TrainItemKNN(train, DefaultItemKNNConfig())
	if err != nil {
		t.Fatal(err)
	}
	return []bulkCase{
		{"Pop", NewPop(train)},
		{"ItemAvg", recommender.NewItemAvg(train, 5)},
		{"RSVD/f64", tiered(PrecisionF64)},
		{"RSVD/f32", tiered(PrecisionF32)},
		{"RSVD/int8", tiered(PrecisionInt8)},
		{"PSVD/f32", psvd},
		{"CofiRank/int8", cofi},
		{"ItemKNN", iknn},
		{"Normalized(RSVD/f32)", recommender.NewNormalizedScorer(tiered(PrecisionF32), train.NumItems())},
	}
}

// TestBulkScorerEdgeCases drives every implementation through the boundary
// inputs of the BulkScorer/BulkScorer32 contract: empty item slices write
// nothing, out-of-range user and item identifiers take the documented
// fallbacks without panicking (and, on the float64 tier, stay equal to the
// pointwise Score fallback), and an undersized out buffer panics instead of
// silently truncating the fill.
func TestBulkScorerEdgeCases(t *testing.T) {
	split := pipelineFixture(t)
	train := split.Train
	oobUser := UserID(train.NumUsers() + 7)
	edgeItems := []ItemID{0, ItemID(train.NumItems() - 1), ItemID(train.NumItems() + 99), -1}

	for _, tc := range bulkEdgeFixtures(t, train) {
		t.Run(tc.name, func(t *testing.T) {
			bs, ok := tc.scorer.(recommender.BulkScorer)
			if !ok {
				t.Fatalf("%T does not implement BulkScorer", tc.scorer)
			}
			bs32, has32 := tc.scorer.(recommender.BulkScorer32)

			// Empty item slices: no write, no panic, on both paths.
			bs.ScoreUser(0, nil, nil)
			bs.ScoreUser(oobUser, []ItemID{}, []float64{})
			if has32 {
				bs32.ScoreUser32(0, nil, nil)
			}

			// Out-of-range users and items: finite fallback scores, and on
			// the exact float64 tier bit-equal to the pointwise fallback.
			exact := true
			if ps, ok := tc.scorer.(recommender.PrecisionScorer); ok {
				exact = ps.ScoringPrecision() == PrecisionF64
			}
			for _, u := range []UserID{0, oobUser} {
				out := make([]float64, len(edgeItems))
				bs.ScoreUser(u, edgeItems, out)
				for k, i := range edgeItems {
					if math.IsNaN(out[k]) || math.IsInf(out[k], 0) {
						t.Fatalf("ScoreUser(u=%d, i=%d) = %v, want finite", u, i, out[k])
					}
					if exact && out[k] != tc.scorer.Score(u, i) {
						t.Fatalf("ScoreUser(u=%d, i=%d) = %v differs from Score = %v", u, i, out[k], tc.scorer.Score(u, i))
					}
				}
				if has32 {
					out32 := make([]float32, len(edgeItems))
					bs32.ScoreUser32(u, edgeItems, out32)
					for k, i := range edgeItems {
						if f := float64(out32[k]); math.IsNaN(f) || math.IsInf(f, 0) {
							t.Fatalf("ScoreUser32(u=%d, i=%d) = %v, want finite", u, i, out32[k])
						}
					}
				}
			}

			// An out buffer shorter than items must panic, not part-fill.
			mustPanic(t, "ScoreUser with short out", func() {
				bs.ScoreUser(0, edgeItems, make([]float64, len(edgeItems)-1))
			})
			if has32 {
				mustPanic(t, "ScoreUser32 with short out", func() {
					bs32.ScoreUser32(0, edgeItems, make([]float32, len(edgeItems)-1))
				})
			}
		})
	}
}

// TestBulkScoresLengthContract pins the helper's explicit mismatch check:
// BulkScores rejects any out length that differs from the item count, longer
// as well as shorter, for bulk and pointwise-fallback scorers alike.
func TestBulkScoresLengthContract(t *testing.T) {
	split := pipelineFixture(t)
	pop := NewPop(split.Train)
	items := []ItemID{0, 1, 2}
	mustPanic(t, "short out", func() {
		recommender.BulkScores(pop, 0, items, make([]float64, 2))
	})
	mustPanic(t, "long out", func() {
		recommender.BulkScores(pop, 0, items, make([]float64, 4))
	})
	out := make([]float64, len(items))
	recommender.BulkScores(pop, 0, items, out)
	for k, i := range items {
		if out[k] != pop.Score(0, i) {
			t.Fatalf("BulkScores[%d] = %v, want %v", k, out[k], pop.Score(0, i))
		}
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}
