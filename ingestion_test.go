package ganc

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"ganc/internal/ingest"
)

// streamEvents synthesizes an interaction stream: mostly existing users and
// items (addressed by their real external keys), with a tail of brand-new
// users and items to exercise on-the-fly interning.
func streamEvents(t *testing.T, train *Dataset, n int, seed int64) []IngestEvent {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	users := train.UserInterner()
	items := train.ItemInterner()
	events := make([]IngestEvent, n)
	for k := range events {
		ev := IngestEvent{Value: float64(1 + rng.Intn(5))}
		if rng.Intn(5) == 0 {
			ev.User = fmt.Sprintf("fresh-user-%d", rng.Intn(8))
		} else {
			ev.User = users.Key(int32(rng.Intn(users.Len())))
		}
		if rng.Intn(7) == 0 {
			ev.Item = fmt.Sprintf("fresh-item-%d", rng.Intn(6))
		} else {
			ev.Item = items.Key(int32(rng.Intn(items.Len())))
		}
		events[k] = ev
	}
	return events
}

// applyInBatches feeds the stream through an ingestor in fixed-size batches.
func applyInBatches(t *testing.T, ing *Ingestor, events []IngestEvent, batch int) {
	t.Helper()
	for lo := 0; lo < len(events); lo += batch {
		hi := lo + batch
		if hi > len(events) {
			hi = len(events)
		}
		if _, err := ing.Apply(context.Background(), events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIngestCheckpointRestoreParity is the second acceptance property: a
// stream ingested with a mid-stream crash (checkpoint restore + write-ahead
// log replay) must land on exactly the Pop/Dyn state — and byte-identical
// served output — of uninterrupted ingestion.
func TestIngestCheckpointRestoreParity(t *testing.T) {
	split := persistSplit(t, 53)
	events := streamEvents(t, split.Train, 150, 59)
	dir := t.TempDir()

	// Uninterrupted reference.
	refPipe := buildPersistablePipeline(t, split.Train, "Pop")
	refIng, err := NewIngestor(nil, refPipe)
	if err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, refIng, events, 30)

	// Interrupted run: WAL + checkpoint every 60 events → the checkpoint
	// lands at seq 60 and 120, leaving a 30-event suffix in the log.
	livePipe := buildPersistablePipeline(t, split.Train, "Pop")
	logPath := filepath.Join(dir, "events.log")
	snapPath := filepath.Join(dir, "checkpoint.snap")
	liveIng, err := NewIngestor(nil, livePipe,
		WithIngestLog(logPath),
		WithIngestCheckpoint(snapPath, 60))
	if err != nil {
		t.Fatal(err)
	}
	applyInBatches(t, liveIng, events, 30)

	// "Crash" and warm-start: restore the checkpoint, replay the log suffix.
	restoredPipe, err := LoadEngine(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if restoredPipe.ingestSeq != 120 {
		t.Fatalf("checkpoint cursor %d, want 120", restoredPipe.ingestSeq)
	}
	restoredIng, err := NewIngestor(nil, restoredPipe, WithIngestLog(logPath))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := restoredIng.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 30 {
		t.Fatalf("replayed %d events, want 30", replayed)
	}

	// Pop/Dyn state parity.
	refIng.View(func(want *ingest.State) {
		restoredIng.View(func(got *ingest.State) {
			if got.AppliedSeq != want.AppliedSeq {
				t.Fatalf("seq %d != %d", got.AppliedSeq, want.AppliedSeq)
			}
			if len(got.PopCounts) != len(want.PopCounts) {
				t.Fatalf("pop counts cover %d items, want %d", len(got.PopCounts), len(want.PopCounts))
			}
			for i := range want.PopCounts {
				if got.PopCounts[i] != want.PopCounts[i] {
					t.Fatalf("pop count of item %d: %d != %d", i, got.PopCounts[i], want.PopCounts[i])
				}
			}
			for i := range want.DynFreq {
				if got.DynFreq[i] != want.DynFreq[i] {
					t.Fatalf("dyn freq of item %d: %d != %d", i, got.DynFreq[i], want.DynFreq[i])
				}
			}
			if got.Train.NumRatings() != want.Train.NumRatings() {
				t.Fatalf("ratings %d != %d", got.Train.NumRatings(), want.Train.NumRatings())
			}
			if got.Prefs.Len() != want.Prefs.Len() {
				t.Fatalf("preference vectors cover %d vs %d users", got.Prefs.Len(), want.Prefs.Len())
			}
			for u := range want.Prefs.Values {
				if got.Prefs.Values[u] != want.Prefs.Values[u] {
					t.Fatalf("θ of user %d: %v != %v", u, got.Prefs.Values[u], want.Prefs.Values[u])
				}
			}
		})
	})

	// Served-output parity: engines rebuilt from both states must recommend
	// byte-identically.
	var wantRecs, gotRecs Recommendations
	refIng.View(func(s *ingest.State) {
		p, err := refPipe.pipelineFromState("Pop", "Dyn", s)
		if err != nil {
			t.Fatal(err)
		}
		wantRecs, err = p.RecommendAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	restoredIng.View(func(s *ingest.State) {
		p, err := restoredPipe.pipelineFromState("Pop", "Dyn", s)
		if err != nil {
			t.Fatal(err)
		}
		gotRecs, err = p.RecommendAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
	})
	assertRecsIdentical(t, "ingested", gotRecs, wantRecs)
}

// TestIngestorRejectsUnsupportedPipeline mirrors the Save contract: streaming
// ingestion needs the same component codecs.
func TestIngestorRejectsUnsupportedPipeline(t *testing.T) {
	split := persistSplit(t, 61)
	p, err := NewPipeline(split.Train, WithBaseNamed("Pop"), WithCoverage(CoverageRand()), WithTopN(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIngestor(nil, p); err == nil {
		t.Fatal("expected NewIngestor to reject a Rand-coverage pipeline")
	}
}
