package ganc

import (
	"ganc/internal/serve"
)

// Serving re-exports: put any Engine behind the HTTP service boundary
// implemented in internal/serve — lazy per-user computation, a bounded LRU
// cache, in-flight request coalescing, batch lookups and atomic engine swaps.
type (
	// Server serves one Engine over HTTP.
	Server = serve.Server
	// ServerOption customizes a Server at construction time.
	ServerOption = serve.Option
	// ServerCacheStats reports the server's cache effectiveness counters.
	ServerCacheStats = serve.CacheStats
	// ShardIdentity names a server's place in a sharded cluster (shard id,
	// shard count, hash-ring epoch), reported through /info.
	ShardIdentity = serve.ShardIdentity
)

// NewServer builds an HTTP server around an Engine. The train set supplies
// the external↔internal identifier translation; n is the default list size.
func NewServer(train *Dataset, engine Engine, n int, opts ...ServerOption) (*Server, error) {
	return serve.New(train, engine, n, opts...)
}

// WithServerCacheCapacity bounds the server's per-user LRU cache (≤ 0
// disables caching).
func WithServerCacheCapacity(capacity int) ServerOption {
	return serve.WithCacheCapacity(capacity)
}

// WithServerPrecomputed seeds the server's cache with a batch-computed
// collection so those users are served warm from the first request.
func WithServerPrecomputed(recs Recommendations) ServerOption {
	return serve.WithPrecomputed(recs)
}

// WithServerBatchWorkers bounds the concurrent engine sweeps one batch
// request may trigger (default serve.DefaultBatchWorkers).
func WithServerBatchWorkers(workers int) ServerOption {
	return serve.WithBatchWorkers(workers)
}

// WithServerShardIdentity marks the server as one shard of a cluster; the
// identity is echoed in /info and /health for router-side epoch checks.
func WithServerShardIdentity(id ShardIdentity) ServerOption {
	return serve.WithShardIdentity(id)
}
