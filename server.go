package ganc

import (
	"io"
	"time"

	"ganc/internal/admit"
	"ganc/internal/obs"
	"ganc/internal/serve"
)

// Serving re-exports: put any Engine behind the HTTP service boundary
// implemented in internal/serve — lazy per-user computation, a bounded LRU
// cache, in-flight request coalescing, batch lookups and atomic engine swaps.
type (
	// Server serves one Engine over HTTP.
	Server = serve.Server
	// ServerOption customizes a Server at construction time.
	ServerOption = serve.Option
	// ServerCacheStats reports the server's cache effectiveness counters.
	ServerCacheStats = serve.CacheStats
	// ShardIdentity names a server's place in a sharded cluster (shard id,
	// shard count, hash-ring epoch), reported through /info.
	ShardIdentity = serve.ShardIdentity
)

// NewServer builds an HTTP server around an Engine. The train set supplies
// the external↔internal identifier translation; n is the default list size.
func NewServer(train *Dataset, engine Engine, n int, opts ...ServerOption) (*Server, error) {
	return serve.New(train, engine, n, opts...)
}

// WithServerCacheCapacity bounds the server's per-user LRU cache (≤ 0
// disables caching).
func WithServerCacheCapacity(capacity int) ServerOption {
	return serve.WithCacheCapacity(capacity)
}

// WithServerPrecomputed seeds the server's cache with a batch-computed
// collection so those users are served warm from the first request.
func WithServerPrecomputed(recs Recommendations) ServerOption {
	return serve.WithPrecomputed(recs)
}

// WithServerBatchWorkers bounds the concurrent engine sweeps one batch
// request may trigger (default serve.DefaultBatchWorkers).
func WithServerBatchWorkers(workers int) ServerOption {
	return serve.WithBatchWorkers(workers)
}

// WithServerShardIdentity marks the server as one shard of a cluster; the
// identity is echoed in /info and /health for router-side epoch checks.
func WithServerShardIdentity(id ShardIdentity) ServerOption {
	return serve.WithShardIdentity(id)
}

// Observability re-exports: the dependency-free metrics registry and
// structured request logging from internal/obs, and the admission middleware
// (per-client rate limiting + a concurrency cap with typed 429s) from
// internal/admit. DESIGN.md §11 documents the metric catalog and the
// admission semantics.
type (
	// MetricsRegistry collects counters, gauges and latency histograms and
	// renders them in the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// MetricsLabel is one name=value label on a metric series.
	MetricsLabel = obs.Label
	// MetricsScrape is a parsed /metrics body (the validation helper's view).
	MetricsScrape = obs.Scrape
	// RequestLogger writes leveled JSON-line request records.
	RequestLogger = obs.RequestLogger
	// LogLevel grades request-log entries (LogDebug … LogError).
	LogLevel = obs.Level
	// AdmissionConfig tunes an admission controller.
	AdmissionConfig = admit.Config
	// AdmissionController applies per-client rate limiting and a server-wide
	// concurrency cap in front of the serving routes. Nil admits everything.
	AdmissionController = admit.Controller
	// AdmissionStats is a snapshot of an admission controller's counters.
	AdmissionStats = admit.Stats
	// ServerHealth is the typed GET /health payload (status, shard, engine
	// version, admission counters).
	ServerHealth = serve.HealthResponse
)

// Request-log levels, least to most severe.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// NewMetricsRegistry builds an empty metrics registry. Each server (or
// router) needs its own: series names are fixed, so two servers must not
// share one registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewRequestLogger logs JSON-line request records at or above min to w. A
// nil writer discards everything.
func NewRequestLogger(w io.Writer, min LogLevel) *RequestLogger {
	return obs.NewRequestLogger(w, min)
}

// NewAdmission builds an admission controller; returns nil (admit
// everything) when the configuration enables neither gate.
func NewAdmission(cfg AdmissionConfig) *AdmissionController { return admit.New(cfg) }

// ParseMetricsText strictly parses a Prometheus text-format exposition —
// the validation helper tests and CI use against GET /metrics bodies.
func ParseMetricsText(r io.Reader) (*MetricsScrape, error) { return obs.ParseText(r) }

// WithMetrics attaches a metrics registry to the server: engine, cache,
// ingestion and per-route HTTP series are registered on it and GET /metrics
// is mounted on the handler.
func WithMetrics(reg *MetricsRegistry) ServerOption { return serve.WithMetrics(reg) }

// WithRequestLog emits one structured JSON line per request (method, route,
// status, shard, duration, engine version, client key) to the logger.
func WithRequestLog(l *RequestLogger) ServerOption { return serve.WithRequestLog(l) }

// WithRateLimit applies per-client token-bucket rate limiting: a sustained
// ratePerSec with a burst allowance (burst ≤ 0 defaults to max(rate, 1)).
// Clients are keyed by the X-Client-ID header, falling back to the remote
// host; rejected requests get a typed 429 with Retry-After.
func WithRateLimit(ratePerSec, burst float64) ServerOption {
	return serve.WithRateLimit(ratePerSec, burst)
}

// WithMaxConcurrent caps requests inside handlers at n; an over-capacity
// request waits up to maxWait for a slot before being shed with a typed 429.
func WithMaxConcurrent(n int, maxWait time.Duration) ServerOption {
	return serve.WithMaxConcurrent(n, maxWait)
}

// WithServerAdmission installs a fully configured admission controller,
// overriding WithRateLimit/WithMaxConcurrent.
func WithServerAdmission(c *AdmissionController) ServerOption {
	return serve.WithAdmission(c)
}
